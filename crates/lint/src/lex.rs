//! A lightweight Rust lexer for invariant linting.
//!
//! Not a parser: a single character-level pass that classifies every
//! byte of a `.rs` file as code, comment, or literal, plus a second
//! pass that marks `#[cfg(test)]` / `#[test]` regions by brace
//! tracking. Rules then work on three synchronized views of each line:
//!
//! * `code`   — comments stripped, string literals intact (for rules
//!   that need literal contents, e.g. failpoint site names);
//! * `masked` — comments stripped *and* string/char contents blanked
//!   (for rules matching code tokens, so `".unwrap()"` inside a string
//!   never counts);
//! * `comment` — the comment text alone (for `// lint: allow(..)`
//!   pragmas).
//!
//! The lexer understands line and nested block comments, plain and raw
//! (byte) strings with arbitrary `#` fences, char and byte-char
//! literals, and tells lifetimes (`'a`) apart from char literals.

/// One source line in the three synchronized views.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// Code with comments stripped, string literals intact.
    pub code: String,
    /// Code with comments stripped and literal contents blanked.
    pub masked: String,
    /// Comment text on this line (line + block comments concatenated).
    pub comment: String,
    /// Inside a `#[cfg(test)]`- or `#[test]`-marked item's braces.
    pub in_test: bool,
    /// Brace depth at the start of the line (code braces only).
    pub depth: i32,
}

/// A lexed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    pub lines: Vec<Line>,
}

impl SourceFile {
    /// The whole file's `masked` view joined with `\n`, plus a map from
    /// character offset to 0-based line index.
    pub fn masked_text(&self) -> (String, Vec<usize>) {
        Self::join(self.lines.iter().map(|l| l.masked.as_str()))
    }

    /// The whole file's `code` view joined with `\n`. The `code` and
    /// `masked` views are character-for-character aligned, so offsets
    /// from one index into the other.
    pub fn code_text(&self) -> (String, Vec<usize>) {
        Self::join(self.lines.iter().map(|l| l.code.as_str()))
    }

    fn join<'a>(lines: impl Iterator<Item = &'a str>) -> (String, Vec<usize>) {
        let mut text = String::new();
        let mut line_of = Vec::new();
        for (i, line) in lines.enumerate() {
            for _ in line.chars() {
                line_of.push(i);
            }
            line_of.push(i); // the newline
            text.push_str(line);
            text.push('\n');
        }
        (text, line_of)
    }
}

#[derive(PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(usize),
    CharLit,
}

/// Lex `src` into synchronized per-line views.
pub fn analyze(path: &str, src: &str) -> SourceFile {
    let chars: Vec<char> = src.chars().collect();
    let mut lines: Vec<Line> = Vec::new();
    let mut cur = Line::default();
    let mut state = State::Code;
    let mut i = 0usize;

    macro_rules! flush_line {
        () => {
            lines.push(std::mem::take(&mut cur));
        };
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            flush_line!();
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let prev_ident = i > 0 && is_ident(chars[i - 1]);
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    cur.masked.push('"');
                    state = State::Str;
                    i += 1;
                } else if (c == 'r' || c == 'b') && !prev_ident {
                    // Possible raw string r"..", r#".."#, byte string
                    // b"..", byte-raw br#".."#, or byte char b'x'.
                    let mut j = i;
                    if c == 'b' && (chars.get(j + 1) == Some(&'r') || chars.get(j + 1) == Some(&'"') || chars.get(j + 1) == Some(&'\'')) {
                        if chars.get(j + 1) == Some(&'\'') {
                            // byte char literal b'x'
                            cur.code.push('b');
                            cur.masked.push('b');
                            cur.code.push('\'');
                            cur.masked.push('\'');
                            state = State::CharLit;
                            i += 2;
                            continue;
                        }
                        if chars.get(j + 1) == Some(&'"') {
                            cur.code.push_str("b\"");
                            cur.masked.push_str("b\"");
                            state = State::Str;
                            i += 2;
                            continue;
                        }
                        j += 1; // br...
                    }
                    // Here chars[j] is 'r' (raw prefix candidate).
                    let mut hashes = 0usize;
                    let mut k = j + 1;
                    while chars.get(k) == Some(&'#') {
                        hashes += 1;
                        k += 1;
                    }
                    if chars.get(k) == Some(&'"') {
                        for &ch in &chars[i..=k] {
                            cur.code.push(ch);
                            cur.masked.push(ch);
                        }
                        state = State::RawStr(hashes);
                        i = k + 1;
                    } else {
                        // r#ident raw identifier or plain code.
                        cur.code.push(c);
                        cur.masked.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Lifetime or char literal?
                    let next = chars.get(i + 1);
                    let is_char = match next {
                        Some('\\') => true,
                        Some(&n) => chars.get(i + 2) == Some(&'\'') && n != '\'',
                        None => false,
                    };
                    cur.code.push('\'');
                    cur.masked.push('\'');
                    i += 1;
                    if is_char {
                        state = State::CharLit;
                    }
                } else {
                    cur.code.push(c);
                    cur.masked.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    if depth == 1 {
                        state = State::Code;
                        // Keep views aligned where a block comment sat
                        // mid-line, so token scans don't glue tokens.
                        cur.code.push(' ');
                        cur.masked.push(' ');
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    cur.code.push(c);
                    cur.masked.push(' ');
                    if let Some(&n) = chars.get(i + 1) {
                        if n != '\n' {
                            cur.code.push(n);
                            cur.masked.push(' ');
                            i += 1;
                        }
                    }
                    i += 1;
                } else if c == '"' {
                    cur.code.push('"');
                    cur.masked.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    cur.code.push(c);
                    cur.masked.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for h in 0..hashes {
                        if chars.get(i + 1 + h) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        cur.code.push('"');
                        cur.masked.push('"');
                        for _ in 0..hashes {
                            cur.code.push('#');
                            cur.masked.push('#');
                        }
                        state = State::Code;
                        i += 1 + hashes;
                        continue;
                    }
                }
                cur.code.push(c);
                cur.masked.push(' ');
                i += 1;
            }
            State::CharLit => {
                // Char contents are blanked in BOTH views: a `'"'`
                // literal must not open a string in the `code` view.
                if c == '\\' {
                    cur.code.push(' ');
                    cur.masked.push(' ');
                    if chars.get(i + 1).is_some() {
                        cur.code.push(' ');
                        cur.masked.push(' ');
                        i += 1;
                    }
                    i += 1;
                } else if c == '\'' {
                    cur.code.push('\'');
                    cur.masked.push('\'');
                    state = State::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    cur.masked.push(' ');
                    i += 1;
                }
            }
        }
    }
    flush_line!();

    mark_test_regions(&mut lines);
    compute_depths(&mut lines);
    SourceFile { path: path.to_string(), lines }
}

pub fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Mark lines covered by `#[cfg(test)]` / `#[test]` items.
///
/// Brace-tracks the masked view: an attribute whose content names
/// `test` arms the *next* `{ ... }` opened at the same depth (skipping
/// intervening attributes); a `;` at that depth first (e.g.
/// `#[cfg(test)] use foo;`) disarms it. Regions nest with modules.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i32 = 0;
    // Depths at which an armed test region's braces close.
    let mut test_close: Vec<i32> = Vec::new();
    let mut armed: Option<i32> = None;

    for line in lines.iter_mut() {
        let mut touched = !test_close.is_empty();
        let chars: Vec<char> = line.masked.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c == '#' && chars.get(i + 1) == Some(&'[') {
                // Read the attribute (brackets nest: #[cfg(any(a, b))]).
                let mut level = 0i32;
                let mut j = i + 1;
                let mut content = String::new();
                while j < chars.len() {
                    match chars[j] {
                        '[' => level += 1,
                        ']' => {
                            level -= 1;
                            if level == 0 {
                                break;
                            }
                        }
                        ch => content.push(ch),
                    }
                    j += 1;
                }
                if attr_names_test(&content) {
                    armed = Some(depth);
                }
                i = j + 1;
                continue;
            }
            match c {
                '{' => {
                    if armed == Some(depth) {
                        test_close.push(depth);
                        armed = None;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if test_close.last() == Some(&depth) {
                        test_close.pop();
                    }
                }
                ';' if armed == Some(depth) => {
                    armed = None;
                }
                _ => {}
            }
            touched |= !test_close.is_empty();
            i += 1;
        }
        line.in_test = touched;
    }
}

/// An attribute body (`cfg(test)`, `test`, `cfg(all(test, unix))`...)
/// that gates the following item on test builds.
fn attr_names_test(content: &str) -> bool {
    let t = content.trim();
    if t == "test" || t == "tokio::test" {
        return true;
    }
    if !t.starts_with("cfg") {
        return false;
    }
    // `test` as a standalone word inside the cfg predicate.
    let bytes: Vec<char> = t.chars().collect();
    let word: Vec<char> = "test".chars().collect();
    let mut i = 0;
    while i + word.len() <= bytes.len() {
        if bytes[i..i + word.len()] == word[..] {
            let before_ok = i == 0 || !is_ident(bytes[i - 1]);
            let after = bytes.get(i + word.len());
            let after_ok = after.is_none_or(|&c| !is_ident(c) && c != '-');
            if before_ok && after_ok {
                return true;
            }
        }
        i += 1;
    }
    false
}

/// Record each line's starting brace depth (masked view).
fn compute_depths(lines: &mut [Line]) {
    let mut depth: i32 = 0;
    for line in lines.iter_mut() {
        line.depth = depth;
        for c in line.masked.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
    }
}

/// Collect the string literals appearing in a `code` view line.
pub fn string_literals(code: &str) -> Vec<String> {
    let chars: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        if chars[i] == '"' {
            let mut lit = String::new();
            i += 1;
            while i < chars.len() && chars[i] != '"' {
                if chars[i] == '\\' && i + 1 < chars.len() {
                    lit.push(chars[i + 1]);
                    i += 2;
                } else {
                    lit.push(chars[i]);
                    i += 1;
                }
            }
            out.push(lit);
        }
        i += 1;
    }
    out
}

/// Does `haystack` contain `needle` starting at a non-identifier
/// boundary? (So `panic!` does not match `dont_panic!`.)
pub fn contains_token(haystack: &str, needle: &str) -> bool {
    find_token(haystack, needle, 0).is_some()
}

/// Find `needle` with identifier-boundary checks on whichever of its
/// ends are identifier characters (so `panic!` does not match
/// `dont_panic!` and `let` does not match `letter`, while `.lock()`
/// matches right after a receiver). Search starts at char index `from`.
pub fn find_token(haystack: &str, needle: &str, from: usize) -> Option<usize> {
    let h: Vec<char> = haystack.chars().collect();
    let n: Vec<char> = needle.chars().collect();
    if n.is_empty() || h.len() < n.len() {
        return None;
    }
    let head_is_ident = is_ident(n[0]);
    let tail_is_ident = is_ident(n[n.len() - 1]);
    let mut i = from;
    while i + n.len() <= h.len() {
        if h[i..i + n.len()] == n[..] {
            let before_ok = !head_is_ident || i == 0 || !is_ident(h[i - 1]);
            let after_ok =
                !tail_is_ident || h.get(i + n.len()).is_none_or(|&c| !is_ident(c));
            if before_ok && after_ok {
                return Some(i);
            }
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_separated() {
        let content = "a // not a comment";
        let f = analyze("t.rs", &format!("let x = \"{content}\"; // real\n"));
        assert_eq!(f.lines[0].code, format!("let x = \"{content}\"; "));
        let blanks = " ".repeat(content.len());
        assert_eq!(f.lines[0].masked, format!("let x = \"{blanks}\"; "));
        assert_eq!(f.lines[0].comment, " real");
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let f = analyze("t.rs", "fn f<'a>(s: &'a str) { let r = r#\"un\"wrap()\"#; }\n");
        assert!(f.lines[0].masked.contains("'a"));
        assert!(!f.lines[0].masked.contains("wrap"));
        assert!(f.lines[0].code.contains("un\"wrap()"));
    }

    #[test]
    fn char_literals_are_masked() {
        let f = analyze("t.rs", "let c = '\"'; let d = b'x'; let s = \"ok\";\n");
        assert_eq!(string_literals(&f.lines[0].code), vec!["ok".to_string()]);
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let f = analyze("t.rs", "a /* one /* two */ still */ b\n/* open\nstill comment\n*/ code\n");
        let words: Vec<&str> = f.lines[0].code.split_whitespace().collect();
        assert_eq!(words, vec!["a", "b"]);
        assert_eq!(f.lines[2].code, "");
        assert!(f.lines[3].code.contains("code"));
    }

    #[test]
    fn cfg_test_regions_cover_modules_and_fns() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn inner() { x.unwrap(); }\n}\nfn live2() {}\n#[test]\nfn t() { y.unwrap(); }\nfn live3() {}\n";
        let f = analyze("t.rs", src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[5].in_test);
        assert!(f.lines[7].in_test);
        assert!(!f.lines[8].in_test);
    }

    #[test]
    fn cfg_test_on_braceless_item_disarms() {
        let f = analyze("t.rs", "#[cfg(test)]\nuse foo::bar;\nfn live() { x.unwrap(); }\n");
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn token_boundaries() {
        assert!(contains_token("panic!(\"x\")", "panic!"));
        assert!(!contains_token("dont_panic!(\"x\")", "panic!"));
        assert!(contains_token("core::panic!()", "panic!"));
    }

    #[test]
    fn multiline_string_stays_masked() {
        let f = analyze("t.rs", "let s = \"line one\nunwrap() inside\";\nx.unwrap();\n");
        assert!(!f.lines[1].masked.contains("unwrap"));
        assert!(f.lines[2].masked.contains(".unwrap()"));
    }
}
