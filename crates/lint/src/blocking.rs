//! The `blocking` rule: no blocking operation on an annotated hot
//! context without a reasoned pragma.
//!
//! `lint.toml` names the hot contexts (`[hot_contexts] fns = [...]` —
//! server reader threads, executor lanes, the group-commit leader) and
//! the blocking vocabulary (`[blocking] ops` — call tokens like
//! `.sync()` or `sleep`; `[blocking] contended` — locks whose waits
//! are long enough to count, like the commit mutex). The rule walks
//! the call graph breadth-first from every hot fn and flags each
//! direct blocking site in a reachable fn, with the call path from the
//! hot context, unless the site carries
//! `// lint: allow(blocking, <reason>)`.
//!
//! Genuine blocking on a hot path is sometimes the design (the
//! group-commit leader's one fsync per batch *is* the throughput
//! win); the pragma reason is where that argument lives, adjacent to
//! the code it excuses.

use std::collections::BTreeMap;

use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::lex::{find_token, SourceFile};
use crate::parse::{Event, FnItem};
use crate::rules::{suppression_line, Diagnostic, PragmaUse, Severity};

/// One direct blocking site inside a fn body.
struct Site {
    line: usize,
    what: String,
}

/// Does this masked line contain the blocking op token? Dotted ops
/// (`.sync()`) match as substrings; bare names (`sleep`) match as
/// identifiers followed by `(`.
fn op_on_line(masked: &str, op: &str) -> bool {
    if op.starts_with('.') {
        return masked.contains(op);
    }
    let mut from = 0usize;
    while let Some(at) = find_token(masked, op, from) {
        let after: String = masked.chars().skip(at + op.chars().count()).collect();
        if after.starts_with('(') {
            return true;
        }
        from = at + 1;
    }
    false
}

/// Direct blocking sites of one fn: configured op tokens on its lines
/// plus acquisitions of declared-contended locks.
fn direct_sites(file: &SourceFile, item: &FnItem, cfg: &Config) -> Vec<Site> {
    let mut out: Vec<Site> = Vec::new();
    for idx in item.first_line..=item.last_line {
        let line = &file.lines[idx];
        if line.in_test {
            continue;
        }
        for op in &cfg.blocking_ops {
            if op_on_line(&line.masked, op) {
                out.push(Site { line: idx, what: format!("`{op}`") });
            }
        }
    }
    for ev in &item.events {
        if let Event::Acquire { lock, line, .. } = ev {
            if cfg.blocking_contended.iter().any(|c| c == lock) {
                out.push(Site {
                    line: *line,
                    what: format!("a wait on contended lock '{lock}'"),
                });
            }
        }
    }
    out.sort_by_key(|s| s.line);
    out
}

/// Walk the call graph from every configured hot context and flag
/// blocking sites in reachable fns.
pub fn check_blocking(
    files: &[SourceFile],
    items: &[FnItem],
    graph: &CallGraph,
    cfg: &Config,
    used: &mut PragmaUse,
    out: &mut Vec<Diagnostic>,
) {
    if cfg.hot_fns.is_empty() || (cfg.blocking_ops.is_empty() && cfg.blocking_contended.is_empty())
    {
        return;
    }
    // BFS per hot context; the first context to reach a fn owns its
    // attribution (config order, then shortest path).
    let mut reached: BTreeMap<usize, (String, Vec<String>)> = BTreeMap::new();
    for hot in &cfg.hot_fns {
        let mut queue: Vec<(usize, Vec<String>)> = graph
            .named(hot)
            .iter()
            .map(|&i| (i, vec![items[i].name.clone()]))
            .collect();
        let mut qi = 0;
        while qi < queue.len() {
            let (idx, path) = queue[qi].clone();
            qi += 1;
            if reached.contains_key(&idx) {
                continue;
            }
            reached.insert(idx, (hot.clone(), path.clone()));
            for callee in graph.callees_of(&items[idx]) {
                if !reached.contains_key(&callee) {
                    let mut p = path.clone();
                    p.push(items[callee].name.clone());
                    queue.push((callee, p));
                }
            }
        }
    }

    let mut flagged: Vec<(usize, usize)> = Vec::new(); // (file, line) dedup
    for (&idx, (hot, path)) in &reached {
        let item = &items[idx];
        let file = &files[item.file];
        for site in direct_sites(file, item, cfg) {
            if flagged.contains(&(item.file, site.line)) {
                continue;
            }
            flagged.push((item.file, site.line));
            if let Some(pline) = suppression_line(file, site.line, "blocking") {
                used.mark(item.file, pline, "blocking");
                continue;
            }
            let route = if path.len() > 1 {
                format!(" (path: {})", path.join(" -> "))
            } else {
                String::new()
            };
            out.push(Diagnostic {
                path: file.path.clone(),
                line: site.line + 1,
                rule: "blocking",
                msg: format!(
                    "blocking {} reachable from hot context `{hot}`{route} — move it \
                     off the hot path or annotate `// lint: allow(blocking, <reason>)`",
                    site.what
                ),
                severity: Severity::Error,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::analyze;
    use crate::parse::parse_items;

    fn run(src: &str, cfg: &Config) -> Vec<Diagnostic> {
        let files = vec![analyze("crates/x/src/lib.rs", src)];
        let items = parse_items(&files, cfg);
        let graph = CallGraph::build(&items);
        let mut used = PragmaUse::default();
        let mut out = Vec::new();
        check_blocking(&files, &items, &graph, cfg, &mut used, &mut out);
        out
    }

    fn cfg() -> Config {
        let mut cfg = Config::default();
        cfg.hot_fns.push("reader_loop".into());
        cfg.blocking_ops.push(".sync()".into());
        cfg.blocking_ops.push("sleep".into());
        cfg.blocking_contended.push("commit_mutex".into());
        cfg
    }

    #[test]
    fn blocking_reachable_from_a_hot_context_is_flagged_with_the_path() {
        let src = "fn reader_loop(&self) {\n    self.drain_frames();\n}\n\
                   fn drain_frames(&self) {\n    self.wal.sync();\n}\n";
        let d = run(src, &cfg());
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].msg.contains(".sync()"), "{}", d[0].msg);
        assert!(d[0].msg.contains("reader_loop -> drain_frames"), "{}", d[0].msg);
    }

    #[test]
    fn contended_lock_waits_count_and_pragmas_suppress() {
        let src = "fn reader_loop(&self) {\n    let g = self.commit_mutex.lock();\n}\n";
        let d = run(src, &cfg());
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].msg.contains("commit_mutex"), "{}", d[0].msg);
        let src = "fn reader_loop(&self) {\n    let g = self.commit_mutex.lock(); // lint: allow(blocking, startup only)\n}\n";
        assert!(run(src, &cfg()).is_empty());
    }

    #[test]
    fn unreachable_blocking_is_not_flagged() {
        let src = "fn background(&self) {\n    self.wal.sync();\n}\n";
        assert!(run(src, &cfg()).is_empty());
    }
}
