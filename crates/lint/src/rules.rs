//! The rule engine: five project-specific invariants plus the pragma
//! meta-rule.
//!
//! | rule        | invariant                                                      |
//! |-------------|----------------------------------------------------------------|
//! | `panic`     | no `.unwrap()`/`.expect(`/`panic!`/`unreachable!`/`todo!` on non-test engine paths |
//! | `failpoint` | every `fail_point!`/`mmdb_fault::eval*` site is rostered in its crate's `FAILPOINT_SITES`, and every roster entry has a live call site |
//! | `relaxed`   | `Ordering::Relaxed` only in the designated counter modules     |
//! | `tick`      | every loop in the executor files contains a `cancel::tick()` (or tick-forwarding) call |
//! | `lock`      | nested `.lock()`/`.read()`/`.write()` acquisitions follow the declared lock-order table |
//! | `pragma`    | every `// lint: allow(rule, reason)` names a known rule and gives a reason |
//!
//! Suppression is pragma-only and always carries a reason:
//! `// lint: allow(panic, length checked two lines up)` on the
//! offending line, or on a comment-only line directly above it.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::Config;
use crate::lex::{contains_token, find_token, is_ident, string_literals, SourceFile};

/// Every rule name a pragma may reference.
pub const RULE_NAMES: &[&str] = &["panic", "failpoint", "relaxed", "tick", "lock", "pragma"];

/// One `file:line: rule: message` finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}: {}", self.path, self.line, self.rule, self.msg)
    }
}

/// Run every rule over the lexed files.
pub fn check_files(files: &[SourceFile], cfg: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in files {
        check_pragmas(file, &mut out);
        check_no_panic(file, cfg, &mut out);
        check_relaxed(file, cfg, &mut out);
        check_tick(file, cfg, &mut out);
        check_locks(file, cfg, &mut out);
    }
    check_failpoints(files, cfg, &mut out);
    out.sort();
    out.dedup();
    out
}

/// Test-only source by location: `tests/`, `benches/`, `examples/`,
/// `fixtures/` trees hold no production paths.
fn is_test_path(path: &str) -> bool {
    path.split('/').any(|c| matches!(c, "tests" | "benches" | "examples" | "fixtures"))
}

fn path_exempt(path: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p.as_str()))
}

// ---- pragmas ---------------------------------------------------------------

/// Pragmas parsed from one comment: `(rule, has_reason)` pairs.
fn parse_pragmas(comment: &str) -> Option<Vec<(String, bool)>> {
    // A pragma comment *starts* with `lint:` (doc comments that merely
    // quote the grammar mid-sentence are not pragmas).
    let trimmed = comment.trim_start();
    if !trimmed.starts_with("lint:") {
        return None;
    }
    let mut rest = &trimmed[5..];
    let mut out = Vec::new();
    while let Some(open) = rest.find("allow(") {
        let body_start = open + 6;
        let Some(close) = rest[body_start..].find(')') else {
            out.push((String::new(), false));
            break;
        };
        let body = &rest[body_start..body_start + close];
        match body.split_once(',') {
            Some((rule, reason)) => {
                out.push((rule.trim().to_string(), !reason.trim().is_empty()))
            }
            None => out.push((body.trim().to_string(), false)),
        }
        rest = &rest[body_start + close + 1..];
    }
    Some(out)
}

/// Is `rule` suppressed at `idx` — by a pragma on the line itself, or
/// on the run of comment-only lines directly above it?
fn suppressed(file: &SourceFile, idx: usize, rule: &str) -> bool {
    let allows = |i: usize| -> bool {
        parse_pragmas(&file.lines[i].comment)
            .is_some_and(|ps| ps.iter().any(|(r, ok)| r == rule && *ok))
    };
    if allows(idx) {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let line = &file.lines[i];
        if !line.code.trim().is_empty() {
            return false;
        }
        if line.comment.is_empty() {
            return false;
        }
        if allows(i) {
            return true;
        }
    }
    false
}

/// The pragma meta-rule: malformed or unknown-rule pragmas are
/// themselves violations, so a typo can never silently suppress.
fn check_pragmas(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (idx, line) in file.lines.iter().enumerate() {
        let Some(pragmas) = parse_pragmas(&line.comment) else { continue };
        if pragmas.is_empty() {
            out.push(Diagnostic {
                path: file.path.clone(),
                line: idx + 1,
                rule: "pragma",
                msg: "`lint:` comment without an `allow(rule, reason)` clause".to_string(),
            });
            continue;
        }
        for (rule, has_reason) in pragmas {
            if !RULE_NAMES.contains(&rule.as_str()) {
                out.push(Diagnostic {
                    path: file.path.clone(),
                    line: idx + 1,
                    rule: "pragma",
                    msg: format!(
                        "unknown rule '{rule}' in lint pragma (known: {})",
                        RULE_NAMES.join(", ")
                    ),
                });
            } else if !has_reason {
                out.push(Diagnostic {
                    path: file.path.clone(),
                    line: idx + 1,
                    rule: "pragma",
                    msg: format!(
                        "lint pragma for '{rule}' needs a reason: `lint: allow({rule}, <why>)`"
                    ),
                });
            }
        }
    }
}

// ---- rule: panic -----------------------------------------------------------

const PANIC_PATTERNS: &[&str] = &[".unwrap()", ".expect(", "panic!", "unreachable!", "todo!"];

fn check_no_panic(file: &SourceFile, cfg: &Config, out: &mut Vec<Diagnostic>) {
    if is_test_path(&file.path) || path_exempt(&file.path, &cfg.no_panic_exempt) {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let mut found: Vec<&str> = Vec::new();
        for pat in PANIC_PATTERNS {
            let hit = if pat.starts_with('.') {
                line.masked.contains(pat)
            } else {
                contains_token(&line.masked, pat)
            };
            if hit {
                found.push(pat);
            }
        }
        if found.is_empty() || suppressed(file, idx, "panic") {
            continue;
        }
        out.push(Diagnostic {
            path: file.path.clone(),
            line: idx + 1,
            rule: "panic",
            msg: format!(
                "{} on a non-test engine path; return a typed Error or annotate \
                 `// lint: allow(panic, <reason>)`",
                found.join(" and ")
            ),
        });
    }
}

// ---- rule: relaxed ---------------------------------------------------------

fn check_relaxed(file: &SourceFile, cfg: &Config, out: &mut Vec<Diagnostic>) {
    if is_test_path(&file.path) || cfg.relaxed_allowed.iter().any(|p| p == &file.path) {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || !line.masked.contains("Ordering::Relaxed") {
            continue;
        }
        if suppressed(file, idx, "relaxed") {
            continue;
        }
        out.push(Diagnostic {
            path: file.path.clone(),
            line: idx + 1,
            rule: "relaxed",
            msg: "Ordering::Relaxed outside the designated counter modules; use a \
                  stronger ordering or annotate `// lint: allow(relaxed, <reason>)`"
                .to_string(),
        });
    }
}

// ---- rule: tick ------------------------------------------------------------

fn check_tick(file: &SourceFile, cfg: &Config, out: &mut Vec<Diagnostic>) {
    if !cfg.tick_files.iter().any(|p| p == &file.path) {
        return;
    }
    let (text, line_of) = file.masked_text();
    let chars: Vec<char> = text.chars().collect();
    for (kw_pos, body) in find_loops(&chars) {
        let line_idx = line_of[kw_pos];
        if file.lines[line_idx].in_test {
            continue;
        }
        let body_text: String = chars[body.0..body.1].iter().collect();
        if calls_tick(&body_text) {
            continue;
        }
        if suppressed(file, line_idx, "tick") {
            continue;
        }
        out.push(Diagnostic {
            path: file.path.clone(),
            line: line_idx + 1,
            rule: "tick",
            msg: "executor loop without a cancel::tick() call — rows iterated here \
                  escape deadlines; tick per item or annotate \
                  `// lint: allow(tick, <reason>)`"
                .to_string(),
        });
    }
}

/// Does `body` call a tick function — `cancel::tick()`, `.tick()`, or
/// any tick-forwarding helper (`tick_every(..)`, `forward_ticks(..)`)?
fn calls_tick(body: &str) -> bool {
    let cs: Vec<char> = body.chars().collect();
    let mut k = 0usize;
    while k < cs.len() {
        if is_ident(cs[k]) && (k == 0 || !is_ident(cs[k - 1])) {
            let start = k;
            while k < cs.len() && is_ident(cs[k]) {
                k += 1;
            }
            let ident: String = cs[start..k].iter().collect();
            if ident.contains("tick") && cs.get(k) == Some(&'(') {
                return true;
            }
        } else {
            k += 1;
        }
    }
    false
}

/// Find `for`/`while`/`loop` loops: (keyword position, body span).
fn find_loops(chars: &[char]) -> Vec<(usize, (usize, usize))> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if !c.is_alphabetic() || (i > 0 && is_ident(chars[i - 1])) {
            i += 1;
            continue;
        }
        let mut j = i;
        while j < chars.len() && is_ident(chars[j]) {
            j += 1;
        }
        let word: String = chars[i..j].iter().collect();
        let needs_in = match word.as_str() {
            "for" => true,
            "while" | "loop" => false,
            _ => {
                i = j;
                continue;
            }
        };
        // `for<'a>` higher-ranked bounds are not loops.
        let next_nonws = chars[j..].iter().find(|c| !c.is_whitespace());
        if word == "for" && next_nonws == Some(&'<') {
            i = j;
            continue;
        }
        if word == "loop" && next_nonws != Some(&'{') {
            i = j;
            continue;
        }
        // Scan the header to the body's `{` at bracket depth 0.
        let mut k = j;
        let mut depth = 0i32;
        let mut saw_in = false;
        let mut open = None;
        while k < chars.len() {
            match chars[k] {
                '(' | '[' => depth += 1,
                ')' | ']' => depth -= 1,
                '{' if depth == 0 => {
                    open = Some(k);
                    break;
                }
                ';' if depth == 0 => break, // not a loop header after all
                c2 if is_ident(c2) => {
                    let mut m = k;
                    while m < chars.len() && is_ident(chars[m]) {
                        m += 1;
                    }
                    let w: String = chars[k..m].iter().collect();
                    if w == "in" && (k == 0 || !is_ident(chars[k - 1])) {
                        saw_in = true;
                    }
                    k = m;
                    continue;
                }
                _ => {}
            }
            k += 1;
        }
        let Some(open) = open else {
            i = j;
            continue;
        };
        if needs_in && !saw_in {
            // `impl Trait for Type {` — not a loop.
            i = j;
            continue;
        }
        // Matching close brace.
        let mut level = 0i32;
        let mut end = open;
        for (off, &c2) in chars[open..].iter().enumerate() {
            match c2 {
                '{' => level += 1,
                '}' => {
                    level -= 1;
                    if level == 0 {
                        end = open + off;
                        break;
                    }
                }
                _ => {}
            }
        }
        out.push((i, (open, end + 1)));
        i = j;
    }
    out
}

// ---- rule: lock ------------------------------------------------------------

#[derive(Debug)]
struct Guard {
    /// Last path segment of the receiver, e.g. `versions` for
    /// `self.store.versions.write()`.
    name: String,
    /// Binding variable when the guard was `let`-bound.
    var: Option<String>,
    /// Brace depth of the binding; the guard dies when a line starts
    /// shallower than this.
    depth: i32,
}

fn check_locks(file: &SourceFile, cfg: &Config, out: &mut Vec<Diagnostic>) {
    if is_test_path(&file.path) || path_exempt(&file.path, &cfg.locks_exempt) {
        return;
    }
    let (text, line_of) = file.masked_text();
    let chars: Vec<char> = text.chars().collect();
    for (start, end) in find_fn_bodies(&chars) {
        let first_line = line_of[start];
        let last_line = line_of[end.min(line_of.len() - 1)];
        if file.lines[first_line].in_test {
            continue;
        }
        lint_fn_locks(file, cfg, first_line, last_line, out);
    }
}

/// Body spans (between the braces) of every `fn` item.
fn find_fn_bodies(chars: &[char]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < chars.len() {
        if chars[i] == 'f'
            && chars[i + 1] == 'n'
            && (i == 0 || !is_ident(chars[i - 1]))
            && chars.get(i + 2).is_some_and(|&c| !is_ident(c))
        {
            // Find the body `{` at paren depth 0, or `;` (no body).
            let mut depth = 0i32;
            let mut k = i + 2;
            let mut open = None;
            while k < chars.len() {
                match chars[k] {
                    '(' | '[' => depth += 1,
                    ')' | ']' => depth -= 1,
                    '{' if depth == 0 => {
                        open = Some(k);
                        break;
                    }
                    ';' if depth == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            if let Some(open) = open {
                let mut level = 0i32;
                for (off, &c) in chars[open..].iter().enumerate() {
                    match c {
                        '{' => level += 1,
                        '}' => {
                            level -= 1;
                            if level == 0 {
                                out.push((open, open + off));
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                i = open + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

const ACQUIRE_PATTERNS: &[&str] = &[".lock()", ".read()", ".write()"];

fn lint_fn_locks(
    file: &SourceFile,
    cfg: &Config,
    first_line: usize,
    last_line: usize,
    out: &mut Vec<Diagnostic>,
) {
    let mut active: Vec<Guard> = Vec::new();
    let lines = file.lines.iter().enumerate().take(last_line + 1).skip(first_line);
    for (idx, line) in lines {
        if line.in_test {
            continue;
        }
        active.retain(|g| line.depth >= g.depth);
        if line.masked.contains("drop(") {
            active.retain(|g| match &g.var {
                Some(v) => {
                    !line.masked.contains(&format!("drop({v})"))
                        && !line.masked.contains(&format!("drop(&{v})"))
                }
                None => true,
            });
        }
        let lchars: Vec<char> = line.masked.chars().collect();
        let mut pos = 0usize;
        let mut line_acquires: Vec<Guard> = Vec::new();
        loop {
            let mut best: Option<(usize, &str)> = None;
            for pat in ACQUIRE_PATTERNS {
                if let Some(p) = find_token_from(&lchars, pat, pos) {
                    if best.is_none_or(|(b, _)| p < b) {
                        best = Some((p, pat));
                    }
                }
            }
            let Some((at, pat)) = best else { break };
            let name = receiver_name(&lchars, at);
            // Report undeclared nestings against everything still held.
            let quiet = suppressed(file, idx, "lock");
            for g in active.iter().chain(line_acquires.iter()) {
                if g.name == name || cfg.lock_edge_declared(&g.name, &name) || quiet {
                    continue;
                }
                out.push(Diagnostic {
                    path: file.path.clone(),
                    line: idx + 1,
                    rule: "lock",
                    msg: format!(
                        "'{name}' acquired while '{}' is held — undeclared lock \
                         nesting (deadlock risk); declare `[[lock_order]] outer = \
                         \"{}\" / inner = \"{name}\"` in lint.toml if this order is \
                         intended, or drop the outer guard first",
                        g.name, g.name
                    ),
                });
            }
            // Held beyond this statement? Only a plain `let g = ...();`
            // binding keeps the guard alive; any other shape consumes it
            // within the statement.
            let after: String = lchars[at + pat.len()..].iter().collect();
            let has_let = find_token(&line.masked, "let", 0)
                .is_some_and(|let_at| let_at < at);
            let held = after.trim_start().starts_with(';') && has_let;
            let depth_here = line.depth
                + lchars[..at].iter().filter(|&&c| c == '{').count() as i32
                - lchars[..at].iter().filter(|&&c| c == '}').count() as i32;
            let guard = Guard { name, var: let_binding(&line.masked), depth: depth_here };
            if held {
                active.push(guard);
            } else {
                // Alive for the rest of this statement (same line).
                line_acquires.push(guard);
            }
            pos = at + pat.len();
        }
    }
}

/// Find `needle` as a token in `chars` at or after `from`.
fn find_token_from(chars: &[char], needle: &str, from: usize) -> Option<usize> {
    let s: String = chars[from..].iter().collect();
    find_token(&s, needle, 0).map(|p| p + from)
}

/// The identifier immediately left of the acquisition's dot: the lock's
/// field name (`versions` for `self.store.versions.write()`).
fn receiver_name(chars: &[char], dot_at: usize) -> String {
    let mut start = dot_at;
    while start > 0 && is_ident(chars[start - 1]) {
        start -= 1;
    }
    if start == dot_at {
        return "<expr>".to_string();
    }
    chars[start..dot_at].iter().collect()
}

/// The variable bound by a `let [mut] name = ...` line, if any.
fn let_binding(masked: &str) -> Option<String> {
    let at = find_token(masked, "let", 0)?;
    let rest: Vec<char> = masked.chars().skip(at + 3).collect();
    let mut i = 0usize;
    while i < rest.len() && rest[i].is_whitespace() {
        i += 1;
    }
    // Skip a `mut` keyword.
    if rest.len() >= i + 4 && rest[i..i + 3] == ['m', 'u', 't'] && rest[i + 3].is_whitespace() {
        i += 4;
        while i < rest.len() && rest[i].is_whitespace() {
            i += 1;
        }
    }
    let start = i;
    while i < rest.len() && is_ident(rest[i]) {
        i += 1;
    }
    if i == start {
        return None; // tuple/struct pattern — treated as unnamed
    }
    Some(rest[start..i].iter().collect())
}

// ---- rule: failpoint -------------------------------------------------------

const FAILPOINT_MARKERS: &[&str] = &[
    "fail_point!(",
    "mmdb_fault::eval(",
    "mmdb_fault::eval_unit(",
    "mmdb_fault::eval_to_error(",
];

/// The crate a workspace-relative path belongs to.
fn crate_of(path: &str) -> String {
    let parts: Vec<&str> = path.split('/').collect();
    if parts.len() >= 2 && parts[0] == "crates" {
        return format!("crates/{}", parts[1]);
    }
    if parts.len() >= 2 && parts[0] == "shims" {
        return format!("shims/{}", parts[1]);
    }
    "mmdb".to_string() // the root package (src/, tests/)
}

fn check_failpoints(files: &[SourceFile], cfg: &Config, out: &mut Vec<Diagnostic>) {
    // site → first declaration/use location, per crate.
    type SiteMap = BTreeMap<String, (String, usize)>;
    let mut rosters: BTreeMap<String, SiteMap> = BTreeMap::new();
    let mut uses: BTreeMap<String, SiteMap> = BTreeMap::new();
    let mut suppressed_sites: BTreeSet<(String, String)> = BTreeSet::new();

    for file in files {
        if path_exempt(&file.path, &cfg.failpoints_exempt) || is_test_path(&file.path) {
            continue;
        }
        let krate = crate_of(&file.path);
        // Roster: `FAILPOINT_SITES ... = &[ "a", "b", ... ];` — find the
        // initializer's bracket span in the masked view, then read the
        // site strings from the aligned code view.
        let (masked, line_of) = file.masked_text();
        let (code, _) = file.code_text();
        let mchars: Vec<char> = masked.chars().collect();
        let cchars: Vec<char> = code.chars().collect();
        let mut from = 0usize;
        while let Some(at) = find_token(&masked, "FAILPOINT_SITES", from) {
            from = at + 1;
            // The initializer's `=`; a re-export (`pub use ...;`) has none
            // before the `;`.
            let Some(eq) = mchars[at..].iter().position(|&c| c == '=' || c == ';') else {
                continue;
            };
            if mchars[at + eq] == ';' {
                continue;
            }
            let Some(open_rel) = mchars[at + eq..].iter().position(|&c| c == '[') else {
                continue;
            };
            let open = at + eq + open_rel;
            let mut depth = 0i32;
            let mut close = open;
            for (off, &c) in mchars[open..].iter().enumerate() {
                match c {
                    '[' => depth += 1,
                    ']' => {
                        depth -= 1;
                        if depth == 0 {
                            close = open + off;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            let span: String = cchars[open..close].iter().collect();
            // Record each site at the line its literal sits on.
            let mut scan_from = open;
            for site in string_literals(&span) {
                let lineno = line_of[scan_from.min(line_of.len() - 1)];
                // Advance past this literal for per-line attribution.
                let needle = format!("\"{site}\"");
                let tail: String = cchars[scan_from..close].iter().collect();
                let here = tail.find(&needle).map(|p| scan_from + p).unwrap_or(scan_from);
                let lineno = line_of.get(here).copied().unwrap_or(lineno);
                scan_from = here + needle.chars().count();
                let entry = rosters.entry(krate.clone()).or_default();
                entry.entry(site.clone()).or_insert((file.path.clone(), lineno + 1));
                if suppressed(file, lineno, "failpoint") {
                    suppressed_sites.insert((krate.clone(), site));
                }
            }
            from = close;
        }
        // Call sites.
        for (i, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for marker in FAILPOINT_MARKERS {
                let Some(at) = find_token(&line.masked, marker, 0) else { continue };
                // The site string: first literal at/after the marker on
                // this line, else the first on the next line (wrapped call).
                let code_tail: String = line.code.chars().skip(at).collect();
                let mut lits = string_literals(&code_tail);
                if lits.is_empty() {
                    if let Some(next) = file.lines.get(i + 1) {
                        lits = string_literals(&next.code);
                    }
                }
                let Some(site) = lits.first() else { continue };
                let entry = uses.entry(krate.clone()).or_default();
                entry.entry(site.clone()).or_insert((file.path.clone(), i + 1));
                if suppressed(file, i, "failpoint") {
                    suppressed_sites.insert((krate.clone(), site.clone()));
                }
            }
        }
    }

    let empty = BTreeMap::new();
    for (krate, used) in &uses {
        let roster = rosters.get(krate).unwrap_or(&empty);
        for (site, (path, line)) in used {
            if roster.contains_key(site) || suppressed_sites.contains(&(krate.clone(), site.clone())) {
                continue;
            }
            out.push(Diagnostic {
                path: path.clone(),
                line: *line,
                rule: "failpoint",
                msg: format!(
                    "failpoint site \"{site}\" is not in {krate}'s FAILPOINT_SITES \
                     roster — the torture suite cannot find it"
                ),
            });
        }
    }
    for (krate, roster) in &rosters {
        let used = uses.get(krate).unwrap_or(&empty);
        for (site, (path, line)) in roster {
            if used.contains_key(site) || suppressed_sites.contains(&(krate.clone(), site.clone())) {
                continue;
            }
            out.push(Diagnostic {
                path: path.clone(),
                line: *line,
                rule: "failpoint",
                msg: format!(
                    "rostered failpoint site \"{site}\" has no live call site in \
                     {krate} — stale roster entry"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::analyze;

    fn scan_one(path: &str, src: &str, cfg: &Config) -> Vec<Diagnostic> {
        check_files(&[analyze(path, src)], cfg)
    }

    #[test]
    fn panic_rule_flags_and_pragma_suppresses() {
        let cfg = Config::default();
        let d = scan_one("crates/x/src/lib.rs", "fn f() { x.unwrap(); }\n", &cfg);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "panic");
        let d = scan_one(
            "crates/x/src/lib.rs",
            "fn f() { x.unwrap(); } // lint: allow(panic, infallible here)\n",
            &cfg,
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn pragma_needs_known_rule_and_reason() {
        let cfg = Config::default();
        let d = scan_one("crates/x/src/lib.rs", "// lint: allow(panics, x)\n", &cfg);
        assert_eq!(d[0].rule, "pragma");
        let d = scan_one("crates/x/src/lib.rs", "// lint: allow(panic)\n", &cfg);
        assert_eq!(d[0].rule, "pragma");
    }

    #[test]
    fn loops_are_found_and_impl_for_is_not_a_loop() {
        let src = "impl Display for Foo { fn f(&self) { for x in items { use_it(x); } } }\n";
        let mut cfg = Config::default();
        cfg.tick_files.push("crates/q/src/exec.rs".to_string());
        let d = scan_one("crates/q/src/exec.rs", src, &cfg);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "tick");
        let src = "fn f() { for x in items { cancel::tick()?; use_it(x); } }\n";
        assert!(scan_one("crates/q/src/exec.rs", src, &cfg).is_empty());
    }

    #[test]
    fn lock_nesting_against_the_table() {
        let mut cfg = Config::default();
        let src = "fn f(&self) {\n    let a = self.queue.lock();\n    let b = self.slowlog.lock();\n}\n";
        let d = scan_one("crates/x/src/lib.rs", src, &cfg);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "lock");
        assert_eq!(d[0].line, 3);
        cfg.lock_order.push(crate::config::LockEdge {
            outer: "queue".to_string(),
            inner: "slowlog".to_string(),
        });
        assert!(scan_one("crates/x/src/lib.rs", src, &cfg).is_empty());
    }

    #[test]
    fn temporary_guard_does_not_nest() {
        let cfg = Config::default();
        let src = "fn f(&self) {\n    self.queue.lock().push(1);\n    let b = self.slowlog.lock();\n}\n";
        assert!(scan_one("crates/x/src/lib.rs", src, &cfg).is_empty());
        // ...but two acquisitions inside one statement do nest.
        let src = "fn f(&self) { self.a.lock().push(self.b.lock().pop()); }\n";
        let d = scan_one("crates/x/src/lib.rs", src, &cfg);
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn dropped_guard_releases() {
        let cfg = Config::default();
        let src = "fn f(&self) {\n    let a = self.queue.lock();\n    drop(a);\n    let b = self.slowlog.lock();\n}\n";
        assert!(scan_one("crates/x/src/lib.rs", src, &cfg).is_empty());
    }

    #[test]
    fn scoped_guard_releases_at_block_end() {
        let cfg = Config::default();
        let src = "fn f(&self) {\n    {\n        let a = self.queue.lock();\n        a.push(1);\n    }\n    let b = self.slowlog.lock();\n}\n";
        assert!(scan_one("crates/x/src/lib.rs", src, &cfg).is_empty(), "guard scope ended");
    }

    #[test]
    fn failpoint_roster_both_directions() {
        let cfg = Config::default();
        let rostered_and_used = "pub const FAILPOINT_SITES: &[&str] = &[\"a.b\"];\nfn f() { mmdb_fault::fail_point!(\"a.b\"); }\n";
        assert!(scan_one("crates/x/src/lib.rs", rostered_and_used, &cfg).is_empty());
        let unrostered = "fn f() { mmdb_fault::fail_point!(\"a.b\"); }\n";
        let d = scan_one("crates/x/src/lib.rs", unrostered, &cfg);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].msg.contains("not in"), "{}", d[0].msg);
        let stale = "pub const FAILPOINT_SITES: &[&str] = &[\"a.b\"];\n";
        let d = scan_one("crates/x/src/lib.rs", stale, &cfg);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].msg.contains("stale"), "{}", d[0].msg);
    }

    #[test]
    fn relaxed_only_in_designated_modules() {
        let mut cfg = Config::default();
        let src = "fn f() { c.fetch_add(1, Ordering::Relaxed); }\n";
        let d = scan_one("crates/x/src/lib.rs", src, &cfg);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "relaxed");
        cfg.relaxed_allowed.push("crates/x/src/lib.rs".to_string());
        assert!(scan_one("crates/x/src/lib.rs", src, &cfg).is_empty());
    }

    #[test]
    fn test_code_is_invisible_to_rules() {
        let cfg = Config::default();
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); panic!(); }\n}\n";
        assert!(scan_one("crates/x/src/lib.rs", src, &cfg).is_empty());
        assert!(scan_one("crates/x/tests/it.rs", "fn f() { x.unwrap(); }\n", &cfg).is_empty());
    }
}
