//! The rule engine: six project-specific invariants plus the pragma
//! meta-rule.
//!
//! | rule        | invariant                                                      |
//! |-------------|----------------------------------------------------------------|
//! | `panic`     | no `.unwrap()`/`.expect(`/`panic!`/`unreachable!`/`todo!` on non-test engine paths |
//! | `failpoint` | every `fail_point!`/`mmdb_fault::eval*` site is rostered in its crate's `FAILPOINT_SITES`, has a live call site, and is exercised by a test under `tests/` |
//! | `relaxed`   | `Ordering::Relaxed` only in the designated counter modules     |
//! | `tick`      | every loop in the executor files contains a `cancel::tick()` (or tick-forwarding) call |
//! | `lock`      | every observed lock nesting — including cross-function nestings found through the call graph — follows the declared lock-order table, which must be acyclic and (in workspace scans) fully observed |
//! | `blocking`  | no blocking operation reachable from an annotated hot context without a reasoned pragma |
//! | `pragma`    | every `// lint: allow(rule, reason)` names a known rule, gives a reason, and suppresses at least one diagnostic |
//!
//! Suppression is pragma-only and always carries a reason:
//! `// lint: allow(panic, length checked two lines up)` on the
//! offending line, or on a comment-only line directly above it. A
//! pragma that suppresses nothing is itself a violation, so
//! suppressions cannot outlive the code they excused.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::lex::{contains_token, find_token, is_ident, string_literals, SourceFile};

/// Every rule name a pragma may reference.
pub const RULE_NAMES: &[&str] =
    &["panic", "failpoint", "relaxed", "tick", "lock", "blocking", "pragma"];

/// Finding severity: errors gate CI; warnings inform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Error,
    Warning,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// One `file:line: rule: message` finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
    pub severity: Severity,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}: {}", self.path, self.line, self.rule, self.msg)
    }
}

/// Which pragmas actually suppressed a diagnostic, keyed by
/// (file index, 0-based pragma line, rule). Fed by every rule as it
/// skips a suppressed finding; drained by the unused-pragma check.
#[derive(Debug, Default)]
pub struct PragmaUse(BTreeSet<(usize, usize, &'static str)>);

impl PragmaUse {
    pub fn mark(&mut self, file: usize, line: usize, rule: &'static str) {
        self.0.insert((file, line, rule));
    }
    pub fn contains(&self, file: usize, line: usize, rule: &'static str) -> bool {
        self.0.contains(&(file, line, rule))
    }
}

/// Run every rule over the lexed files.
pub fn check_files(files: &[SourceFile], cfg: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut used = PragmaUse::default();
    for (fi, file) in files.iter().enumerate() {
        check_pragmas(file, &mut out);
        check_no_panic(fi, file, cfg, &mut used, &mut out);
        check_relaxed(fi, file, cfg, &mut used, &mut out);
        check_tick(fi, file, cfg, &mut used, &mut out);
    }
    let items = crate::parse::parse_items(files, cfg);
    let graph = CallGraph::build(&items);
    crate::summaries::check_locks(files, &items, &graph, cfg, &mut used, &mut out);
    crate::blocking::check_blocking(files, &items, &graph, cfg, &mut used, &mut out);
    check_failpoints(files, cfg, &mut used, &mut out);
    check_unused_pragmas(files, &used, &mut out);
    out.sort();
    out.dedup();
    out
}

/// Test-only source by location: `tests/`, `benches/`, `examples/`,
/// `fixtures/` trees hold no production paths.
pub(crate) fn is_test_path(path: &str) -> bool {
    path.split('/').any(|c| matches!(c, "tests" | "benches" | "examples" | "fixtures"))
}

fn path_exempt(path: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p.as_str()))
}

// ---- pragmas ---------------------------------------------------------------

/// Pragmas parsed from one comment: `(rule, has_reason)` pairs.
fn parse_pragmas(comment: &str) -> Option<Vec<(String, bool)>> {
    // A pragma comment *starts* with `lint:` (doc comments that merely
    // quote the grammar mid-sentence are not pragmas).
    let trimmed = comment.trim_start();
    if !trimmed.starts_with("lint:") {
        return None;
    }
    let mut rest = &trimmed[5..];
    let mut out = Vec::new();
    while let Some(open) = rest.find("allow(") {
        let body_start = open + 6;
        let Some(close) = rest[body_start..].find(')') else {
            out.push((String::new(), false));
            break;
        };
        let body = &rest[body_start..body_start + close];
        match body.split_once(',') {
            Some((rule, reason)) => {
                out.push((rule.trim().to_string(), !reason.trim().is_empty()))
            }
            None => out.push((body.trim().to_string(), false)),
        }
        rest = &rest[body_start + close + 1..];
    }
    Some(out)
}

/// The 0-based line of the pragma that suppresses `rule` at `idx` — on
/// the line itself, or on the run of comment-only lines directly above
/// it. `None` when unsuppressed.
pub fn suppression_line(file: &SourceFile, idx: usize, rule: &str) -> Option<usize> {
    let allows = |i: usize| -> bool {
        parse_pragmas(&file.lines[i].comment)
            .is_some_and(|ps| ps.iter().any(|(r, ok)| r == rule && *ok))
    };
    if allows(idx) {
        return Some(idx);
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let line = &file.lines[i];
        if !line.code.trim().is_empty() {
            return None;
        }
        if line.comment.is_empty() {
            return None;
        }
        if allows(i) {
            return Some(i);
        }
    }
    None
}

/// The pragma meta-rule, part one: malformed or unknown-rule pragmas
/// are themselves violations, so a typo can never silently suppress.
fn check_pragmas(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (idx, line) in file.lines.iter().enumerate() {
        let Some(pragmas) = parse_pragmas(&line.comment) else { continue };
        if pragmas.is_empty() {
            out.push(Diagnostic {
                path: file.path.clone(),
                line: idx + 1,
                rule: "pragma",
                msg: "`lint:` comment without an `allow(rule, reason)` clause".to_string(),
                severity: Severity::Error,
            });
            continue;
        }
        for (rule, has_reason) in pragmas {
            if !RULE_NAMES.contains(&rule.as_str()) {
                out.push(Diagnostic {
                    path: file.path.clone(),
                    line: idx + 1,
                    rule: "pragma",
                    msg: format!(
                        "unknown rule '{rule}' in lint pragma (known: {})",
                        RULE_NAMES.join(", ")
                    ),
                    severity: Severity::Error,
                });
            } else if !has_reason {
                out.push(Diagnostic {
                    path: file.path.clone(),
                    line: idx + 1,
                    rule: "pragma",
                    msg: format!(
                        "lint pragma for '{rule}' needs a reason: `lint: allow({rule}, <why>)`"
                    ),
                    severity: Severity::Error,
                });
            }
        }
    }
}

/// The pragma meta-rule, part two: a well-formed pragma that
/// suppressed nothing anywhere in the scan is dead weight — the code
/// it excused has moved or been fixed — and must be removed.
fn check_unused_pragmas(files: &[SourceFile], used: &PragmaUse, out: &mut Vec<Diagnostic>) {
    for (fi, file) in files.iter().enumerate() {
        if is_test_path(&file.path) {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let Some(pragmas) = parse_pragmas(&line.comment) else { continue };
            for (rule, has_reason) in &pragmas {
                // Malformed entries were already flagged by part one.
                let Some(rname) = RULE_NAMES.iter().find(|r| *r == rule) else { continue };
                if !has_reason {
                    continue;
                }
                if !used.contains(fi, idx, rname) {
                    out.push(Diagnostic {
                        path: file.path.clone(),
                        line: idx + 1,
                        rule: "pragma",
                        msg: format!(
                            "unused pragma: no '{rule}' diagnostic fires here — remove \
                             `lint: allow({rule}, ...)` so suppressions cannot outlive \
                             the code they excused"
                        ),
                        severity: Severity::Error,
                    });
                }
            }
        }
    }
}

// ---- rule: panic -----------------------------------------------------------

const PANIC_PATTERNS: &[&str] = &[".unwrap()", ".expect(", "panic!", "unreachable!", "todo!"];

fn check_no_panic(
    fi: usize,
    file: &SourceFile,
    cfg: &Config,
    used: &mut PragmaUse,
    out: &mut Vec<Diagnostic>,
) {
    if is_test_path(&file.path) || path_exempt(&file.path, &cfg.no_panic_exempt) {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let mut found: Vec<&str> = Vec::new();
        for pat in PANIC_PATTERNS {
            let hit = if pat.starts_with('.') {
                line.masked.contains(pat)
            } else {
                contains_token(&line.masked, pat)
            };
            if hit {
                found.push(pat);
            }
        }
        if found.is_empty() {
            continue;
        }
        if let Some(pline) = suppression_line(file, idx, "panic") {
            used.mark(fi, pline, "panic");
            continue;
        }
        out.push(Diagnostic {
            path: file.path.clone(),
            line: idx + 1,
            rule: "panic",
            msg: format!(
                "{} on a non-test engine path; return a typed Error or annotate \
                 `// lint: allow(panic, <reason>)`",
                found.join(" and ")
            ),
            severity: Severity::Error,
        });
    }
}

// ---- rule: relaxed ---------------------------------------------------------

fn check_relaxed(
    fi: usize,
    file: &SourceFile,
    cfg: &Config,
    used: &mut PragmaUse,
    out: &mut Vec<Diagnostic>,
) {
    if is_test_path(&file.path) || cfg.relaxed_allowed.iter().any(|p| p == &file.path) {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || !line.masked.contains("Ordering::Relaxed") {
            continue;
        }
        if let Some(pline) = suppression_line(file, idx, "relaxed") {
            used.mark(fi, pline, "relaxed");
            continue;
        }
        out.push(Diagnostic {
            path: file.path.clone(),
            line: idx + 1,
            rule: "relaxed",
            msg: "Ordering::Relaxed outside the designated counter modules; use a \
                  stronger ordering or annotate `// lint: allow(relaxed, <reason>)`"
                .to_string(),
            severity: Severity::Error,
        });
    }
}

// ---- rule: tick ------------------------------------------------------------

fn check_tick(
    fi: usize,
    file: &SourceFile,
    cfg: &Config,
    used: &mut PragmaUse,
    out: &mut Vec<Diagnostic>,
) {
    if !cfg.tick_files.iter().any(|p| p == &file.path) {
        return;
    }
    let (text, line_of) = file.masked_text();
    let chars: Vec<char> = text.chars().collect();
    for (kw_pos, body) in find_loops(&chars) {
        let line_idx = line_of[kw_pos];
        if file.lines[line_idx].in_test {
            continue;
        }
        let body_text: String = chars[body.0..body.1].iter().collect();
        if calls_tick(&body_text) {
            continue;
        }
        if let Some(pline) = suppression_line(file, line_idx, "tick") {
            used.mark(fi, pline, "tick");
            continue;
        }
        out.push(Diagnostic {
            path: file.path.clone(),
            line: line_idx + 1,
            rule: "tick",
            msg: "executor loop without a cancel::tick() call — rows iterated here \
                  escape deadlines; tick per item or annotate \
                  `// lint: allow(tick, <reason>)`"
                .to_string(),
            severity: Severity::Error,
        });
    }
}

/// Does `body` call a tick function — `cancel::tick()`, `.tick()`, or
/// any tick-forwarding helper (`tick_every(..)`, `forward_ticks(..)`)?
fn calls_tick(body: &str) -> bool {
    let cs: Vec<char> = body.chars().collect();
    let mut k = 0usize;
    while k < cs.len() {
        if is_ident(cs[k]) && (k == 0 || !is_ident(cs[k - 1])) {
            let start = k;
            while k < cs.len() && is_ident(cs[k]) {
                k += 1;
            }
            let ident: String = cs[start..k].iter().collect();
            if ident.contains("tick") && cs.get(k) == Some(&'(') {
                return true;
            }
        } else {
            k += 1;
        }
    }
    false
}

/// Find `for`/`while`/`loop` loops: (keyword position, body span).
fn find_loops(chars: &[char]) -> Vec<(usize, (usize, usize))> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if !c.is_alphabetic() || (i > 0 && is_ident(chars[i - 1])) {
            i += 1;
            continue;
        }
        let mut j = i;
        while j < chars.len() && is_ident(chars[j]) {
            j += 1;
        }
        let word: String = chars[i..j].iter().collect();
        let needs_in = match word.as_str() {
            "for" => true,
            "while" | "loop" => false,
            _ => {
                i = j;
                continue;
            }
        };
        // `for<'a>` higher-ranked bounds are not loops.
        let next_nonws = chars[j..].iter().find(|c| !c.is_whitespace());
        if word == "for" && next_nonws == Some(&'<') {
            i = j;
            continue;
        }
        if word == "loop" && next_nonws != Some(&'{') {
            i = j;
            continue;
        }
        // Scan the header to the body's `{` at bracket depth 0.
        let mut k = j;
        let mut depth = 0i32;
        let mut saw_in = false;
        let mut open = None;
        while k < chars.len() {
            match chars[k] {
                '(' | '[' => depth += 1,
                ')' | ']' => depth -= 1,
                '{' if depth == 0 => {
                    open = Some(k);
                    break;
                }
                ';' if depth == 0 => break, // not a loop header after all
                c2 if is_ident(c2) => {
                    let mut m = k;
                    while m < chars.len() && is_ident(chars[m]) {
                        m += 1;
                    }
                    let w: String = chars[k..m].iter().collect();
                    if w == "in" && (k == 0 || !is_ident(chars[k - 1])) {
                        saw_in = true;
                    }
                    k = m;
                    continue;
                }
                _ => {}
            }
            k += 1;
        }
        let Some(open) = open else {
            i = j;
            continue;
        };
        if needs_in && !saw_in {
            // `impl Trait for Type {` — not a loop.
            i = j;
            continue;
        }
        // Matching close brace.
        let mut level = 0i32;
        let mut end = open;
        for (off, &c2) in chars[open..].iter().enumerate() {
            match c2 {
                '{' => level += 1,
                '}' => {
                    level -= 1;
                    if level == 0 {
                        end = open + off;
                        break;
                    }
                }
                _ => {}
            }
        }
        out.push((i, (open, end + 1)));
        i = j;
    }
    out
}

// ---- rule: failpoint -------------------------------------------------------

const FAILPOINT_MARKERS: &[&str] = &[
    "fail_point!(",
    "mmdb_fault::eval(",
    "mmdb_fault::eval_unit(",
    "mmdb_fault::eval_to_error(",
];

/// The crate a workspace-relative path belongs to.
fn crate_of(path: &str) -> String {
    let parts: Vec<&str> = path.split('/').collect();
    if parts.len() >= 2 && parts[0] == "crates" {
        return format!("crates/{}", parts[1]);
    }
    if parts.len() >= 2 && parts[0] == "shims" {
        return format!("shims/{}", parts[1]);
    }
    "mmdb".to_string() // the root package (src/, tests/)
}

fn check_failpoints(
    files: &[SourceFile],
    cfg: &Config,
    used: &mut PragmaUse,
    out: &mut Vec<Diagnostic>,
) {
    // site → first declaration/use location, per crate.
    type SiteMap = BTreeMap<String, (String, usize)>;
    let mut rosters: BTreeMap<String, SiteMap> = BTreeMap::new();
    let mut uses: BTreeMap<String, SiteMap> = BTreeMap::new();
    // (crate, site) → pragma locations that would suppress it.
    let mut pragma_at: BTreeMap<(String, String), Vec<(usize, usize)>> = BTreeMap::new();

    for (fi, file) in files.iter().enumerate() {
        if path_exempt(&file.path, &cfg.failpoints_exempt) || is_test_path(&file.path) {
            continue;
        }
        let krate = crate_of(&file.path);
        // Roster: `FAILPOINT_SITES ... = &[ "a", "b", ... ];` — find the
        // initializer's bracket span in the masked view, then read the
        // site strings from the aligned code view.
        let (masked, line_of) = file.masked_text();
        let (code, _) = file.code_text();
        let mchars: Vec<char> = masked.chars().collect();
        let cchars: Vec<char> = code.chars().collect();
        let mut from = 0usize;
        while let Some(at) = find_token(&masked, "FAILPOINT_SITES", from) {
            from = at + 1;
            // The initializer's `=`; a re-export (`pub use ...;`) has none
            // before the `;`.
            let Some(eq) = mchars[at..].iter().position(|&c| c == '=' || c == ';') else {
                continue;
            };
            if mchars[at + eq] == ';' {
                continue;
            }
            let Some(open_rel) = mchars[at + eq..].iter().position(|&c| c == '[') else {
                continue;
            };
            let open = at + eq + open_rel;
            let mut depth = 0i32;
            let mut close = open;
            for (off, &c) in mchars[open..].iter().enumerate() {
                match c {
                    '[' => depth += 1,
                    ']' => {
                        depth -= 1;
                        if depth == 0 {
                            close = open + off;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            let span: String = cchars[open..close].iter().collect();
            // Record each site at the line its literal sits on.
            let mut scan_from = open;
            for site in string_literals(&span) {
                let lineno = line_of[scan_from.min(line_of.len() - 1)];
                // Advance past this literal for per-line attribution.
                let needle = format!("\"{site}\"");
                let tail: String = cchars[scan_from..close].iter().collect();
                let here = tail.find(&needle).map(|p| scan_from + p).unwrap_or(scan_from);
                let lineno = line_of.get(here).copied().unwrap_or(lineno);
                scan_from = here + needle.chars().count();
                let entry = rosters.entry(krate.clone()).or_default();
                entry.entry(site.clone()).or_insert((file.path.clone(), lineno + 1));
                if let Some(pline) = suppression_line(file, lineno, "failpoint") {
                    pragma_at.entry((krate.clone(), site)).or_default().push((fi, pline));
                }
            }
            from = close;
        }
        // Call sites.
        for (i, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for marker in FAILPOINT_MARKERS {
                let Some(at) = find_token(&line.masked, marker, 0) else { continue };
                // The site string: first literal at/after the marker on
                // this line, else the first on the next line (wrapped call).
                let code_tail: String = line.code.chars().skip(at).collect();
                let mut lits = string_literals(&code_tail);
                if lits.is_empty() {
                    if let Some(next) = file.lines.get(i + 1) {
                        lits = string_literals(&next.code);
                    }
                }
                let Some(site) = lits.first() else { continue };
                let entry = uses.entry(krate.clone()).or_default();
                entry.entry(site.clone()).or_insert((file.path.clone(), i + 1));
                if let Some(pline) = suppression_line(file, i, "failpoint") {
                    pragma_at
                        .entry((krate.clone(), site.clone()))
                        .or_default()
                        .push((fi, pline));
                }
            }
        }
    }

    let suppress = |krate: &str, site: &str, used: &mut PragmaUse| -> bool {
        match pragma_at.get(&(krate.to_string(), site.to_string())) {
            Some(locs) => {
                for &(fi, pline) in locs {
                    used.mark(fi, pline, "failpoint");
                }
                true
            }
            None => false,
        }
    };

    let empty = BTreeMap::new();
    for (krate, site_uses) in &uses {
        let roster = rosters.get(krate).unwrap_or(&empty);
        for (site, (path, line)) in site_uses {
            if roster.contains_key(site) || suppress(krate, site, used) {
                continue;
            }
            out.push(Diagnostic {
                path: path.clone(),
                line: *line,
                rule: "failpoint",
                msg: format!(
                    "failpoint site \"{site}\" is not in {krate}'s FAILPOINT_SITES \
                     roster — the torture suite cannot find it"
                ),
                severity: Severity::Error,
            });
        }
    }
    for (krate, roster) in &rosters {
        let site_uses = uses.get(krate).unwrap_or(&empty);
        for (site, (path, line)) in roster {
            if site_uses.contains_key(site) || suppress(krate, site, used) {
                continue;
            }
            out.push(Diagnostic {
                path: path.clone(),
                line: *line,
                rule: "failpoint",
                msg: format!(
                    "rostered failpoint site \"{site}\" has no live call site in \
                     {krate} — stale roster entry"
                ),
                severity: Severity::Error,
            });
        }
    }

    // Test coverage: a healthy (rostered + used) site must be exercised
    // by at least one test — either its literal appears in a test file,
    // or the test chains the crate's roster (`<crate>::FAILPOINT_SITES`).
    // Only checkable when the scan actually includes test files.
    let test_text: String = files
        .iter()
        .filter(|f| is_test_path(&f.path))
        .map(|f| f.code_text().0)
        .collect::<Vec<_>>()
        .join("\n");
    if test_text.is_empty() {
        return;
    }
    for (krate, site_uses) in &uses {
        let roster = rosters.get(krate).unwrap_or(&empty);
        let short = krate.rsplit('/').next().unwrap_or(krate);
        let roster_ref = format!("{short}::FAILPOINT_SITES");
        let roster_chained = test_text.contains(&roster_ref);
        for (site, (path, line)) in site_uses {
            if !roster.contains_key(site) {
                continue; // already reported as unrostered
            }
            if roster_chained || test_text.contains(&format!("\"{site}\"")) {
                continue;
            }
            if suppress(krate, site, used) {
                continue;
            }
            out.push(Diagnostic {
                path: path.clone(),
                line: *line,
                rule: "failpoint",
                msg: format!(
                    "failpoint site \"{site}\" is never exercised by a test — \
                     reference the literal (or chain {short}::FAILPOINT_SITES) from \
                     a torture test under tests/"
                ),
                severity: Severity::Error,
            });
        }
    }
}

// ---- --explain -------------------------------------------------------------

/// Long-form documentation for `mmdb-lint --explain <rule>`.
pub fn explain(rule: &str) -> Option<&'static str> {
    Some(match rule {
        "panic" => {
            "panic: no .unwrap()/.expect(/panic!/unreachable!/todo! on non-test engine paths.\n\
             \n\
             A panic on a durability or request path aborts the worker mid-operation and\n\
             can leave partially applied state. Return a typed mmdb_types::Error instead.\n\
             Exemptions: [no_panic] exempt path prefixes in lint.toml (vendored shims,\n\
             the bench harness); per-line `// lint: allow(panic, <reason>)` where the\n\
             invariant genuinely cannot fail (say why)."
        }
        "failpoint" => {
            "failpoint: every fail_point!/mmdb_fault::eval* site must (1) appear in its\n\
             crate's FAILPOINT_SITES roster, (2) have a live call site for each roster\n\
             entry, and (3) be exercised by at least one test under tests/ — either the\n\
             site literal appears in a test, or the test chains the crate's roster\n\
             (e.g. `storage::FAILPOINT_SITES`). A site the torture suite cannot find, or\n\
             never fires, is an untested crash point. The coverage check only runs when\n\
             the scan includes test files."
        }
        "relaxed" => {
            "relaxed: Ordering::Relaxed is only allowed in the designated counter modules\n\
             ([relaxed] allowed in lint.toml) where cross-thread ordering is irrelevant\n\
             by design (monotonic metrics). Anywhere else it needs a reasoned pragma —\n\
             relaxed atomics that guard state handoffs are a memory-ordering bug."
        }
        "tick" => {
            "tick: every loop in the executor files ([executor_tick] files) must contain\n\
             a cancel::tick() or tick-forwarding call, so row iteration stays\n\
             cancellable and deadlines hold. Loops that provably do not iterate rows\n\
             carry `// lint: allow(tick, <reason>)`."
        }
        "lock" => {
            "lock: every observed lock nesting must follow the [[lock_order]] table in\n\
             lint.toml. The analysis is interprocedural: per-fn summaries record which\n\
             locks a fn (or anything it calls) may acquire and which guards it returns\n\
             to its caller, propagated through the workspace call graph to a fixpoint;\n\
             a call made while a guard is held attributes all of the callee's\n\
             acquisitions to the held set. Declared edges close transitively (serial ->\n\
             commit_mutex plus commit_mutex -> versions blesses serial -> versions).\n\
             Undeclared observed nestings are errors; a cycle in declared+observed\n\
             edges is an error; with [locks] require_observed = \"true\", declared\n\
             edges nothing observes are stale-declaration warnings.\n\
             \n\
             Residual blind spots (see KNOWN_ISSUES.md): dyn-dispatch and\n\
             macro-generated fns are invisible; calls through std-shaped method names\n\
             (get, insert, ...) are deliberately not resolved; locks reached through\n\
             closures invoked by a callee are attributed to the closure's lexical\n\
             context, not its caller."
        }
        "blocking" => {
            "blocking: no blocking operation reachable from an annotated hot context\n\
             without a reasoned pragma. [hot_contexts] fns names the entry points\n\
             (reader threads, executor lanes, the group-commit leader); [blocking] ops\n\
             lists the blocking vocabulary (.sync(), sleep, .wait_for(, ...);\n\
             [blocking] contended lists locks whose waits count as blocking. The rule\n\
             walks the call graph breadth-first from each hot fn and reports each\n\
             direct blocking site with the call path. Deliberate blocking (the leader's\n\
             one fsync per batch) carries `// lint: allow(blocking, <reason>)` — the\n\
             reason is the design argument, kept next to the code."
        }
        "pragma" => {
            "pragma: every `// lint: allow(rule, reason)` must name a known rule and\n\
             give a nonempty reason — and must actually suppress a diagnostic. A pragma\n\
             that suppresses nothing is itself an error, so suppressions cannot\n\
             outlive the code they excused. Pragmas bind to their own line or to the\n\
             run of comment-only lines directly above the offending line."
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::analyze;

    fn scan_one(path: &str, src: &str, cfg: &Config) -> Vec<Diagnostic> {
        check_files(&[analyze(path, src)], cfg)
    }

    #[test]
    fn panic_rule_flags_and_pragma_suppresses() {
        let cfg = Config::default();
        let d = scan_one("crates/x/src/lib.rs", "fn f() { x.unwrap(); }\n", &cfg);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "panic");
        let d = scan_one(
            "crates/x/src/lib.rs",
            "fn f() { x.unwrap(); } // lint: allow(panic, infallible here)\n",
            &cfg,
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn pragma_needs_known_rule_and_reason() {
        let cfg = Config::default();
        let d = scan_one("crates/x/src/lib.rs", "// lint: allow(panics, x)\n", &cfg);
        assert_eq!(d[0].rule, "pragma");
        let d = scan_one("crates/x/src/lib.rs", "// lint: allow(panic)\n", &cfg);
        assert_eq!(d[0].rule, "pragma");
    }

    #[test]
    fn unused_pragmas_are_flagged() {
        let cfg = Config::default();
        let d = scan_one(
            "crates/x/src/lib.rs",
            "fn f() { fine(); } // lint: allow(panic, nothing here panics)\n",
            &cfg,
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "pragma");
        assert!(d[0].msg.contains("unused"), "{}", d[0].msg);
    }

    #[test]
    fn loops_are_found_and_impl_for_is_not_a_loop() {
        let src = "impl Display for Foo { fn f(&self) { for x in items { use_it(x); } } }\n";
        let mut cfg = Config::default();
        cfg.tick_files.push("crates/q/src/exec.rs".to_string());
        let d = scan_one("crates/q/src/exec.rs", src, &cfg);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "tick");
        let src = "fn f() { for x in items { cancel::tick()?; use_it(x); } }\n";
        assert!(scan_one("crates/q/src/exec.rs", src, &cfg).is_empty());
    }

    #[test]
    fn lock_nesting_against_the_table() {
        let mut cfg = Config::default();
        let src = "fn f(&self) {\n    let a = self.queue.lock();\n    let b = self.slowlog.lock();\n}\n";
        let d = scan_one("crates/x/src/lib.rs", src, &cfg);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "lock");
        assert_eq!(d[0].line, 3);
        cfg.lock_order.push(crate::config::LockEdge {
            outer: "queue".to_string(),
            inner: "slowlog".to_string(),
            line: 0,
        });
        assert!(scan_one("crates/x/src/lib.rs", src, &cfg).is_empty());
    }

    #[test]
    fn temporary_guard_does_not_nest() {
        let cfg = Config::default();
        let src = "fn f(&self) {\n    self.queue.lock().push(1);\n    let b = self.slowlog.lock();\n}\n";
        assert!(scan_one("crates/x/src/lib.rs", src, &cfg).is_empty());
        // ...but two acquisitions inside one statement do nest.
        let src = "fn f(&self) { self.a.lock().push(self.b.lock().pop()); }\n";
        let d = scan_one("crates/x/src/lib.rs", src, &cfg);
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn dropped_guard_releases() {
        let cfg = Config::default();
        let src = "fn f(&self) {\n    let a = self.queue.lock();\n    drop(a);\n    let b = self.slowlog.lock();\n}\n";
        assert!(scan_one("crates/x/src/lib.rs", src, &cfg).is_empty());
    }

    #[test]
    fn scoped_guard_releases_at_block_end() {
        let cfg = Config::default();
        let src = "fn f(&self) {\n    {\n        let a = self.queue.lock();\n        a.push(1);\n    }\n    let b = self.slowlog.lock();\n}\n";
        assert!(scan_one("crates/x/src/lib.rs", src, &cfg).is_empty(), "guard scope ended");
    }

    #[test]
    fn failpoint_roster_both_directions() {
        let cfg = Config::default();
        let rostered_and_used = "pub const FAILPOINT_SITES: &[&str] = &[\"a.b\"];\nfn f() { mmdb_fault::fail_point!(\"a.b\"); }\n";
        assert!(scan_one("crates/x/src/lib.rs", rostered_and_used, &cfg).is_empty());
        let unrostered = "fn f() { mmdb_fault::fail_point!(\"a.b\"); }\n";
        let d = scan_one("crates/x/src/lib.rs", unrostered, &cfg);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].msg.contains("not in"), "{}", d[0].msg);
        let stale = "pub const FAILPOINT_SITES: &[&str] = &[\"a.b\"];\n";
        let d = scan_one("crates/x/src/lib.rs", stale, &cfg);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].msg.contains("stale"), "{}", d[0].msg);
    }

    #[test]
    fn failpoint_test_coverage_requires_a_test_reference() {
        let cfg = Config::default();
        let engine = "pub const FAILPOINT_SITES: &[&str] = &[\"a.b\"];\nfn f() { mmdb_fault::fail_point!(\"a.b\"); }\n";
        // A test that fires the literal covers the site.
        let d = crate::scan_sources(
            &[("crates/x/src/lib.rs", engine), ("crates/x/tests/torture.rs", "fn t() { fire(\"a.b\"); }\n")],
            &cfg,
        );
        assert!(d.is_empty(), "{d:?}");
        // Chaining the roster covers every site of the crate.
        let d = crate::scan_sources(
            &[("crates/x/src/lib.rs", engine), ("crates/x/tests/torture.rs", "fn t() { for s in x::FAILPOINT_SITES {} }\n")],
            &cfg,
        );
        assert!(d.is_empty(), "{d:?}");
        // A scan with tests that reference neither flags the site.
        let d = crate::scan_sources(
            &[("crates/x/src/lib.rs", engine), ("crates/x/tests/torture.rs", "fn t() {}\n")],
            &cfg,
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].msg.contains("never exercised"), "{}", d[0].msg);
    }

    #[test]
    fn relaxed_only_in_designated_modules() {
        let mut cfg = Config::default();
        let src = "fn f() { c.fetch_add(1, Ordering::Relaxed); }\n";
        let d = scan_one("crates/x/src/lib.rs", src, &cfg);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "relaxed");
        cfg.relaxed_allowed.push("crates/x/src/lib.rs".to_string());
        assert!(scan_one("crates/x/src/lib.rs", src, &cfg).is_empty());
    }

    #[test]
    fn test_code_is_invisible_to_rules() {
        let cfg = Config::default();
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); panic!(); }\n}\n";
        assert!(scan_one("crates/x/src/lib.rs", src, &cfg).is_empty());
        assert!(scan_one("crates/x/tests/it.rs", "fn f() { x.unwrap(); }\n", &cfg).is_empty());
    }

    #[test]
    fn every_rule_has_an_explanation() {
        for rule in RULE_NAMES {
            assert!(explain(rule).is_some(), "missing --explain text for {rule}");
        }
        assert!(explain("nonsense").is_none());
    }
}
