//! `lint.toml` — the linter's declarative configuration.
//!
//! A deliberately tiny TOML subset parser (zero dependencies): bare
//! tables `[name]`, array-of-tables `[[name]]`, string values, and
//! string arrays (single- or multi-line). That is everything the
//! config needs; anything else in the file is a hard error so typos
//! cannot silently disable a rule.

use std::collections::BTreeMap;

/// One `outer` lock may be held while acquiring `inner`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    pub outer: String,
    pub inner: String,
    /// The `[[lock_order]]` header's 1-based line in `lint.toml`, so
    /// stale-declaration warnings point at the entry to delete.
    pub line: usize,
}

/// Parsed `lint.toml`.
#[derive(Debug, Default, Clone)]
pub struct Config {
    /// Path prefixes never scanned (fixtures, build output).
    pub skip: Vec<String>,
    /// Path prefixes exempt from the no-panic rule (vendored shims,
    /// benchmark harness — not engine code).
    pub no_panic_exempt: Vec<String>,
    /// Path prefixes exempt from the failpoint-roster rule (the
    /// failpoint framework itself).
    pub failpoints_exempt: Vec<String>,
    /// Files where `Ordering::Relaxed` is allowed without a pragma
    /// (designated counter modules).
    pub relaxed_allowed: Vec<String>,
    /// Files whose loops must call `cancel::tick()` (executors).
    pub tick_files: Vec<String>,
    /// Path prefixes exempt from the lock-nesting rule.
    pub locks_exempt: Vec<String>,
    /// The declared lock-order table: permitted nestings.
    pub lock_order: Vec<LockEdge>,
    /// When true, every declared lock edge must be observed somewhere
    /// in the scan or it warns as a stale declaration.
    pub locks_require_observed: bool,
    /// Blocking-call tokens for the `blocking` rule (`.sync()`, `sleep`).
    pub blocking_ops: Vec<String>,
    /// Locks whose acquisition counts as blocking (declared contended).
    pub blocking_contended: Vec<String>,
    /// Hot-context fn names: entry points the `blocking` rule walks from.
    pub hot_fns: Vec<String>,
}

impl Config {
    /// Parse `lint.toml` text.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut sections: BTreeMap<String, BTreeMap<String, Vec<String>>> = BTreeMap::new();
        let mut lock_order: Vec<LockEdge> = Vec::new();
        let mut current: Option<String> = None;
        let mut in_lock_order = false;
        let mut pending_key: Option<(String, Vec<String>)> = None;

        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some((key, mut items)) = pending_key.take() {
                // Continuation of a multi-line array.
                let (more, done) = parse_array_items(&line)?;
                items.extend(more);
                if done {
                    insert_value(&mut sections, &mut lock_order, &current, in_lock_order, &key, items, lineno)?;
                } else {
                    pending_key = Some((key, items));
                }
                continue;
            }
            if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
                if name.trim() != "lock_order" {
                    return Err(format!("lint.toml:{}: unknown array-of-tables [[{}]]", lineno + 1, name.trim()));
                }
                in_lock_order = true;
                current = None;
                lock_order.push(LockEdge {
                    outer: String::new(),
                    inner: String::new(),
                    line: lineno + 1,
                });
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                in_lock_order = false;
                current = Some(name.trim().to_string());
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("lint.toml:{}: expected `key = value`", lineno + 1));
            };
            let key = key.trim().to_string();
            let value = value.trim();
            if let Some(open) = value.strip_prefix('[') {
                let (items, done) = parse_array_items(open)?;
                if done {
                    insert_value(&mut sections, &mut lock_order, &current, in_lock_order, &key, items, lineno)?;
                } else {
                    pending_key = Some((key, items));
                }
            } else {
                let s = parse_string(value)
                    .ok_or_else(|| format!("lint.toml:{}: expected a quoted string", lineno + 1))?;
                insert_value(&mut sections, &mut lock_order, &current, in_lock_order, &key, vec![s], lineno)?;
            }
        }
        if pending_key.is_some() {
            return Err("lint.toml: unterminated array".to_string());
        }

        let get = |section: &str, key: &str| -> Vec<String> {
            sections.get(section).and_then(|s| s.get(key)).cloned().unwrap_or_default()
        };
        for (i, e) in lock_order.iter().enumerate() {
            if e.outer.is_empty() || e.inner.is_empty() {
                return Err(format!("lint.toml: [[lock_order]] entry {} needs both `outer` and `inner`", i + 1));
            }
        }
        Ok(Config {
            skip: get("scan", "skip"),
            no_panic_exempt: get("no_panic", "exempt"),
            failpoints_exempt: get("failpoints", "exempt"),
            relaxed_allowed: get("relaxed", "allowed"),
            tick_files: get("executor_tick", "files"),
            locks_exempt: get("locks", "exempt"),
            locks_require_observed: get("locks", "require_observed").first()
                .is_some_and(|v| v == "true"),
            blocking_ops: get("blocking", "ops"),
            blocking_contended: get("blocking", "contended"),
            hot_fns: get("hot_contexts", "fns"),
            lock_order,
        })
    }

    /// Is the declared lock order table happy with `outer` held while
    /// acquiring `inner`?
    pub fn lock_edge_declared(&self, outer: &str, inner: &str) -> bool {
        self.lock_order.iter().any(|e| e.outer == outer && e.inner == inner)
    }
}

fn insert_value(
    sections: &mut BTreeMap<String, BTreeMap<String, Vec<String>>>,
    lock_order: &mut [LockEdge],
    current: &Option<String>,
    in_lock_order: bool,
    key: &str,
    items: Vec<String>,
    lineno: usize,
) -> Result<(), String> {
    if in_lock_order {
        let entry = lock_order
            .last_mut()
            .ok_or_else(|| format!("lint.toml:{}: key outside a table", lineno + 1))?;
        let value = items
            .first()
            .cloned()
            .ok_or_else(|| format!("lint.toml:{}: [[lock_order]] values must be strings", lineno + 1))?;
        match key {
            "outer" => entry.outer = value,
            "inner" => entry.inner = value,
            other => {
                return Err(format!("lint.toml:{}: unknown [[lock_order]] key `{other}`", lineno + 1))
            }
        }
        return Ok(());
    }
    let section = current
        .clone()
        .ok_or_else(|| format!("lint.toml:{}: key `{key}` outside a [section]", lineno + 1))?;
    sections.entry(section).or_default().insert(key.to_string(), items);
    Ok(())
}

/// Parse items after an opening `[`; returns (items, closed?).
fn parse_array_items(rest: &str) -> Result<(Vec<String>, bool), String> {
    let mut items = Vec::new();
    let mut s = rest.trim();
    loop {
        s = s.trim_start_matches(',').trim();
        if s.is_empty() {
            return Ok((items, false));
        }
        if let Some(after) = s.strip_prefix(']') {
            if !after.trim().is_empty() {
                return Err(format!("lint.toml: trailing content after `]`: `{after}`"));
            }
            return Ok((items, true));
        }
        if !s.starts_with('"') {
            return Err(format!("lint.toml: array items must be quoted strings, got `{s}`"));
        }
        let end = s[1..]
            .find('"')
            .ok_or_else(|| format!("lint.toml: unterminated string in `{s}`"))?;
        items.push(s[1..1 + end].to_string());
        s = &s[end + 2..];
    }
}

fn parse_string(v: &str) -> Option<String> {
    let v = v.trim();
    let inner = v.strip_prefix('"')?.strip_suffix('"')?;
    if inner.contains('"') {
        return None;
    }
    Some(inner.to_string())
}

/// Strip a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_shape() {
        let cfg = Config::parse(
            r#"
# comment
[scan]
skip = ["target", "crates/lint/fixtures"]

[no_panic]
exempt = [
    "shims/",   # vendored
    "crates/bench/",
]

[relaxed]
allowed = ["crates/server/src/metrics.rs"]

[executor_tick]
files = ["crates/query/src/exec.rs"]

[locks]
require_observed = "true"

[blocking]
ops = [".sync()", "sleep"]
contended = ["commit_mutex"]

[hot_contexts]
fns = ["conn_reader"]

[[lock_order]]
outer = "queue"
inner = "slowlog"

[[lock_order]]
outer = "versions"
inner = "wal"
"#,
        )
        .unwrap();
        assert_eq!(cfg.skip, vec!["target", "crates/lint/fixtures"]);
        assert_eq!(cfg.no_panic_exempt, vec!["shims/", "crates/bench/"]);
        assert!(cfg.lock_edge_declared("queue", "slowlog"));
        assert!(cfg.lock_edge_declared("versions", "wal"));
        assert!(!cfg.lock_edge_declared("slowlog", "queue"));
        assert!(cfg.locks_require_observed);
        assert_eq!(cfg.blocking_ops, vec![".sync()", "sleep"]);
        assert_eq!(cfg.blocking_contended, vec!["commit_mutex"]);
        assert_eq!(cfg.hot_fns, vec!["conn_reader"]);
        // Each edge remembers its declaration line for stale warnings.
        assert!(cfg.lock_order.iter().all(|e| e.line > 0));
        assert!(cfg.lock_order[0].line < cfg.lock_order[1].line);
    }

    #[test]
    fn rejects_unknown_shapes() {
        assert!(Config::parse("[scan]\nskip = 3\n").is_err());
        assert!(Config::parse("key = \"x\"\n").is_err());
        assert!(Config::parse("[[locks]]\n").is_err());
        assert!(Config::parse("[[lock_order]]\nouter = \"a\"\n").is_err());
    }
}
