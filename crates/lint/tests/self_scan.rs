//! The workspace must lint clean: the seed tree plus every change that
//! lands rides behind `mmdb-lint` with zero unsuppressed violations.
//! This test is the in-tree mirror of the `scripts/ci.sh` lint step.

#[test]
fn workspace_has_no_unsuppressed_violations() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let diags = mmdb_lint::scan_root(&root).expect("workspace scan");
    assert!(
        diags.is_empty(),
        "unsuppressed lint violations:\n{}",
        diags.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
    );
}
