//! Fixture-corpus tests: every rule has at least one passing, one
//! failing, and (where suppression applies) one pragma-suppressed
//! fixture under `crates/lint/fixtures/`. The fixtures are excluded
//! from the workspace scan by `lint.toml` (`[scan] skip`); here each
//! one is linted in isolation under a synthetic workspace-relative
//! path so crate attribution and per-rule path config behave exactly
//! as they do on the real tree.

use mmdb_lint::{scan_sources, Config, Diagnostic};

/// The config the fixtures are written against (mirrors the shape of
/// the real `lint.toml`, with fixture-sized contents).
fn cfg() -> Config {
    Config::parse(
        r#"
[no_panic]
exempt = ["shims/"]

[relaxed]
allowed = ["crates/engine/src/metrics.rs"]

[executor_tick]
files = ["crates/engine/src/exec.rs"]

[[lock_order]]
outer = "accounts"
inner = "ledger"
"#,
    )
    .expect("fixture config parses")
}

/// The blocking-rule config: a hot context plus a blocking vocabulary.
fn cfg_blocking() -> Config {
    Config::parse(
        r#"
[blocking]
ops = [".sync()", "sleep"]
contended = ["commit_mutex"]

[hot_contexts]
fns = ["reader_loop"]
"#,
    )
    .expect("blocking fixture config parses")
}

/// Lint one fixture under the given synthetic path.
fn lint(path: &str, text: &str) -> Vec<Diagnostic> {
    scan_sources(&[(path, text)], &cfg())
}

fn rules(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.rule).collect()
}

// ---- panic -----------------------------------------------------------------

#[test]
fn panic_pass() {
    let d = lint("crates/engine/src/lib.rs", include_str!("../fixtures/panic/pass.rs"));
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn panic_fail() {
    let d = lint("crates/engine/src/lib.rs", include_str!("../fixtures/panic/fail.rs"));
    assert_eq!(rules(&d), ["panic", "panic", "panic"], "{d:?}");
}

#[test]
fn panic_suppressed() {
    let d = lint("crates/engine/src/lib.rs", include_str!("../fixtures/panic/suppressed.rs"));
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn panic_ignores_test_paths_and_exempt_prefixes() {
    let text = include_str!("../fixtures/panic/fail.rs");
    assert!(lint("crates/engine/tests/it.rs", text).is_empty());
    assert!(lint("shims/parking_lot/src/lib.rs", text).is_empty());
}

// ---- failpoint -------------------------------------------------------------

#[test]
fn failpoint_pass() {
    let d = lint("crates/engine/src/lib.rs", include_str!("../fixtures/failpoint/pass.rs"));
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn failpoint_fail_unrostered() {
    let d = lint(
        "crates/engine/src/lib.rs",
        include_str!("../fixtures/failpoint/fail_unrostered.rs"),
    );
    assert_eq!(rules(&d), ["failpoint"], "{d:?}");
    assert!(d[0].msg.contains("engine.compact"), "{d:?}");
    assert!(d[0].msg.contains("not in"), "{d:?}");
}

#[test]
fn failpoint_fail_stale_roster_entry() {
    let d = lint(
        "crates/engine/src/lib.rs",
        include_str!("../fixtures/failpoint/fail_stale.rs"),
    );
    assert_eq!(rules(&d), ["failpoint"], "{d:?}");
    assert!(d[0].msg.contains("engine.gone"), "{d:?}");
}

#[test]
fn failpoint_suppressed() {
    let d = lint("crates/engine/src/lib.rs", include_str!("../fixtures/failpoint/suppressed.rs"));
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn failpoint_roster_and_use_may_live_in_different_files_of_one_crate() {
    let roster = "pub const FAILPOINT_SITES: &[&str] = &[\"engine.flush\"];\n";
    let caller = "pub fn f() { mmdb_fault::fail_point!(\"engine.flush\"); }\n";
    let d = scan_sources(
        &[("crates/engine/src/lib.rs", roster), ("crates/engine/src/flush.rs", caller)],
        &cfg(),
    );
    assert!(d.is_empty(), "{d:?}");
    // The same pair split across *crates* fails both ways.
    let d = scan_sources(
        &[("crates/engine/src/lib.rs", roster), ("crates/other/src/lib.rs", caller)],
        &cfg(),
    );
    assert_eq!(rules(&d), ["failpoint", "failpoint"], "{d:?}");
}

// ---- relaxed ---------------------------------------------------------------

#[test]
fn relaxed_pass_in_designated_module() {
    let d = lint("crates/engine/src/metrics.rs", include_str!("../fixtures/relaxed/pass.rs"));
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn relaxed_fail_elsewhere() {
    let d = lint("crates/engine/src/lib.rs", include_str!("../fixtures/relaxed/fail.rs"));
    assert_eq!(rules(&d), ["relaxed"], "{d:?}");
}

#[test]
fn relaxed_suppressed() {
    let d = lint("crates/engine/src/lib.rs", include_str!("../fixtures/relaxed/suppressed.rs"));
    assert!(d.is_empty(), "{d:?}");
}

// ---- tick ------------------------------------------------------------------

#[test]
fn tick_pass() {
    let d = lint("crates/engine/src/exec.rs", include_str!("../fixtures/tick/pass.rs"));
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn tick_fail() {
    let d = lint("crates/engine/src/exec.rs", include_str!("../fixtures/tick/fail.rs"));
    assert_eq!(rules(&d), ["tick"], "{d:?}");
}

#[test]
fn tick_suppressed() {
    let d = lint("crates/engine/src/exec.rs", include_str!("../fixtures/tick/suppressed.rs"));
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn tick_rule_only_applies_to_configured_files() {
    let d = lint("crates/engine/src/lib.rs", include_str!("../fixtures/tick/fail.rs"));
    assert!(d.is_empty(), "{d:?}");
}

// ---- lock ------------------------------------------------------------------

#[test]
fn lock_pass_declared_order() {
    let d = lint("crates/engine/src/lib.rs", include_str!("../fixtures/lock/pass.rs"));
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn lock_fail_undeclared_nesting() {
    let d = lint("crates/engine/src/lib.rs", include_str!("../fixtures/lock/fail.rs"));
    assert_eq!(rules(&d), ["lock"], "{d:?}");
    assert!(d[0].msg.contains("'journal'"), "{d:?}");
    assert!(d[0].msg.contains("'cache'"), "{d:?}");
}

#[test]
fn lock_suppressed() {
    let d = lint("crates/engine/src/lib.rs", include_str!("../fixtures/lock/suppressed.rs"));
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn lock_declared_order_is_directional() {
    // The declared order is accounts -> ledger; the reverse still
    // fails — both as an undeclared nesting and as a cycle against the
    // declared edge.
    let text = "pub fn f(b: &Bank) {\n    let ledger = b.ledger.lock();\n    let accounts = b.accounts.lock();\n    drop(accounts);\n    drop(ledger);\n}\n";
    let d = lint("crates/engine/src/lib.rs", text);
    assert_eq!(rules(&d), ["lock", "lock"], "{d:?}");
    assert!(d.iter().any(|x| x.msg.contains("undeclared lock nesting")), "{d:?}");
    assert!(d.iter().any(|x| x.msg.contains("lock-order cycle")), "{d:?}");
}

#[test]
fn lock_cross_function_nesting_is_detected() {
    // Neither fn acquires both locks lexically — only the call graph
    // sees the nesting.
    let d = lint("crates/engine/src/lib.rs", include_str!("../fixtures/lock/cross_fn_fail.rs"));
    assert_eq!(rules(&d), ["lock"], "{d:?}");
    assert!(d[0].msg.contains("'journal'"), "{d:?}");
    assert!(d[0].msg.contains("'cache'"), "{d:?}");
    assert!(d[0].msg.contains("flush_journal"), "{d:?}");
}

#[test]
fn lock_guard_returning_helper_ab_ba_inversion_is_detected() {
    // The acceptance case: a helper RETURNS its guard, so the caller
    // holds `cache` with no visible acquisition. `ab` and `ba` nest
    // the two locks in opposite orders — a deadlock the per-fn lexical
    // heuristic provably missed (no fn body contains both patterns).
    let d =
        lint("crates/engine/src/lib.rs", include_str!("../fixtures/lock/guard_return_fail.rs"));
    let msgs: Vec<&str> = d.iter().map(|x| x.msg.as_str()).collect();
    assert!(
        msgs.iter().any(|m| m.contains("'journal' acquired while 'cache' is held")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("'cache' acquired while 'journal' is held")),
        "{msgs:?}"
    );
    assert!(msgs.iter().any(|m| m.contains("lock-order cycle")), "{msgs:?}");
}

#[test]
fn lock_cross_function_suppressed() {
    let d = lint(
        "crates/engine/src/lib.rs",
        include_str!("../fixtures/lock/cross_fn_suppressed.rs"),
    );
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn lock_stale_declaration_warns_when_observation_is_required() {
    let mut stale_cfg = cfg();
    stale_cfg.locks_require_observed = true;
    // The fixture never nests accounts -> ledger, so the declared edge
    // (lint.toml line 11 in the inline config) warns as stale.
    let d = scan_sources(
        &[("crates/engine/src/lib.rs", "pub fn f() { let a = 1; }\n")],
        &stale_cfg,
    );
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(d[0].rule, "lock");
    assert_eq!(d[0].path, "lint.toml");
    assert_eq!(d[0].severity, mmdb_lint::Severity::Warning);
    assert!(d[0].msg.contains("never observed"), "{d:?}");
}

// ---- blocking --------------------------------------------------------------

#[test]
fn blocking_pass_off_hot_path() {
    let d = scan_sources(
        &[("crates/engine/src/lib.rs", include_str!("../fixtures/blocking/pass.rs"))],
        &cfg_blocking(),
    );
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn blocking_fail_reachable_fsync() {
    let d = scan_sources(
        &[("crates/engine/src/lib.rs", include_str!("../fixtures/blocking/fail.rs"))],
        &cfg_blocking(),
    );
    assert_eq!(rules(&d), ["blocking"], "{d:?}");
    assert!(d[0].msg.contains(".sync()"), "{d:?}");
    assert!(d[0].msg.contains("reader_loop -> persist_frame"), "{d:?}");
}

#[test]
fn blocking_suppressed() {
    let d = scan_sources(
        &[("crates/engine/src/lib.rs", include_str!("../fixtures/blocking/suppressed.rs"))],
        &cfg_blocking(),
    );
    assert!(d.is_empty(), "{d:?}");
}

// ---- failpoint test coverage -----------------------------------------------

#[test]
fn failpoint_coverage_gates_on_test_files_in_the_scan() {
    let engine = include_str!("../fixtures/failpoint/pass.rs");
    // Without test files in the scan, coverage is unknowable: quiet.
    let d = scan_sources(&[("crates/engine/src/lib.rs", engine)], &cfg());
    assert!(d.is_empty(), "{d:?}");
    // With a test file that never references the site: flagged.
    let d = scan_sources(
        &[
            ("crates/engine/src/lib.rs", engine),
            ("crates/engine/tests/torture.rs", "#[test]\nfn smoke() {}\n"),
        ],
        &cfg(),
    );
    assert_eq!(rules(&d), ["failpoint", "failpoint"], "{d:?}");
    assert!(d.iter().all(|x| x.msg.contains("never exercised")), "{d:?}");
    // A test chaining the crate's roster covers every site.
    let d = scan_sources(
        &[
            ("crates/engine/src/lib.rs", engine),
            (
                "crates/engine/tests/torture.rs",
                "#[test]\nfn kill_all() { for s in engine::FAILPOINT_SITES { arm(s); } }\n",
            ),
        ],
        &cfg(),
    );
    assert!(d.is_empty(), "{d:?}");
}

// ---- pragma ----------------------------------------------------------------

#[test]
fn pragma_pass() {
    let d = lint("crates/engine/src/lib.rs", include_str!("../fixtures/pragma/pass.rs"));
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn pragma_fail() {
    let d = lint("crates/engine/src/lib.rs", include_str!("../fixtures/pragma/fail.rs"));
    // The typo'd rule and the reasonless pragma are violations, and
    // neither suppresses its unwrap (diagnostics sort by rule per line).
    assert_eq!(rules(&d), ["panic", "pragma", "panic", "pragma"], "{d:?}");
}

#[test]
fn pragma_unused_is_flagged() {
    let d = lint("crates/engine/src/lib.rs", include_str!("../fixtures/pragma/unused_fail.rs"));
    assert_eq!(rules(&d), ["pragma"], "{d:?}");
    assert!(d[0].msg.contains("unused pragma"), "{d:?}");
}
