//! # mmdb-fault — deterministic fault injection
//!
//! Named failpoints for crash-recovery testing, in the spirit of the
//! `fail` crate but with zero dependencies. A *site* is a string naming a
//! spot on a durability path (`"wal.append"`, `"txn.commit.before_wal"`,
//! …). Instrumented code calls [`eval`] (or the [`fail_point!`] macro) at
//! the site; tests arm sites with an [`Action`] and the call site then
//! errors, panics, truncates its write, or sleeps — deterministically.
//!
//! Configuration is process-global: programmatically via [`configure`] /
//! [`set`], or through the `MMDB_FAILPOINTS` environment variable read on
//! first use. The spec grammar is
//!
//! ```text
//! spec    := entry (';' entry)*
//! entry   := site '=' [count ':'] kind ['(' arg ')']
//! kind    := 'off' | 'error' | 'panic' | 'short' | 'delay'
//! ```
//!
//! e.g. `MMDB_FAILPOINTS="wal.sync=error;wal.append=3:short"` makes every
//! `wal.sync` fail and the third and later `wal.append`s tear.
//!
//! With the `failpoints` feature **off** (the default) there is no
//! registry at all: [`eval`] is an `#[inline(always)]` constant
//! `Decision::Proceed` and [`fail_point!`] expands to nothing, so
//! production builds pay nothing for the instrumentation.
//!
//! Hit counters are kept for every evaluated site (armed or not), so a
//! test harness can enumerate which sites a workload actually crossed
//! ([`seen_sites`]) and fail when a new `fail_point!` shows up without
//! torture coverage.

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Site disarmed; execution proceeds.
    Off,
    /// The call site returns an injected error.
    Error,
    /// Panic, simulating a process crash at the site.
    Panic,
    /// The call site performs a truncated (torn) write, then errors.
    Short,
    /// Sleep this many milliseconds, then proceed (delayed fsync).
    Delay(u64),
}

/// What an instrumented call site should do, as returned by [`eval`].
/// `Panic` and `Delay` never reach the caller — [`eval`] panics or sleeps
/// internally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// Proceed normally.
    Proceed,
    /// Return an error carrying this message.
    Fail(String),
    /// Perform a truncated write (caller-defined), then error.
    Short,
}

/// One parsed `entry` of the spec grammar: fire `action` from the
/// `from_hit`-th evaluation (1-based) onwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteSpec {
    /// What to do when the site fires.
    pub action: Action,
    /// First evaluation (1-based) at which the action applies.
    pub from_hit: u64,
}

impl std::str::FromStr for SiteSpec {
    type Err = String;

    /// Parse `[count ':'] kind ['(' arg ')']`.
    fn from_str(s: &str) -> Result<SiteSpec, String> {
        let s = s.trim();
        let (from_hit, rest) = match s.split_once(':') {
            Some((n, rest)) => {
                let n: u64 = n
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad hit count in action '{s}'"))?;
                (n.max(1), rest.trim())
            }
            None => (1, s),
        };
        let (kind, arg) = match rest.split_once('(') {
            Some((k, a)) => {
                let a = a
                    .strip_suffix(')')
                    .ok_or_else(|| format!("unclosed '(' in action '{s}'"))?;
                (k.trim(), Some(a.trim()))
            }
            None => (rest, None),
        };
        let action = match (kind, arg) {
            ("off", None) => Action::Off,
            ("error", None) => Action::Error,
            ("panic", None) => Action::Panic,
            ("short", None) => Action::Short,
            ("delay", Some(ms)) => Action::Delay(
                ms.parse().map_err(|_| format!("bad delay millis in action '{s}'"))?,
            ),
            _ => return Err(format!("unknown failpoint action '{s}'")),
        };
        Ok(SiteSpec { action, from_hit })
    }
}

/// Whether this build carries live failpoints (the `failpoints` feature).
pub const fn enabled() -> bool {
    cfg!(feature = "failpoints")
}

#[cfg(feature = "failpoints")]
mod registry {
    use super::{Action, Decision, SiteSpec};
    use std::collections::HashMap;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    #[derive(Default)]
    struct Site {
        spec: Option<SiteSpec>,
        hits: u64,
    }

    static SITES: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();

    fn sites() -> MutexGuard<'static, HashMap<String, Site>> {
        let m = SITES.get_or_init(|| {
            let mut map = HashMap::new();
            if let Ok(spec) = std::env::var("MMDB_FAILPOINTS") {
                // A bad env spec is a harness bug; failing loudly beats
                // silently running the test without its faults.
                apply_spec(&mut map, &spec).expect("invalid MMDB_FAILPOINTS"); // lint: allow(panic, bad MMDB_FAILPOINTS spec is a harness bug; failing loudly is the contract)
            }
            Mutex::new(map)
        });
        // The registry must survive a caller panicking between lock and
        // unlock (that is the whole point of Action::Panic).
        m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn apply_spec(
        map: &mut HashMap<String, Site>,
        spec: &str,
    ) -> Result<(), String> {
        for entry in spec.split(';').filter(|e| !e.trim().is_empty()) {
            let (site, action) = entry
                .split_once('=')
                .ok_or_else(|| format!("failpoint entry '{entry}' needs site=action"))?;
            let parsed: SiteSpec = action.parse()?;
            map.entry(site.trim().to_string()).or_default().spec = Some(parsed);
        }
        Ok(())
    }

    pub fn configure(spec: &str) -> Result<(), String> {
        apply_spec(&mut sites(), spec)
    }

    pub fn set(site: &str, action: &str) -> Result<(), String> {
        let parsed: SiteSpec = action.parse()?;
        sites().entry(site.to_string()).or_default().spec = Some(parsed);
        Ok(())
    }

    pub fn clear(site: &str) {
        if let Some(s) = sites().get_mut(site) {
            s.spec = None;
        }
    }

    pub fn clear_all() {
        for s in sites().values_mut() {
            s.spec = None;
        }
    }

    pub fn reset() {
        sites().clear();
    }

    pub fn hits(site: &str) -> u64 {
        sites().get(site).map_or(0, |s| s.hits)
    }

    pub fn seen_sites() -> Vec<String> {
        let mut v: Vec<String> = sites()
            .iter()
            .filter(|(_, s)| s.hits > 0)
            .map(|(name, _)| name.clone())
            .collect();
        v.sort();
        v
    }

    pub fn eval(site: &str) -> Decision {
        let action = {
            let mut map = sites();
            let s = map.entry(site.to_string()).or_default();
            s.hits += 1;
            match s.spec {
                Some(spec) if s.hits >= spec.from_hit => spec.action,
                _ => Action::Off,
            }
        };
        // The registry lock is released before acting: Action::Panic must
        // not take the registry down with it.
        match action {
            Action::Off => Decision::Proceed,
            Action::Error => Decision::Fail(format!("injected failure at {site}")),
            Action::Short => Decision::Short,
            Action::Panic => panic!("failpoint {site}: injected panic"), // lint: allow(panic, Action..Panic IS the injected fault; panicking here is the feature)
            Action::Delay(ms) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                Decision::Proceed
            }
        }
    }
}

// ---- public API (live when the feature is on, no-op constants when off) ----

/// Evaluate a failpoint site. Counts a hit; panics or sleeps in place for
/// `panic` / `delay` actions; returns what the caller should do otherwise.
#[cfg(feature = "failpoints")]
pub fn eval(site: &str) -> Decision {
    registry::eval(site)
}

/// Evaluate a failpoint site (no-op build: always proceed).
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn eval(_site: &str) -> Decision {
    Decision::Proceed
}

/// [`eval`] for call sites that can return an error: `Some(message)` when
/// the site is armed with `error` (or `short`, which degrades to an error
/// where no torn write is possible), `None` to proceed.
#[inline]
pub fn eval_to_error(site: &str) -> Option<String> {
    match eval(site) {
        Decision::Proceed => None,
        Decision::Fail(msg) => Some(msg),
        Decision::Short => Some(format!("injected short write at {site}")),
    }
}

/// [`eval`] for call sites with nothing to return: only `panic` and
/// `delay` actions are meaningful; `error`/`short` act as `off`. Used at
/// crash-only sites such as `txn.commit.after_wal`, where the operation
/// is already durable and "fail" would be a lie.
#[inline]
pub fn eval_unit(site: &str) {
    let _ = eval(site);
}

/// Apply a whole spec string (`site=action;site=action…`), as from
/// `MMDB_FAILPOINTS`. Errors on grammar violations; no-op build errors
/// unconditionally so a misconfigured harness cannot pass vacuously.
#[cfg(feature = "failpoints")]
pub fn configure(spec: &str) -> Result<(), String> {
    registry::configure(spec)
}

/// Apply a whole spec string (no-op build: always an error).
#[cfg(not(feature = "failpoints"))]
pub fn configure(_spec: &str) -> Result<(), String> {
    Err("mmdb-fault built without the 'failpoints' feature".into())
}

/// Arm one site with an action spec (`"error"`, `"panic"`, `"2:short"`,
/// `"delay(40)"`, `"off"`).
#[cfg(feature = "failpoints")]
pub fn set(site: &str, action: &str) -> Result<(), String> {
    registry::set(site, action)
}

/// Arm one site (no-op build: always an error).
#[cfg(not(feature = "failpoints"))]
pub fn set(_site: &str, _action: &str) -> Result<(), String> {
    Err("mmdb-fault built without the 'failpoints' feature".into())
}

/// Disarm one site (hit counters are kept).
pub fn clear(site: &str) {
    #[cfg(feature = "failpoints")]
    registry::clear(site);
    #[cfg(not(feature = "failpoints"))]
    let _ = site;
}

/// Disarm every site (hit counters are kept).
pub fn clear_all() {
    #[cfg(feature = "failpoints")]
    registry::clear_all();
}

/// Forget everything: actions *and* hit counters.
pub fn reset() {
    #[cfg(feature = "failpoints")]
    registry::reset();
}

/// How many times a site has been evaluated (0 in no-op builds).
pub fn hits(site: &str) -> u64 {
    #[cfg(feature = "failpoints")]
    return registry::hits(site);
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = site;
        0
    }
}

/// Every site evaluated at least once so far, sorted (empty in no-op
/// builds). The torture harness compares this against the exported site
/// rosters to prove coverage.
pub fn seen_sites() -> Vec<String> {
    #[cfg(feature = "failpoints")]
    return registry::seen_sites();
    #[cfg(not(feature = "failpoints"))]
    Vec::new()
}

/// Declare a failpoint.
///
/// * `fail_point!("site")` — unit form: fires `panic`/`delay` actions.
/// * `fail_point!("site", |msg| err)` — early-returns `Err(err)` from the
///   enclosing function when armed with `error` (or `short`).
///
/// Expands to nothing when the `failpoints` feature is off.
#[cfg(feature = "failpoints")]
#[macro_export]
macro_rules! fail_point {
    ($site:expr) => {
        $crate::eval_unit($site)
    };
    ($site:expr, $map_err:expr) => {
        if let Some(msg) = $crate::eval_to_error($site) {
            return Err(($map_err)(msg));
        }
    };
}

/// Declare a failpoint (no-op build: expands to nothing).
#[cfg(not(feature = "failpoints"))]
#[macro_export]
macro_rules! fail_point {
    ($site:expr) => {};
    ($site:expr, $map_err:expr) => {};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_grammar_parses() {
        assert_eq!("error".parse(), Ok(SiteSpec { action: Action::Error, from_hit: 1 }));
        assert_eq!("3:short".parse(), Ok(SiteSpec { action: Action::Short, from_hit: 3 }));
        assert_eq!(
            "delay(25)".parse(),
            Ok(SiteSpec { action: Action::Delay(25), from_hit: 1 })
        );
        assert_eq!("off".parse(), Ok(SiteSpec { action: Action::Off, from_hit: 1 }));
        assert!("explode".parse::<SiteSpec>().is_err());
        assert!("delay(soon)".parse::<SiteSpec>().is_err());
        assert!("delay(5".parse::<SiteSpec>().is_err());
        assert!("x:error".parse::<SiteSpec>().is_err());
    }

    #[cfg(not(feature = "failpoints"))]
    mod disabled {
        use super::super::*;

        #[test]
        fn everything_is_a_no_op() {
            assert!(!enabled());
            assert_eq!(eval("any.site"), Decision::Proceed);
            assert_eq!(eval_to_error("any.site"), None);
            assert!(configure("any.site=panic").is_err(), "cannot arm a no-op build");
            assert!(set("any.site", "error").is_err());
            assert_eq!(hits("any.site"), 0, "no registry, no counters");
            assert!(seen_sites().is_empty());
            // The macro expands to nothing; this function never errors.
            fn guarded() -> Result<(), String> {
                fail_point!("any.site", |m: String| m);
                fail_point!("any.site");
                Ok(())
            }
            guarded().unwrap();
        }
    }

    #[cfg(feature = "failpoints")]
    mod live {
        use super::super::*;
        use std::sync::{Mutex, MutexGuard, OnceLock};

        // The registry is process-global; tests in this module serialize.
        fn lock() -> MutexGuard<'static, ()> {
            static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
            let guard = LOCK
                .get_or_init(Mutex::default)
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            reset();
            guard
        }

        #[test]
        fn unarmed_sites_proceed_but_count() {
            let _g = lock();
            assert_eq!(eval("t.a"), Decision::Proceed);
            assert_eq!(eval("t.a"), Decision::Proceed);
            assert_eq!(hits("t.a"), 2);
            assert_eq!(seen_sites(), vec!["t.a".to_string()]);
        }

        #[test]
        fn error_and_short_decisions() {
            let _g = lock();
            set("t.err", "error").unwrap();
            assert!(matches!(eval("t.err"), Decision::Fail(_)));
            assert!(eval_to_error("t.err").is_some());
            set("t.short", "short").unwrap();
            assert_eq!(eval("t.short"), Decision::Short);
            // short degrades to an error through eval_to_error.
            assert!(eval_to_error("t.short").unwrap().contains("short"));
        }

        #[test]
        fn hit_count_gating() {
            let _g = lock();
            set("t.gate", "3:error").unwrap();
            assert_eq!(eval("t.gate"), Decision::Proceed);
            assert_eq!(eval("t.gate"), Decision::Proceed);
            assert!(matches!(eval("t.gate"), Decision::Fail(_)), "fires on the 3rd hit");
            assert!(matches!(eval("t.gate"), Decision::Fail(_)), "and stays armed");
        }

        #[test]
        fn panic_action_panics_and_registry_survives() {
            let _g = lock();
            set("t.boom", "panic").unwrap();
            let r = std::panic::catch_unwind(|| eval("t.boom"));
            assert!(r.is_err());
            assert_eq!(hits("t.boom"), 1);
            clear("t.boom");
            assert_eq!(eval("t.boom"), Decision::Proceed, "usable after the panic");
        }

        #[test]
        fn delay_action_sleeps() {
            let _g = lock();
            set("t.slow", "delay(30)").unwrap();
            let t0 = std::time::Instant::now();
            assert_eq!(eval("t.slow"), Decision::Proceed);
            assert!(t0.elapsed() >= std::time::Duration::from_millis(25));
        }

        #[test]
        fn configure_spec_strings() {
            let _g = lock();
            configure("t.x=error; t.y = 2:panic ;; t.z=off").unwrap();
            assert!(matches!(eval("t.x"), Decision::Fail(_)));
            assert_eq!(eval("t.y"), Decision::Proceed, "gated to 2nd hit");
            assert_eq!(eval("t.z"), Decision::Proceed);
            assert!(configure("no-equals-sign").is_err());
            assert!(configure("t.q=warp").is_err());
            clear_all();
            assert_eq!(eval("t.x"), Decision::Proceed, "clear_all disarms");
            assert!(hits("t.x") > 0, "…but keeps counters");
        }

        #[test]
        fn macro_forms() {
            let _g = lock();
            fn guarded() -> Result<(), String> {
                fail_point!("t.m", |m: String| format!("wrapped: {m}"));
                Ok(())
            }
            guarded().unwrap();
            set("t.m", "error").unwrap();
            let e = guarded().unwrap_err();
            assert!(e.starts_with("wrapped: "), "{e}");
            fail_point!("t.unit");
            assert_eq!(hits("t.unit"), 1);
        }
    }
}
