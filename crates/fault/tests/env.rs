//! `MMDB_FAILPOINTS` is read on first registry use. This lives in its own
//! test binary (own process) so the env var is set before anything touches
//! the registry; the unit suite would race with it.
#![cfg(feature = "failpoints")]

use mmdb_fault::{eval, hits, Decision};

#[test]
fn env_var_arms_sites_on_first_use() {
    std::env::set_var("MMDB_FAILPOINTS", "env.site=2:error;other.site=off");
    assert_eq!(eval("env.site"), Decision::Proceed, "gated to the 2nd hit");
    assert!(matches!(eval("env.site"), Decision::Fail(_)));
    assert_eq!(eval("other.site"), Decision::Proceed);
    assert_eq!(hits("env.site"), 2);
}
