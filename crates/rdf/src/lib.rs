//! # mmdb-rdf — the RDF model
//!
//! A triple store patterned on DB2-RDF as the tutorial summarizes it:
//! triples with an associated graph, reachable through four access paths —
//!
//! * **direct primary** — indexed by subject,
//! * **reverse primary** — indexed by object,
//! * **direct secondary** — triples sharing subject and predicate,
//! * **reverse secondary** — triples sharing object and predicate,
//!
//! plus a datatype mapping for literal values (ours: literals *are*
//! [`mmdb_types::Value`]s, so numbers compare numerically in FILTERs).
//!
//! [`sparql`] evaluates SPARQL-style basic graph patterns with joins,
//! FILTER and a GROUP BY/aggregate subset (the tutorial: "SELECT, GROUP
//! BY, HAVING, SUM, MAX, …"). Which access paths exist is configurable —
//! ablation E9 measures each path's effect.

pub mod sparql;
pub mod triple;

pub use sparql::{Binding, SelectQuery, TermPattern, TriplePattern};
pub use triple::{AccessPaths, Triple, TripleStore};
