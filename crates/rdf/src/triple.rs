//! The triple store and its four DB2-style access paths.

use std::collections::HashMap;

use mmdb_types::{Result, Value};

/// One RDF triple (subject, predicate, object) with an optional named
/// graph ("triples + associated graph" in DB2's layout). Objects are
/// [`Value`]s so literals keep their datatype.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Triple {
    /// Subject IRI/blank node label.
    pub subject: String,
    /// Predicate IRI.
    pub predicate: String,
    /// Object: IRI (as string) or typed literal.
    pub object: Value,
    /// Named graph, `None` = default graph.
    pub graph: Option<String>,
}

impl Triple {
    /// Default-graph triple with a string object.
    pub fn new(s: &str, p: &str, o: impl Into<Value>) -> Triple {
        Triple { subject: s.to_string(), predicate: p.to_string(), object: o.into(), graph: None }
    }

    /// Assign a named graph.
    pub fn in_graph(mut self, g: &str) -> Triple {
        self.graph = Some(g.to_string());
        self
    }
}

/// Which access paths to maintain (E9's ablation knobs).
#[derive(Debug, Clone, Copy)]
pub struct AccessPaths {
    /// Direct primary: subject → triples.
    pub direct_primary: bool,
    /// Reverse primary: object → triples.
    pub reverse_primary: bool,
    /// Direct secondary: (subject, predicate) → triples.
    pub direct_secondary: bool,
    /// Reverse secondary: (object, predicate) → triples.
    pub reverse_secondary: bool,
}

impl AccessPaths {
    /// All four paths (DB2's full layout).
    pub fn all() -> Self {
        AccessPaths {
            direct_primary: true,
            reverse_primary: true,
            direct_secondary: true,
            reverse_secondary: true,
        }
    }

    /// No indexes — every lookup scans.
    pub fn none() -> Self {
        AccessPaths {
            direct_primary: false,
            reverse_primary: false,
            direct_secondary: false,
            reverse_secondary: false,
        }
    }
}

/// Internal triple id.
type Tid = usize;

/// Lookup statistics (exposed so E9 can verify which path served a query).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PathStats {
    /// Lookups served by an index.
    pub indexed: u64,
    /// Lookups that fell back to a full scan.
    pub scans: u64,
}

/// The triple store.
pub struct TripleStore {
    triples: Vec<Option<Triple>>,
    paths: AccessPaths,
    by_s: HashMap<String, Vec<Tid>>,
    by_o: HashMap<Value, Vec<Tid>>,
    by_sp: HashMap<(String, String), Vec<Tid>>,
    by_op: HashMap<(Value, String), Vec<Tid>>,
    live: usize,
    indexed_lookups: std::sync::atomic::AtomicU64,
    scan_lookups: std::sync::atomic::AtomicU64,
}

impl Default for TripleStore {
    fn default() -> Self {
        Self::new(AccessPaths::all())
    }
}

impl TripleStore {
    /// Empty store with the chosen access paths.
    pub fn new(paths: AccessPaths) -> Self {
        TripleStore {
            triples: Vec::new(),
            paths,
            by_s: HashMap::new(),
            by_o: HashMap::new(),
            by_sp: HashMap::new(),
            by_op: HashMap::new(),
            live: 0,
            indexed_lookups: std::sync::atomic::AtomicU64::new(0),
            scan_lookups: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Number of live triples.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Lookup counters.
    pub fn stats(&self) -> PathStats {
        use std::sync::atomic::Ordering;
        PathStats {
            indexed: self.indexed_lookups.load(Ordering::Relaxed),
            scans: self.scan_lookups.load(Ordering::Relaxed),
        }
    }

    fn bump(&self, indexed: bool) {
        use std::sync::atomic::Ordering;
        if indexed {
            self.indexed_lookups.fetch_add(1, Ordering::Relaxed);
        } else {
            self.scan_lookups.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Insert a triple (duplicates allowed, as in RDF multisets under
    /// named graphs).
    pub fn insert(&mut self, t: Triple) -> Result<()> {
        let tid = self.triples.len();
        if self.paths.direct_primary {
            self.by_s.entry(t.subject.clone()).or_default().push(tid);
        }
        if self.paths.reverse_primary {
            self.by_o.entry(t.object.clone()).or_default().push(tid);
        }
        if self.paths.direct_secondary {
            self.by_sp
                .entry((t.subject.clone(), t.predicate.clone()))
                .or_default()
                .push(tid);
        }
        if self.paths.reverse_secondary {
            self.by_op
                .entry((t.object.clone(), t.predicate.clone()))
                .or_default()
                .push(tid);
        }
        self.triples.push(Some(t));
        self.live += 1;
        Ok(())
    }

    /// Remove all triples matching the exact (s, p, o) in any graph;
    /// returns how many were removed.
    pub fn remove(&mut self, s: &str, p: &str, o: &Value) -> usize {
        let mut removed = 0;
        for slot in self.triples.iter_mut() {
            if let Some(t) = slot {
                if t.subject == s && t.predicate == p && &t.object == o {
                    *slot = None;
                    removed += 1;
                }
            }
        }
        // Index posting lists keep stale tids; lookups skip None slots.
        self.live -= removed;
        removed
    }

    fn collect(&self, tids: Option<&Vec<Tid>>) -> Vec<&Triple> {
        tids.map(|v| v.iter().filter_map(|&t| self.triples[t].as_ref()).collect())
            .unwrap_or_default()
    }

    fn scan(&self, pred: impl Fn(&Triple) -> bool) -> Vec<&Triple> {
        self.triples
            .iter()
            .filter_map(Option::as_ref)
            .filter(|t| pred(t))
            .collect()
    }

    /// Triples with the given subject (direct primary path, else scan).
    pub fn by_subject(&self, s: &str) -> Vec<&Triple> {
        if self.paths.direct_primary {
            self.bump(true);
            self.collect(self.by_s.get(s))
        } else {
            self.bump(false);
            self.scan(|t| t.subject == s)
        }
    }

    /// Triples with the given object (reverse primary path, else scan).
    pub fn by_object(&self, o: &Value) -> Vec<&Triple> {
        if self.paths.reverse_primary {
            self.bump(true);
            self.collect(self.by_o.get(o))
        } else {
            self.bump(false);
            self.scan(|t| &t.object == o)
        }
    }

    /// Triples with the given subject and predicate (direct secondary).
    pub fn by_subject_predicate(&self, s: &str, p: &str) -> Vec<&Triple> {
        if self.paths.direct_secondary {
            self.bump(true);
            self.collect(self.by_sp.get(&(s.to_string(), p.to_string())))
        } else if self.paths.direct_primary {
            self.bump(true);
            self.collect(self.by_s.get(s))
                .into_iter()
                .filter(|t| t.predicate == p)
                .collect()
        } else {
            self.bump(false);
            self.scan(|t| t.subject == s && t.predicate == p)
        }
    }

    /// Triples with the given object and predicate (reverse secondary).
    pub fn by_object_predicate(&self, o: &Value, p: &str) -> Vec<&Triple> {
        if self.paths.reverse_secondary {
            self.bump(true);
            self.collect(self.by_op.get(&(o.clone(), p.to_string())))
        } else if self.paths.reverse_primary {
            self.bump(true);
            self.collect(self.by_o.get(o))
                .into_iter()
                .filter(|t| t.predicate == p)
                .collect()
        } else {
            self.bump(false);
            self.scan(|t| &t.object == o && t.predicate == p)
        }
    }

    /// All triples (optionally restricted to one named graph). Always a
    /// full scan — no access path covers an unbound pattern — so it
    /// counts against the scan-fallback counter like the other scans.
    pub fn all(&self, graph: Option<&str>) -> Vec<&Triple> {
        self.bump(false);
        self.scan(|t| match graph {
            None => true,
            Some(g) => t.graph.as_deref() == Some(g),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(paths: AccessPaths) -> TripleStore {
        let mut s = TripleStore::new(paths);
        s.insert(Triple::new("mary", "knows", "john")).unwrap();
        s.insert(Triple::new("anne", "knows", "mary")).unwrap();
        s.insert(Triple::new("mary", "creditLimit", Value::int(5000))).unwrap();
        s.insert(Triple::new("john", "creditLimit", Value::int(3000))).unwrap();
        s.insert(Triple::new("mary", "name", "Mary")).unwrap();
        s
    }

    #[test]
    fn four_access_paths_agree_with_scans() {
        let indexed = store(AccessPaths::all());
        let bare = store(AccessPaths::none());
        for (i, b) in [
            (indexed.by_subject("mary"), bare.by_subject("mary")),
            (indexed.by_object(&Value::str("mary")), bare.by_object(&Value::str("mary"))),
            (
                indexed.by_subject_predicate("mary", "knows"),
                bare.by_subject_predicate("mary", "knows"),
            ),
            (
                indexed.by_object_predicate(&Value::int(3000), "creditLimit"),
                bare.by_object_predicate(&Value::int(3000), "creditLimit"),
            ),
        ] {
            let mut iv: Vec<&Triple> = i;
            let mut bv: Vec<&Triple> = b;
            iv.sort_by_key(|t| (t.subject.clone(), t.predicate.clone()));
            bv.sort_by_key(|t| (t.subject.clone(), t.predicate.clone()));
            assert_eq!(iv, bv);
        }
        assert!(indexed.stats().indexed >= 4);
        assert!(bare.stats().scans >= 4);
    }

    #[test]
    fn subject_lookup() {
        let s = store(AccessPaths::all());
        let marys = s.by_subject("mary");
        assert_eq!(marys.len(), 3);
        assert!(s.by_subject("zeus").is_empty());
    }

    #[test]
    fn typed_literals() {
        let s = store(AccessPaths::all());
        let hits = s.by_object(&Value::int(5000));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].subject, "mary");
        // Int/float literal identity follows Value semantics.
        let hits = s.by_object(&Value::float(5000.0));
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn secondary_paths_fall_back_to_primary() {
        let mut paths = AccessPaths::all();
        paths.direct_secondary = false;
        paths.reverse_secondary = false;
        let s = store(paths);
        assert_eq!(s.by_subject_predicate("mary", "knows").len(), 1);
        assert_eq!(s.by_object_predicate(&Value::str("mary"), "knows").len(), 1);
        assert_eq!(s.stats().scans, 0, "primary paths still avoid scans");
    }

    #[test]
    fn remove_hides_from_all_paths() {
        let mut s = store(AccessPaths::all());
        assert_eq!(s.remove("mary", "knows", &Value::str("john")), 1);
        assert_eq!(s.len(), 4);
        assert!(s.by_subject_predicate("mary", "knows").is_empty());
        assert!(s.by_object(&Value::str("john")).is_empty());
        assert_eq!(s.remove("mary", "knows", &Value::str("john")), 0);
    }

    #[test]
    fn named_graphs() {
        let mut s = TripleStore::default();
        s.insert(Triple::new("a", "p", "x").in_graph("g1")).unwrap();
        s.insert(Triple::new("b", "p", "y").in_graph("g2")).unwrap();
        s.insert(Triple::new("c", "p", "z")).unwrap();
        assert_eq!(s.all(Some("g1")).len(), 1);
        assert_eq!(s.all(None).len(), 3);
    }
}
