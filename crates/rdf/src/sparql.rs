//! SPARQL-style basic-graph-pattern evaluation with FILTER and a
//! GROUP BY/aggregate subset.
//!
//! The tutorial credits DB2 with "SPARQL 1.0 + subset of features from
//! SPARQL 1.1: SELECT, GROUP BY, HAVING, SUM, MAX, …". This module
//! evaluates exactly that slice over [`TripleStore`], picking the best
//! available access path per triple pattern given the bindings so far.

use std::collections::HashMap;

use mmdb_types::{Error, Result, Value};

use crate::triple::TripleStore;

/// A term position in a pattern: constant or variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TermPattern {
    /// A constant term.
    Const(Value),
    /// A variable, named without the `?`.
    Var(String),
}

impl TermPattern {
    /// Shorthand for a variable.
    pub fn var(name: &str) -> TermPattern {
        TermPattern::Var(name.to_string())
    }

    /// Shorthand for a string constant.
    pub fn iri(s: &str) -> TermPattern {
        TermPattern::Const(Value::str(s))
    }
}

/// One triple pattern.
#[derive(Debug, Clone)]
pub struct TriplePattern {
    /// Subject slot.
    pub subject: TermPattern,
    /// Predicate slot (constant-only here, like most engines' fast path;
    /// a variable predicate falls back to scanning).
    pub predicate: TermPattern,
    /// Object slot.
    pub object: TermPattern,
}

impl TriplePattern {
    /// Build from the `?var` / literal convention: a leading `?` makes a
    /// variable.
    pub fn parse(s: &str, p: &str, o: &str) -> TriplePattern {
        let term = |t: &str| {
            if let Some(v) = t.strip_prefix('?') {
                TermPattern::Var(v.to_string())
            } else {
                TermPattern::Const(Value::str(t))
            }
        };
        TriplePattern { subject: term(s), predicate: term(p), object: term(o) }
    }

    /// Replace the object with a typed constant.
    pub fn with_object(mut self, v: Value) -> TriplePattern {
        self.object = TermPattern::Const(v);
        self
    }
}

/// A set of variable bindings.
pub type Binding = HashMap<String, Value>;

/// Comparison operators usable in FILTER.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A FILTER constraint: `?var op constant`.
#[derive(Debug, Clone)]
pub struct Filter {
    /// Variable name.
    pub var: String,
    /// Operator.
    pub op: CmpOp,
    /// Right-hand constant.
    pub value: Value,
}

impl Filter {
    fn accepts(&self, b: &Binding) -> bool {
        let Some(v) = b.get(&self.var) else { return false };
        match self.op {
            CmpOp::Eq => v == &self.value,
            CmpOp::Ne => v != &self.value,
            CmpOp::Lt => v < &self.value,
            CmpOp::Le => v <= &self.value,
            CmpOp::Gt => v > &self.value,
            CmpOp::Ge => v >= &self.value,
        }
    }
}

/// Aggregate functions for the GROUP BY subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// COUNT of rows in the group.
    Count,
    /// SUM over a numeric variable.
    Sum,
    /// MAX over a variable.
    Max,
    /// MIN over a variable.
    Min,
}

/// A SELECT query: BGP + FILTERs, with optional GROUP BY + one aggregate.
#[derive(Debug, Clone)]
pub struct SelectQuery {
    /// Projected variables (empty = all bound variables).
    pub select: Vec<String>,
    /// The basic graph pattern.
    pub patterns: Vec<TriplePattern>,
    /// FILTER constraints.
    pub filters: Vec<Filter>,
    /// GROUP BY variable with `(aggregate, aggregated-variable)`.
    pub group_by: Option<(String, Aggregate, String)>,
}

impl SelectQuery {
    /// A plain BGP query.
    pub fn new(patterns: Vec<TriplePattern>) -> SelectQuery {
        SelectQuery { select: Vec::new(), patterns, filters: Vec::new(), group_by: None }
    }

    /// Add a FILTER, builder-style.
    pub fn filter(mut self, var: &str, op: CmpOp, value: Value) -> SelectQuery {
        self.filters.push(Filter { var: var.to_string(), op, value });
        self
    }

    /// Project specific variables, builder-style.
    pub fn project(mut self, vars: &[&str]) -> SelectQuery {
        self.select = vars.iter().map(|v| v.to_string()).collect();
        self
    }

    /// Group by `key_var` and aggregate `agg(agg_var)`, builder-style.
    pub fn group(mut self, key_var: &str, agg: Aggregate, agg_var: &str) -> SelectQuery {
        self.group_by = Some((key_var.to_string(), agg, agg_var.to_string()));
        self
    }

    /// Evaluate the query. Plain queries return one binding per match;
    /// grouped queries return bindings `{key_var: key, "agg": value}`.
    pub fn eval(&self, store: &TripleStore) -> Result<Vec<Binding>> {
        let mut bindings = vec![Binding::new()];
        for p in &self.patterns {
            bindings = extend(store, &bindings, p)?;
            if bindings.is_empty() {
                break;
            }
        }
        bindings.retain(|b| self.filters.iter().all(|f| f.accepts(b)));

        if let Some((key_var, agg, agg_var)) = &self.group_by {
            let mut groups: HashMap<Value, Vec<&Binding>> = HashMap::new();
            for b in &bindings {
                let key = b.get(key_var).cloned().unwrap_or(Value::Null);
                groups.entry(key).or_default().push(b);
            }
            let mut out: Vec<Binding> = groups
                .into_iter()
                .map(|(key, members)| {
                    let agg_value = match agg {
                        Aggregate::Count => Value::int(members.len() as i64),
                        Aggregate::Sum => {
                            let mut total = 0.0;
                            let mut all_int = true;
                            for m in &members {
                                if let Some(Value::Number(n)) = m.get(agg_var) {
                                    total += n.as_f64();
                                    all_int &= n.is_int();
                                }
                            }
                            if all_int { Value::int(total as i64) } else { Value::float(total) }
                        }
                        Aggregate::Max => members
                            .iter()
                            .filter_map(|m| m.get(agg_var))
                            .max()
                            .cloned()
                            .unwrap_or(Value::Null),
                        Aggregate::Min => members
                            .iter()
                            .filter_map(|m| m.get(agg_var))
                            .min()
                            .cloned()
                            .unwrap_or(Value::Null),
                    };
                    let mut b = Binding::new();
                    b.insert(key_var.clone(), key);
                    b.insert("agg".to_string(), agg_value);
                    b
                })
                .collect();
            out.sort_by(|a, b| a.get(key_var).cmp(&b.get(key_var)));
            return Ok(out);
        }

        // Projection.
        if !self.select.is_empty() {
            bindings = bindings
                .into_iter()
                .map(|mut b| {
                    b.retain(|k, _| self.select.contains(k));
                    b
                })
                .collect();
        }
        Ok(bindings)
    }
}

/// Extend each binding with matches of one pattern, choosing the best
/// access path for the bound/unbound shape.
fn extend(store: &TripleStore, bindings: &[Binding], p: &TriplePattern) -> Result<Vec<Binding>> {
    let mut out = Vec::new();
    for b in bindings {
        let s_val = resolve(&p.subject, b);
        let p_val = resolve(&p.predicate, b);
        let o_val = resolve(&p.object, b);
        let pred_str = match &p_val {
            Some(Value::String(s)) => Some(s.clone()),
            Some(_) => {
                return Err(Error::Query("predicates must be IRIs (strings)".into()));
            }
            None => None,
        };
        // Pick the access path: SP > OP > S > O > scan.
        let candidates: Vec<&crate::triple::Triple> = match (&s_val, &pred_str, &o_val) {
            (Some(Value::String(s)), Some(pp), _) => store.by_subject_predicate(s, pp),
            (_, Some(pp), Some(o)) => store.by_object_predicate(o, pp),
            (Some(Value::String(s)), None, _) => store.by_subject(s),
            (None, _, Some(o)) => store.by_object(o),
            _ => store.all(None),
        };
        for t in candidates {
            // Verify constants / bound vars, bind free vars.
            if let Some(Value::String(s)) = &s_val {
                if &t.subject != s {
                    continue;
                }
            } else if s_val.is_some() {
                continue; // non-string subject constant can never match
            }
            if let Some(pp) = &pred_str {
                if &t.predicate != pp {
                    continue;
                }
            }
            if let Some(o) = &o_val {
                if &t.object != o {
                    continue;
                }
            }
            let mut nb = b.clone();
            if let TermPattern::Var(v) = &p.subject {
                nb.insert(v.clone(), Value::str(&t.subject));
            }
            if let TermPattern::Var(v) = &p.predicate {
                nb.insert(v.clone(), Value::str(&t.predicate));
            }
            if let TermPattern::Var(v) = &p.object {
                nb.insert(v.clone(), t.object.clone());
            }
            out.push(nb);
        }
    }
    Ok(out)
}

fn resolve(t: &TermPattern, b: &Binding) -> Option<Value> {
    match t {
        TermPattern::Const(v) => Some(v.clone()),
        TermPattern::Var(name) => b.get(name).cloned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::{AccessPaths, Triple};

    fn store() -> TripleStore {
        let mut s = TripleStore::new(AccessPaths::all());
        for (subj, limit) in [("mary", 5000), ("john", 3000), ("anne", 2000)] {
            s.insert(Triple::new(subj, "rdf:type", "Customer")).unwrap();
            s.insert(Triple::new(subj, "creditLimit", Value::int(limit))).unwrap();
        }
        s.insert(Triple::new("mary", "knows", "john")).unwrap();
        s.insert(Triple::new("anne", "knows", "mary")).unwrap();
        s.insert(Triple::new("john", "ordered", "toy")).unwrap();
        s.insert(Triple::new("john", "ordered", "book")).unwrap();
        s
    }

    #[test]
    fn single_pattern_binds_variables() {
        let s = store();
        let q = SelectQuery::new(vec![TriplePattern::parse("?c", "rdf:type", "Customer")]);
        let rows = q.eval(&s).unwrap();
        assert_eq!(rows.len(), 3);
        let mut names: Vec<String> = rows
            .iter()
            .map(|b| b["c"].as_str().unwrap().to_string())
            .collect();
        names.sort();
        assert_eq!(names, vec!["anne", "john", "mary"]);
    }

    #[test]
    fn the_recommendation_query_as_sparql() {
        // Products ordered by a friend of a customer with creditLimit > 3000.
        let s = store();
        let q = SelectQuery::new(vec![
            TriplePattern::parse("?c", "creditLimit", "?limit"),
            TriplePattern::parse("?c", "knows", "?friend"),
            TriplePattern::parse("?friend", "ordered", "?product"),
        ])
        .filter("limit", CmpOp::Gt, Value::int(3000))
        .project(&["product"]);
        let rows = q.eval(&s).unwrap();
        let mut products: Vec<String> = rows
            .iter()
            .map(|b| b["product"].as_str().unwrap().to_string())
            .collect();
        products.sort();
        assert_eq!(products, vec!["book", "toy"]);
        // Projection removed other vars.
        assert_eq!(rows[0].len(), 1);
    }

    #[test]
    fn joins_share_variables() {
        let s = store();
        // Who knows someone who ordered something?
        let q = SelectQuery::new(vec![
            TriplePattern::parse("?x", "knows", "?y"),
            TriplePattern::parse("?y", "ordered", "?p"),
        ]);
        let rows = q.eval(&s).unwrap();
        assert_eq!(rows.len(), 2, "mary→john × two products");
        assert!(rows.iter().all(|b| b["x"] == Value::str("mary")));
    }

    #[test]
    fn filters_compare_typed_literals() {
        let s = store();
        let q = SelectQuery::new(vec![TriplePattern::parse("?c", "creditLimit", "?l")])
            .filter("l", CmpOp::Ge, Value::int(3000));
        assert_eq!(q.eval(&s).unwrap().len(), 2);
        let q = SelectQuery::new(vec![TriplePattern::parse("?c", "creditLimit", "?l")])
            .filter("l", CmpOp::Ne, Value::int(2000));
        assert_eq!(q.eval(&s).unwrap().len(), 2);
    }

    #[test]
    fn group_by_with_aggregates() {
        let s = store();
        // COUNT of orders per subject.
        let q = SelectQuery::new(vec![TriplePattern::parse("?who", "ordered", "?what")])
            .group("who", Aggregate::Count, "what");
        let rows = q.eval(&s).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0]["who"], Value::str("john"));
        assert_eq!(rows[0]["agg"], Value::int(2));
        // MAX credit limit per type.
        let q = SelectQuery::new(vec![
            TriplePattern::parse("?c", "rdf:type", "?t"),
            TriplePattern::parse("?c", "creditLimit", "?l"),
        ])
        .group("t", Aggregate::Max, "l");
        let rows = q.eval(&s).unwrap();
        assert_eq!(rows[0]["agg"], Value::int(5000));
        // SUM.
        let q = SelectQuery::new(vec![TriplePattern::parse("?c", "creditLimit", "?l")])
            .group("c", Aggregate::Sum, "l");
        let rows = q.eval(&s).unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn variable_predicate_scans() {
        let s = store();
        let q = SelectQuery::new(vec![TriplePattern::parse("mary", "?p", "?o")]);
        let rows = q.eval(&s).unwrap();
        assert_eq!(rows.len(), 3); // type, creditLimit, knows
    }

    #[test]
    fn unsatisfiable_patterns_short_circuit() {
        let s = store();
        let q = SelectQuery::new(vec![
            TriplePattern::parse("?c", "nonexistent", "?x"),
            TriplePattern::parse("?x", "knows", "?y"),
        ]);
        assert!(q.eval(&s).unwrap().is_empty());
    }
}
