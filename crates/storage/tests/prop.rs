//! Property tests for the storage substrate: slotted pages and the LSM
//! engine against shadow models, and WAL recovery invariants.

use proptest::prelude::*;

use mmdb_storage::lsm::{LsmConfig, LsmTree};
use mmdb_storage::page::SlottedPage;
use mmdb_storage::wal::{recover_from_bytes, Wal, WalRecord};

#[derive(Debug, Clone)]
enum PageOp {
    Insert(Vec<u8>),
    Delete(usize),
    Update(usize, Vec<u8>),
}

fn arb_page_ops() -> impl Strategy<Value = Vec<PageOp>> {
    prop::collection::vec(
        prop_oneof![
            prop::collection::vec(any::<u8>(), 1..300).prop_map(PageOp::Insert),
            (0usize..40).prop_map(PageOp::Delete),
            ((0usize..40), prop::collection::vec(any::<u8>(), 1..300))
                .prop_map(|(i, d)| PageOp::Update(i, d)),
        ],
        0..80,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A slotted page behaves like a map slot → bytes, across inserts,
    /// deletes, updates, compactions and a disk round-trip.
    #[test]
    fn slotted_page_matches_shadow(ops in arb_page_ops()) {
        let mut page = SlottedPage::new();
        let mut shadow: std::collections::HashMap<u16, Vec<u8>> = Default::default();
        let mut slots: Vec<u16> = Vec::new();
        for op in ops {
            match op {
                PageOp::Insert(data) => {
                    if let Ok(slot) = page.insert(&data) {
                        shadow.insert(slot, data);
                        if !slots.contains(&slot) {
                            slots.push(slot);
                        }
                    }
                }
                PageOp::Delete(i) => {
                    if let Some(&slot) = slots.get(i) {
                        let expected = shadow.remove(&slot);
                        prop_assert_eq!(page.delete(slot).is_ok(), expected.is_some());
                    }
                }
                PageOp::Update(i, data) => {
                    if let Some(&slot) = slots.get(i) {
                        if shadow.contains_key(&slot)
                            && page.update(slot, &data).is_ok() {
                                shadow.insert(slot, data);
                            }
                            // A failed (page-full) update must preserve the
                            // old record — checked below via the shadow.
                    }
                }
            }
        }
        // Round-trip through bytes like a disk write.
        let restored = SlottedPage::from_bytes(page.bytes().as_slice()).unwrap();
        for (&slot, data) in &shadow {
            prop_assert_eq!(restored.get(slot).unwrap(), &data[..]);
        }
        prop_assert_eq!(restored.iter().count(), shadow.len());
    }

    /// The LSM tree equals a BTreeMap under random put/delete/scan,
    /// across flushes and compactions.
    #[test]
    fn lsm_matches_btreemap(
        ops in prop::collection::vec((any::<u8>(), any::<bool>()), 0..400),
        flush_every in 1usize..50,
    ) {
        let mut lsm = LsmTree::new(LsmConfig { memtable_bytes: 64, tier_fanout: 2 });
        let mut shadow: std::collections::BTreeMap<Vec<u8>, Vec<u8>> = Default::default();
        for (i, (k, is_put)) in ops.iter().enumerate() {
            let key = vec![b'k', *k];
            if *is_put {
                let val = vec![*k, i as u8];
                lsm.put(key.clone(), val.clone()).unwrap();
                shadow.insert(key, val);
            } else {
                lsm.delete(key.clone()).unwrap();
                shadow.remove(&key);
            }
            if i % flush_every == 0 {
                lsm.flush().unwrap();
            }
        }
        for (k, v) in &shadow {
            prop_assert_eq!(lsm.get(k), Some(v.clone()));
        }
        let scan = lsm.scan(None, None);
        let want: Vec<(Vec<u8>, Vec<u8>)> =
            shadow.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(scan, want.clone());
        lsm.compact_full().unwrap();
        prop_assert_eq!(lsm.scan(None, None), want);
    }

    /// Recovery replays exactly the committed writes, in order, regardless
    /// of interleaving with losers; any byte-suffix truncation of the log
    /// yields a prefix of the committed history.
    #[test]
    fn wal_recovery_is_prefix_consistent(
        txns in prop::collection::vec((any::<bool>(), 1usize..5), 1..10),
        cut in 0usize..2000,
    ) {
        let wal = Wal::in_memory();
        let mut committed_writes = Vec::new();
        for (t, (commit, n_writes)) in txns.iter().enumerate() {
            let txid = t as u64 + 1;
            wal.append(&WalRecord::Begin { txid }).unwrap();
            for w in 0..*n_writes {
                let key = format!("{txid}-{w}").into_bytes();
                wal.append(&WalRecord::Write {
                    txid,
                    domain: "d".into(),
                    key: key.clone(),
                    value: Some(vec![w as u8]),
                }).unwrap();
                if *commit {
                    committed_writes.push(key);
                }
            }
            if *commit {
                wal.append(&WalRecord::Commit { txid }).unwrap();
            }
        }
        let bytes = wal.snapshot_bytes();
        // Full recovery: exactly the committed writes in order.
        let rec = recover_from_bytes(&bytes);
        let got: Vec<Vec<u8>> = rec.redo.iter().map(|r| r.key.clone()).collect();
        prop_assert_eq!(&got, &committed_writes);
        // Truncated recovery: a prefix of the committed history (whole
        // transactions only).
        let cut = cut.min(bytes.len());
        let rec = recover_from_bytes(&bytes[..cut]);
        let got: Vec<Vec<u8>> = rec.redo.iter().map(|r| r.key.clone()).collect();
        prop_assert!(got.len() <= committed_writes.len());
        prop_assert_eq!(&got[..], &committed_writes[..got.len()]);
    }
}
