//! A log-structured merge engine: memtable + SSTables.
//!
//! Cassandra — the tutorial's column-family example — stores everything in
//! *SSTables (Sorted String Tables), proposed in Google's Bigtable*. This
//! module reproduces that stack in miniature: an in-memory sorted memtable
//! absorbs writes; when it exceeds a threshold it is flushed to an
//! immutable, bloom-filtered, sorted run; size-tiered compaction merges
//! runs; deletes are tombstones that survive until full compaction.
//!
//! The key/value model (`mmdb-kv`) runs on this engine.

use std::collections::BTreeMap;

use mmdb_types::{Error, Result};

/// A write: present value or tombstone.
type Entry = Option<Vec<u8>>;

/// Simple double-hashed bloom filter over byte keys.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    n_bits: usize,
    n_hashes: u32,
}

impl BloomFilter {
    /// Size the filter for `n` keys at ~1% false-positive rate.
    pub fn with_capacity(n: usize) -> Self {
        let n_bits = (n.max(1) * 10).next_power_of_two();
        BloomFilter {
            bits: vec![0u64; n_bits / 64 + 1],
            n_bits,
            n_hashes: 7,
        }
    }

    fn hash2(key: &[u8]) -> (u64, u64) {
        // FNV-1a with two different offsets gives independent-enough hashes.
        let mut h1: u64 = 0xcbf29ce484222325;
        let mut h2: u64 = 0x9e3779b97f4a7c15;
        for &b in key {
            h1 = (h1 ^ b as u64).wrapping_mul(0x100000001b3);
            h2 = (h2 ^ b as u64).wrapping_mul(0xc2b2ae3d27d4eb4f);
        }
        (h1, h2.max(1))
    }

    /// Record a key.
    pub fn insert(&mut self, key: &[u8]) {
        let (h1, h2) = Self::hash2(key);
        for i in 0..self.n_hashes {
            let bit = (h1.wrapping_add(h2.wrapping_mul(i as u64)) % self.n_bits as u64) as usize;
            self.bits[bit / 64] |= 1 << (bit % 64);
        }
    }

    /// May the key be present? (false ⇒ definitely absent).
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let (h1, h2) = Self::hash2(key);
        (0..self.n_hashes).all(|i| {
            let bit = (h1.wrapping_add(h2.wrapping_mul(i as u64)) % self.n_bits as u64) as usize;
            self.bits[bit / 64] & (1 << (bit % 64)) != 0
        })
    }
}

/// An immutable sorted run.
pub struct SsTable {
    entries: Vec<(Vec<u8>, Entry)>,
    bloom: BloomFilter,
}

impl SsTable {
    fn from_sorted(entries: Vec<(Vec<u8>, Entry)>) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "must be sorted+deduped");
        let mut bloom = BloomFilter::with_capacity(entries.len());
        for (k, _) in &entries {
            bloom.insert(k);
        }
        SsTable { entries, bloom }
    }

    /// Point lookup. `None` = key absent from this run; `Some(None)` =
    /// tombstone; `Some(Some(v))` = live value.
    pub fn get(&self, key: &[u8]) -> Option<&Entry> {
        if !self.bloom.may_contain(key) {
            return None;
        }
        self.entries
            .binary_search_by(|(k, _)| k.as_slice().cmp(key))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Number of entries (incl. tombstones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the run holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct LsmConfig {
    /// Flush the memtable once it holds this many bytes of keys+values.
    pub memtable_bytes: usize,
    /// Merge a tier once it accumulates this many runs.
    pub tier_fanout: usize,
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig { memtable_bytes: 1 << 20, tier_fanout: 4 }
    }
}

/// Counters exposed for the storage benches and tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct LsmStats {
    /// Memtable flushes performed.
    pub flushes: u64,
    /// Compaction merges performed.
    pub compactions: u64,
    /// Lookups short-circuited by a bloom filter.
    pub bloom_skips: u64,
}

/// The LSM tree.
pub struct LsmTree {
    config: LsmConfig,
    memtable: BTreeMap<Vec<u8>, Entry>,
    memtable_bytes: usize,
    /// Runs from newest (index 0) to oldest.
    tables: Vec<SsTable>,
    stats: LsmStats,
}

impl LsmTree {
    /// New empty tree.
    pub fn new(config: LsmConfig) -> Self {
        LsmTree {
            config,
            memtable: BTreeMap::new(),
            memtable_bytes: 0,
            tables: Vec::new(),
            stats: LsmStats::default(),
        }
    }

    /// Insert or overwrite.
    pub fn put(&mut self, key: Vec<u8>, value: Vec<u8>) -> Result<()> {
        self.write(key, Some(value))
    }

    /// Delete (writes a tombstone).
    pub fn delete(&mut self, key: Vec<u8>) -> Result<()> {
        self.write(key, None)
    }

    fn write(&mut self, key: Vec<u8>, entry: Entry) -> Result<()> {
        if key.is_empty() {
            return Err(Error::Storage("empty keys are not allowed".into()));
        }
        self.memtable_bytes += key.len() + entry.as_ref().map_or(0, Vec::len);
        self.memtable.insert(key, entry);
        if self.memtable_bytes >= self.config.memtable_bytes {
            self.flush()?;
        }
        Ok(())
    }

    /// Point lookup across memtable then runs, newest first.
    pub fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        if let Some(e) = self.memtable.get(key) {
            return e.clone();
        }
        for t in &self.tables {
            if !t.bloom.may_contain(key) {
                self.stats.bloom_skips += 1;
                continue;
            }
            if let Some(e) = t.get(key) {
                return e.clone();
            }
        }
        None
    }

    /// Force the memtable into an SSTable run.
    pub fn flush(&mut self) -> Result<()> {
        mmdb_fault::fail_point!("lsm.flush", |msg| Error::Storage(format!(
            "lsm flush: {msg}"
        )));
        if self.memtable.is_empty() {
            return Ok(());
        }
        let entries: Vec<(Vec<u8>, Entry)> = std::mem::take(&mut self.memtable).into_iter().collect();
        self.memtable_bytes = 0;
        self.tables.insert(0, SsTable::from_sorted(entries));
        self.stats.flushes += 1;
        self.maybe_compact()
    }

    fn maybe_compact(&mut self) -> Result<()> {
        // Size-tiered: when there are `tier_fanout` runs of similar size,
        // merge them. Simplification: merge the newest `tier_fanout` runs
        // whenever the run count reaches the fanout.
        while self.tables.len() >= self.config.tier_fanout {
            mmdb_fault::fail_point!("lsm.compact", |msg| Error::Storage(format!(
                "lsm compaction: {msg}"
            )));
            let group: Vec<SsTable> = self.tables.drain(0..self.config.tier_fanout).collect();
            // If this merge consumes every run, tombstones can be dropped.
            let drop_tombstones = self.tables.is_empty();
            let merged = merge_runs(group, drop_tombstones);
            self.tables.insert(0, merged);
            self.stats.compactions += 1;
            if self.tables.len() < self.config.tier_fanout {
                break;
            }
        }
        Ok(())
    }

    /// Merge everything into a single run, dropping tombstones.
    pub fn compact_full(&mut self) -> Result<()> {
        self.flush()?;
        mmdb_fault::fail_point!("lsm.compact", |msg| Error::Storage(format!(
            "lsm compaction: {msg}"
        )));
        if self.tables.len() <= 1 {
            // Still rewrite a single run to purge tombstones.
            if let Some(t) = self.tables.pop() {
                self.tables.push(merge_runs(vec![t], true));
                self.stats.compactions += 1;
            }
            return Ok(());
        }
        let group: Vec<SsTable> = self.tables.drain(..).collect();
        self.tables.push(merge_runs(group, true));
        self.stats.compactions += 1;
        Ok(())
    }

    /// Range scan over live entries, `start..end` (end exclusive; `None` =
    /// unbounded), newest version wins.
    pub fn scan(&self, start: Option<&[u8]>, end: Option<&[u8]>) -> Vec<(Vec<u8>, Vec<u8>)> {
        // Collect newest-wins view via a merge map; memtable is newest.
        let mut view: BTreeMap<&[u8], &Entry> = BTreeMap::new();
        for t in self.tables.iter().rev() {
            for (k, e) in &t.entries {
                view.insert(k.as_slice(), e);
            }
        }
        for (k, e) in &self.memtable {
            view.insert(k.as_slice(), e);
        }
        view.into_iter()
            .filter(|(k, _)| start.is_none_or(|s| *k >= s) && end.is_none_or(|e| *k < e))
            .filter_map(|(k, e)| e.as_ref().map(|v| (k.to_vec(), v.clone())))
            .collect()
    }

    /// Live key count (scans; for tests and stats).
    pub fn live_len(&self) -> usize {
        self.scan(None, None).len()
    }

    /// Current number of runs.
    pub fn run_count(&self) -> usize {
        self.tables.len()
    }

    /// Engine counters.
    pub fn stats(&self) -> LsmStats {
        self.stats
    }
}

impl Default for LsmTree {
    fn default() -> Self {
        Self::new(LsmConfig::default())
    }
}

/// K-way merge of runs (index 0 = newest wins).
fn merge_runs(runs: Vec<SsTable>, drop_tombstones: bool) -> SsTable {
    let mut merged: BTreeMap<Vec<u8>, Entry> = BTreeMap::new();
    // Oldest first, newer overwrites.
    for run in runs.into_iter().rev() {
        for (k, e) in run.entries {
            merged.insert(k, e);
        }
    }
    let entries: Vec<(Vec<u8>, Entry)> = merged
        .into_iter()
        .filter(|(_, e)| !(drop_tombstones && e.is_none()))
        .collect();
    SsTable::from_sorted(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_tree() -> LsmTree {
        LsmTree::new(LsmConfig { memtable_bytes: 256, tier_fanout: 3 })
    }

    fn k(i: u32) -> Vec<u8> {
        format!("key-{i:05}").into_bytes()
    }

    #[test]
    fn put_get_delete() {
        let mut t = LsmTree::default();
        t.put(b"a".to_vec(), b"1".to_vec()).unwrap();
        assert_eq!(t.get(b"a"), Some(b"1".to_vec()));
        t.delete(b"a".to_vec()).unwrap();
        assert_eq!(t.get(b"a"), None);
        assert!(t.put(Vec::new(), b"x".to_vec()).is_err());
    }

    #[test]
    fn reads_cross_flushed_runs() {
        let mut t = small_tree();
        for i in 0..200 {
            t.put(k(i), format!("v{i}").into_bytes()).unwrap();
        }
        assert!(t.stats().flushes > 0, "small memtable must have flushed");
        for i in 0..200 {
            assert_eq!(t.get(&k(i)), Some(format!("v{i}").into_bytes()), "key {i}");
        }
    }

    #[test]
    fn newest_version_wins_across_runs() {
        let mut t = small_tree();
        for round in 0..5 {
            for i in 0..50 {
                t.put(k(i), format!("r{round}").into_bytes()).unwrap();
            }
            t.flush().unwrap();
        }
        for i in 0..50 {
            assert_eq!(t.get(&k(i)), Some(b"r4".to_vec()));
        }
    }

    #[test]
    fn tombstones_shadow_older_runs_until_full_compaction() {
        let mut t = small_tree();
        t.put(k(1), b"v".to_vec()).unwrap();
        t.flush().unwrap();
        t.delete(k(1)).unwrap();
        t.flush().unwrap();
        assert_eq!(t.get(&k(1)), None);
        t.compact_full().unwrap();
        assert_eq!(t.get(&k(1)), None);
        assert_eq!(t.run_count(), 1);
        assert_eq!(t.live_len(), 0);
        // After full compaction the tombstone itself is gone.
        assert_eq!(t.tables[0].len(), 0);
    }

    #[test]
    fn compaction_bounds_run_count() {
        let mut t = small_tree();
        for i in 0..2000 {
            t.put(k(i), vec![b'x'; 16]).unwrap();
        }
        assert!(t.run_count() < 6, "tiered compaction should bound runs, got {}", t.run_count());
        assert!(t.stats().compactions > 0);
        assert_eq!(t.live_len(), 2000);
    }

    #[test]
    fn scan_ranges_and_order() {
        let mut t = small_tree();
        for i in (0..100).rev() {
            t.put(k(i), format!("{i}").into_bytes()).unwrap();
        }
        t.delete(k(50)).unwrap();
        let all = t.scan(None, None);
        assert_eq!(all.len(), 99);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "scan must be sorted");
        let mid = t.scan(Some(&k(10)), Some(&k(20)));
        assert_eq!(mid.len(), 10);
        assert_eq!(mid[0].0, k(10));
        assert_eq!(mid.last().unwrap().0, k(19));
    }

    #[test]
    fn bloom_filter_has_no_false_negatives() {
        let mut b = BloomFilter::with_capacity(1000);
        for i in 0..1000u32 {
            b.insert(&i.to_le_bytes());
        }
        for i in 0..1000u32 {
            assert!(b.may_contain(&i.to_le_bytes()));
        }
        // And a usefully low false-positive rate.
        let fps = (10_000u32..20_000)
            .filter(|i| b.may_contain(&i.to_le_bytes()))
            .count();
        assert!(fps < 500, "false positive rate too high: {fps}/10000");
    }

    #[test]
    fn bloom_skips_are_counted() {
        let mut t = small_tree();
        for i in 0..200 {
            t.put(k(i), b"v".to_vec()).unwrap();
        }
        t.flush().unwrap();
        for i in 10_000..10_100 {
            assert_eq!(t.get(&k(i)), None);
        }
        assert!(t.stats().bloom_skips > 0);
    }
}
