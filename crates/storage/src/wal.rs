//! A redo-only write-ahead log with CRC-checked records and recovery.
//!
//! One WAL serves every model — this is the tutorial's "one system
//! implements fault tolerance" argument for multi-model over polyglot
//! persistence: a MongoDB+Neo4j+Redis deployment has three logs and no
//! common recovery point, while mmdb has exactly one.
//!
//! The log is a sequence of records, each framed as
//! `len: u32 | crc32: u32 | payload`. Write records carry a *domain*
//! string (e.g. `"doc/orders"`, `"graph/knows/edge"`) so recovery can route
//! each write back to the owning model. Recovery replays the writes of
//! committed transactions in log order and discards uncommitted tails —
//! including torn final records, which are detected by the CRC.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, BytesMut};
use parking_lot::Mutex;

use mmdb_types::{Error, Result};

/// Log sequence number: byte offset of a record in the log.
pub type Lsn = u64;

/// Transaction identifier as recorded in the log.
pub type TxId = u64;

/// A single WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Transaction start.
    Begin { txid: TxId },
    /// A write (`value: None` encodes a delete) in some model domain.
    Write {
        /// Owning transaction.
        txid: TxId,
        /// Routing tag, e.g. `"doc/orders"`.
        domain: String,
        /// Encoded key.
        key: Vec<u8>,
        /// Encoded new value; `None` is a delete.
        value: Option<Vec<u8>>,
    },
    /// Transaction commit — the durability point.
    Commit { txid: TxId },
    /// Transaction abort.
    Abort { txid: TxId },
    /// Checkpoint marker: everything before this LSN is already in the
    /// data files, so recovery may start here.
    Checkpoint,
}

const T_BEGIN: u8 = 1;
const T_WRITE: u8 = 2;
const T_COMMIT: u8 = 3;
const T_ABORT: u8 = 4;
const T_CHECKPOINT: u8 = 5;

impl WalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut b = BytesMut::new();
        match self {
            WalRecord::Begin { txid } => {
                b.put_u8(T_BEGIN);
                b.put_u64(*txid);
            }
            WalRecord::Commit { txid } => {
                b.put_u8(T_COMMIT);
                b.put_u64(*txid);
            }
            WalRecord::Abort { txid } => {
                b.put_u8(T_ABORT);
                b.put_u64(*txid);
            }
            WalRecord::Checkpoint => b.put_u8(T_CHECKPOINT),
            WalRecord::Write { txid, domain, key, value } => {
                b.put_u8(T_WRITE);
                b.put_u64(*txid);
                b.put_u32(domain.len() as u32);
                b.put_slice(domain.as_bytes());
                b.put_u32(key.len() as u32);
                b.put_slice(key);
                match value {
                    Some(v) => {
                        b.put_u8(1);
                        b.put_u32(v.len() as u32);
                        b.put_slice(v);
                    }
                    None => b.put_u8(0),
                }
            }
        }
        b.to_vec()
    }

    fn decode(mut buf: &[u8]) -> Result<WalRecord> {
        let corrupt = || Error::Storage("corrupt WAL record".into());
        if buf.is_empty() {
            return Err(corrupt());
        }
        let tag = buf.get_u8();
        let rec = match tag {
            T_BEGIN => WalRecord::Begin { txid: read_u64(&mut buf)? },
            T_COMMIT => WalRecord::Commit { txid: read_u64(&mut buf)? },
            T_ABORT => WalRecord::Abort { txid: read_u64(&mut buf)? },
            T_CHECKPOINT => WalRecord::Checkpoint,
            T_WRITE => {
                let txid = read_u64(&mut buf)?;
                let dlen = read_u32(&mut buf)? as usize;
                if buf.len() < dlen {
                    return Err(corrupt());
                }
                let domain = std::str::from_utf8(&buf[..dlen])
                    .map_err(|_| corrupt())?
                    .to_string();
                buf.advance(dlen);
                let klen = read_u32(&mut buf)? as usize;
                if buf.len() < klen {
                    return Err(corrupt());
                }
                let key = buf[..klen].to_vec();
                buf.advance(klen);
                if buf.is_empty() {
                    return Err(corrupt());
                }
                let has_value = buf.get_u8() == 1;
                let value = if has_value {
                    let vlen = read_u32(&mut buf)? as usize;
                    if buf.len() < vlen {
                        return Err(corrupt());
                    }
                    let v = buf[..vlen].to_vec();
                    buf.advance(vlen);
                    Some(v)
                } else {
                    None
                };
                WalRecord::Write { txid, domain, key, value }
            }
            _ => return Err(corrupt()),
        };
        if !buf.is_empty() {
            return Err(corrupt());
        }
        Ok(rec)
    }
}

fn read_u64(buf: &mut &[u8]) -> Result<u64> {
    if buf.len() < 8 {
        return Err(Error::Storage("corrupt WAL record".into()));
    }
    Ok(buf.get_u64())
}

fn read_u32(buf: &mut &[u8]) -> Result<u32> {
    if buf.len() < 4 {
        return Err(Error::Storage("corrupt WAL record".into()));
    }
    Ok(buf.get_u32())
}

/// CRC-32 (IEEE 802.3 polynomial), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB88320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

enum WalBackend {
    File(File),
    Memory(Vec<u8>),
}

/// The write-ahead log.
pub struct Wal {
    inner: Mutex<WalInner>,
    /// Byte offset up to which the log is known durable: the tail as of
    /// the last successful [`Wal::sync`]. Replication streams are capped
    /// here so appended-but-unsynced records (which a crash could still
    /// erase) never reach a replica or change-feed subscriber.
    durable_lsn: std::sync::atomic::AtomicU64,
}

struct WalInner {
    backend: WalBackend,
    next_lsn: Lsn,
}

impl Wal {
    /// Open (or create) a file-backed WAL, appending after existing content.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path.as_ref())
            .map_err(|e| Error::Storage(format!("open wal {:?}: {e}", path.as_ref())))?;
        let len = file.metadata().map_err(|e| Error::Storage(e.to_string()))?.len();
        Ok(Wal {
            inner: Mutex::new(WalInner { backend: WalBackend::File(file), next_lsn: len }),
            // Everything already in the file survived a previous run's
            // syncs (recovery truncated any torn tail before this open).
            durable_lsn: std::sync::atomic::AtomicU64::new(len),
        })
    }

    /// An in-memory WAL (tests; volatile databases).
    pub fn in_memory() -> Self {
        Wal {
            inner: Mutex::new(WalInner { backend: WalBackend::Memory(Vec::new()), next_lsn: 0 }),
            durable_lsn: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Append one record, returning its LSN. Not yet durable — call
    /// [`Wal::sync`] (commit does).
    pub fn append(&self, record: &WalRecord) -> Result<Lsn> {
        let payload = record.encode();
        let mut framed = Vec::with_capacity(payload.len() + 8);
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&crc32(&payload).to_le_bytes());
        framed.extend_from_slice(&payload);
        // Failpoint `wal.append`: `short` tears the record mid-frame —
        // the bytes land in the log, so recovery must detect and truncate
        // the torn tail.
        let write_len = match mmdb_fault::eval("wal.append") {
            mmdb_fault::Decision::Proceed => framed.len(),
            mmdb_fault::Decision::Fail(msg) => {
                return Err(Error::Storage(format!("wal append: {msg}")))
            }
            mmdb_fault::Decision::Short => framed.len() / 2,
        };
        let mut inner = self.inner.lock();
        let lsn = inner.next_lsn;
        match &mut inner.backend {
            WalBackend::File(f) => f
                .write_all(&framed[..write_len])
                .map_err(|e| Error::Storage(format!("wal append: {e}")))?,
            WalBackend::Memory(v) => v.extend_from_slice(&framed[..write_len]),
        }
        inner.next_lsn += write_len as u64;
        if write_len < framed.len() {
            return Err(Error::Storage("wal append: torn write (injected)".into()));
        }
        Ok(lsn)
    }

    /// Append a run of records as one contiguous write, returning for
    /// each record the LSN just past it (the `next_lsn` a tailer would
    /// see). This is the group-commit path: a commit leader frames every
    /// transaction of its batch into one buffer and lands it with a
    /// single backend write, so the batch occupies one gap-free LSN run
    /// that no concurrent append can interleave.
    ///
    /// Failure atomicity mirrors [`Wal::append`]: an injected `fail` on
    /// `wal.append` rejects the whole batch before any byte lands, and
    /// an injected `short` tears the log at the affected record's frame
    /// (everything framed before it still lands, recovery truncates).
    pub fn append_batch(&self, records: &[WalRecord]) -> Result<Vec<Lsn>> {
        if records.is_empty() {
            return Ok(Vec::new());
        }
        let mut buf = Vec::new();
        let mut ends = Vec::with_capacity(records.len());
        let mut torn = false;
        for record in records {
            let payload = record.encode();
            // The same `wal.append` failpoint guards every record of the
            // batch, so existing crash schedules (`1in5`, `short`) reach
            // mid-batch offsets too.
            match mmdb_fault::eval("wal.append") {
                mmdb_fault::Decision::Proceed => {}
                mmdb_fault::Decision::Fail(msg) => {
                    return Err(Error::Storage(format!("wal append: {msg}")))
                }
                mmdb_fault::Decision::Short => torn = true,
            }
            let frame_start = buf.len();
            buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            buf.extend_from_slice(&crc32(&payload).to_le_bytes());
            buf.extend_from_slice(&payload);
            if torn {
                // Same tear as the single-record path: half the frame
                // lands, the rest of the batch never gets framed.
                buf.truncate(frame_start + (payload.len() + 8) / 2);
                break;
            }
            ends.push(buf.len() as u64);
        }
        let mut inner = self.inner.lock();
        let base = inner.next_lsn;
        match &mut inner.backend {
            WalBackend::File(f) => f
                .write_all(&buf)
                .map_err(|e| Error::Storage(format!("wal append: {e}")))?,
            WalBackend::Memory(v) => v.extend_from_slice(&buf),
        }
        inner.next_lsn += buf.len() as u64;
        if torn {
            return Err(Error::Storage("wal append: torn write (injected)".into()));
        }
        Ok(ends.into_iter().map(|e| base + e).collect())
    }

    /// Durably flush appended records.
    pub fn sync(&self) -> Result<()> {
        // Failpoint `wal.sync`: `delay(ms)` models a slow fsync, `error`
        // a failed one.
        mmdb_fault::fail_point!("wal.sync", |msg| Error::Storage(format!("wal fsync: {msg}")));
        let inner = self.inner.lock();
        if let WalBackend::File(f) = &inner.backend {
            f.sync_data().map_err(|e| Error::Storage(format!("wal fsync: {e}")))?;
        }
        // Everything appended before this sync is now durable. Published
        // under the inner lock so the watermark never races past a
        // concurrent append it did not cover.
        self.durable_lsn.fetch_max(inner.next_lsn, std::sync::atomic::Ordering::SeqCst);
        Ok(())
    }

    /// Next LSN to be assigned (== current log length in bytes).
    pub fn tail_lsn(&self) -> Lsn {
        self.inner.lock().next_lsn
    }

    /// The durable tail: the log length as of the last successful
    /// [`Wal::sync`]. Records at or past this offset may still be lost
    /// to a crash, so replication only ships below it.
    pub fn durable_lsn(&self) -> Lsn {
        self.durable_lsn.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Read back the whole log (in-memory backend) — test helper.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let inner = self.inner.lock();
        match &inner.backend {
            WalBackend::Memory(v) => v.clone(),
            WalBackend::File(_) => Vec::new(),
        }
    }

    /// Tail the log: read up to `max_records` CRC-verified records starting
    /// at byte offset `from` (an LSN previously returned by [`Wal::append`],
    /// [`Wal::tail_lsn`] or a prior tail read). This is the replication
    /// feed — a primary streams the result to replicas and change-feed
    /// subscribers, who resume from the last `next_lsn` they saw.
    ///
    /// The scan stops cleanly (no error) at a torn or partial tail record,
    /// exactly like recovery: such bytes only exist transiently between a
    /// failed append and the crash/truncate that follows, and must never be
    /// shipped. Reads never move the append cursor.
    pub fn read_records_from(&self, from: Lsn, max_records: usize) -> Result<Vec<TailedRecord>> {
        /// Per-call read budget: bounds memory when a replica is far
        /// behind. A record larger than the chunk is re-read at its exact
        /// size below, so oversized records slow tailing down rather than
        /// stall it.
        const TAIL_CHUNK: usize = 1 << 20;

        let inner = self.inner.lock();
        let end = inner.next_lsn;
        if from >= end || max_records == 0 {
            return Ok(Vec::new());
        }
        let read_chunk = |inner: &WalInner, want: usize| -> Result<Vec<u8>> {
            match &inner.backend {
                WalBackend::Memory(v) => {
                    Ok(v[from as usize..from as usize + want].to_vec())
                }
                WalBackend::File(f) => {
                    use std::os::unix::fs::FileExt;
                    let mut b = vec![0u8; want];
                    let n = f
                        .read_at(&mut b, from)
                        .map_err(|e| Error::Storage(format!("wal tail read: {e}")))?;
                    b.truncate(n);
                    Ok(b)
                }
            }
        };
        let remaining = (end - from) as usize;
        let mut buf = read_chunk(&inner, remaining.min(TAIL_CHUNK))?;
        // A single record can exceed the chunk (one huge value): re-read
        // with exactly that record's size so the cursor always advances.
        if buf.len() >= 8 {
            let first_len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
            if 8 + first_len > buf.len() && 8 + first_len <= remaining {
                buf = read_chunk(&inner, 8 + first_len)?;
            }
        }
        drop(inner);

        let mut out = Vec::new();
        let mut off = 0usize;
        while out.len() < max_records && buf.len() - off >= 8 {
            let len = u32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
                as usize;
            let crc =
                u32::from_le_bytes([buf[off + 4], buf[off + 5], buf[off + 6], buf[off + 7]]);
            if buf.len() - off < 8 + len {
                break; // partial frame: either the chunk boundary or a torn tail
            }
            let payload = &buf[off + 8..off + 8 + len];
            if crc32(payload) != crc {
                break; // corrupt tail: stop where recovery would
            }
            let record = match WalRecord::decode(payload) {
                Ok(r) => r,
                Err(_) => break,
            };
            out.push(TailedRecord {
                lsn: from + off as u64,
                next_lsn: from + (off + 8 + len) as u64,
                record,
            });
            off += 8 + len;
        }
        Ok(out)
    }
}

/// One record surfaced by [`Wal::read_records_from`], with its position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailedRecord {
    /// Byte offset where this record's frame starts.
    pub lsn: Lsn,
    /// Byte offset just past this record — resume tailing here.
    pub next_lsn: Lsn,
    /// The decoded record.
    pub record: WalRecord,
}

/// One redo operation surfaced by recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedoOp {
    /// Committing transaction.
    pub txid: TxId,
    /// Model routing tag.
    pub domain: String,
    /// Encoded key.
    pub key: Vec<u8>,
    /// New value; `None` is a delete.
    pub value: Option<Vec<u8>>,
}

/// Outcome of scanning a log for recovery.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Redo operations of committed transactions, in log order, starting
    /// at the last checkpoint.
    pub redo: Vec<RedoOp>,
    /// Transactions that began but never committed (work to discard).
    pub losers: Vec<TxId>,
    /// Records dropped because the log ended mid-record (torn write).
    pub torn_tail: bool,
    /// Byte length of the valid log prefix. When `torn_tail` is set the
    /// caller should truncate the log to this length before appending, or
    /// later appends would hide behind the corruption and be lost by the
    /// next recovery.
    pub valid_len: u64,
}

/// Scan raw log bytes and compute the redo set.
pub fn recover_from_bytes(full: &[u8]) -> Recovery {
    let mut data = full;
    let mut records: Vec<WalRecord> = Vec::new();
    let mut torn = false;
    let mut valid_len = 0u64;
    while data.len() >= 8 {
        let len = u32::from_le_bytes([data[0], data[1], data[2], data[3]]) as usize;
        let crc = u32::from_le_bytes([data[4], data[5], data[6], data[7]]);
        if data.len() < 8 + len {
            torn = true;
            break;
        }
        let payload = &data[8..8 + len];
        if crc32(payload) != crc {
            // Corrupt record: everything after it is untrustworthy.
            torn = true;
            break;
        }
        match WalRecord::decode(payload) {
            Ok(r) => records.push(r),
            Err(_) => {
                torn = true;
                break;
            }
        }
        data = &data[8 + len..];
        valid_len += 8 + len as u64;
    }
    if !data.is_empty() && data.len() < 8 {
        torn = true;
    }

    // Start replay at the last checkpoint.
    let start = records
        .iter()
        .rposition(|r| matches!(r, WalRecord::Checkpoint))
        .map(|i| i + 1)
        .unwrap_or(0);

    let mut committed = std::collections::HashSet::new();
    let mut seen = std::collections::HashSet::new();
    let mut aborted = std::collections::HashSet::new();
    for r in &records[start..] {
        match r {
            WalRecord::Begin { txid } => {
                seen.insert(*txid);
            }
            WalRecord::Commit { txid } => {
                committed.insert(*txid);
            }
            WalRecord::Abort { txid } => {
                aborted.insert(*txid);
            }
            _ => {}
        }
    }
    let mut redo = Vec::new();
    for r in &records[start..] {
        if let WalRecord::Write { txid, domain, key, value } = r {
            if committed.contains(txid) {
                redo.push(RedoOp {
                    txid: *txid,
                    domain: domain.clone(),
                    key: key.clone(),
                    value: value.clone(),
                });
            }
        }
    }
    let losers = seen
        .into_iter()
        .filter(|t| !committed.contains(t) && !aborted.contains(t))
        .collect();
    Recovery { redo, losers, torn_tail: torn, valid_len }
}

/// Recover from a file-backed log.
pub fn recover_from_file(path: impl AsRef<Path>) -> Result<Recovery> {
    let mut data = Vec::new();
    match File::open(path.as_ref()) {
        Ok(mut f) => {
            f.read_to_end(&mut data)
                .map_err(|e| Error::Storage(format!("read wal: {e}")))?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(Error::Storage(format!("open wal: {e}"))),
    }
    Ok(recover_from_bytes(&data))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(txid: TxId, key: &str, val: Option<&str>) -> WalRecord {
        WalRecord::Write {
            txid,
            domain: "doc/orders".into(),
            key: key.as_bytes().to_vec(),
            value: val.map(|v| v.as_bytes().to_vec()),
        }
    }

    #[test]
    fn record_encode_decode_roundtrip() {
        for r in [
            WalRecord::Begin { txid: 7 },
            WalRecord::Commit { txid: 7 },
            WalRecord::Abort { txid: 9 },
            WalRecord::Checkpoint,
            w(7, "k1", Some("v1")),
            w(7, "k2", None),
        ] {
            assert_eq!(WalRecord::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn crc32_known_vector() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn committed_writes_are_redone_uncommitted_discarded() {
        let wal = Wal::in_memory();
        wal.append(&WalRecord::Begin { txid: 1 }).unwrap();
        wal.append(&w(1, "a", Some("1"))).unwrap();
        wal.append(&WalRecord::Begin { txid: 2 }).unwrap();
        wal.append(&w(2, "b", Some("2"))).unwrap();
        wal.append(&WalRecord::Commit { txid: 1 }).unwrap();
        // txn 2 never commits.
        let rec = recover_from_bytes(&wal.snapshot_bytes());
        assert_eq!(rec.redo.len(), 1);
        assert_eq!(rec.redo[0].key, b"a");
        assert_eq!(rec.losers, vec![2]);
        assert!(!rec.torn_tail);
    }

    #[test]
    fn aborted_txn_is_not_a_loser() {
        let wal = Wal::in_memory();
        wal.append(&WalRecord::Begin { txid: 3 }).unwrap();
        wal.append(&w(3, "x", Some("v"))).unwrap();
        wal.append(&WalRecord::Abort { txid: 3 }).unwrap();
        let rec = recover_from_bytes(&wal.snapshot_bytes());
        assert!(rec.redo.is_empty());
        assert!(rec.losers.is_empty());
    }

    #[test]
    fn checkpoint_truncates_replay() {
        let wal = Wal::in_memory();
        wal.append(&WalRecord::Begin { txid: 1 }).unwrap();
        wal.append(&w(1, "old", Some("x"))).unwrap();
        wal.append(&WalRecord::Commit { txid: 1 }).unwrap();
        wal.append(&WalRecord::Checkpoint).unwrap();
        wal.append(&WalRecord::Begin { txid: 2 }).unwrap();
        wal.append(&w(2, "new", Some("y"))).unwrap();
        wal.append(&WalRecord::Commit { txid: 2 }).unwrap();
        let rec = recover_from_bytes(&wal.snapshot_bytes());
        assert_eq!(rec.redo.len(), 1);
        assert_eq!(rec.redo[0].key, b"new");
    }

    #[test]
    fn torn_tail_is_detected_and_dropped() {
        let wal = Wal::in_memory();
        wal.append(&WalRecord::Begin { txid: 1 }).unwrap();
        wal.append(&w(1, "a", Some("1"))).unwrap();
        wal.append(&WalRecord::Commit { txid: 1 }).unwrap();
        let mut bytes = wal.snapshot_bytes();
        let full = recover_from_bytes(&bytes);
        assert_eq!(full.redo.len(), 1);
        // Simulate a crash mid-write of a subsequent record.
        let good_len = bytes.len() as u64;
        bytes.extend_from_slice(&[20, 0, 0, 0, 0xAA, 0xBB]);
        let rec = recover_from_bytes(&bytes);
        assert!(rec.torn_tail);
        assert_eq!(rec.redo.len(), 1, "prefix remains recoverable");
        assert_eq!(rec.valid_len, good_len, "valid_len marks the truncation point");
        assert!(!full.torn_tail);
        assert_eq!(full.valid_len, good_len);
    }

    #[test]
    fn corrupt_crc_stops_replay_at_corruption() {
        let wal = Wal::in_memory();
        wal.append(&WalRecord::Begin { txid: 1 }).unwrap();
        wal.append(&w(1, "a", Some("1"))).unwrap();
        wal.append(&WalRecord::Commit { txid: 1 }).unwrap();
        let mut bytes = wal.snapshot_bytes();
        // Flip a payload byte of the *middle* record.
        let n = bytes.len();
        bytes[n / 2] ^= 0xFF;
        let rec = recover_from_bytes(&bytes);
        assert!(rec.torn_tail);
        // The commit follows the corruption, so nothing can be redone.
        assert!(rec.redo.is_empty());
    }

    #[test]
    fn file_backed_wal_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("mmdb-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.wal");
        let _ = std::fs::remove_file(&path);
        {
            let wal = Wal::open(&path).unwrap();
            wal.append(&WalRecord::Begin { txid: 1 }).unwrap();
            wal.append(&w(1, "persist", Some("yes"))).unwrap();
            wal.append(&WalRecord::Commit { txid: 1 }).unwrap();
            wal.sync().unwrap();
        }
        let rec = recover_from_file(&path).unwrap();
        assert_eq!(rec.redo.len(), 1);
        assert_eq!(rec.redo[0].domain, "doc/orders");
        // Appending after reopen extends, not truncates.
        {
            let wal = Wal::open(&path).unwrap();
            assert!(wal.tail_lsn() > 0);
            wal.append(&WalRecord::Begin { txid: 2 }).unwrap();
            wal.append(&w(2, "more", Some("data"))).unwrap();
            wal.append(&WalRecord::Commit { txid: 2 }).unwrap();
            wal.sync().unwrap();
        }
        let rec = recover_from_file(&path).unwrap();
        assert_eq!(rec.redo.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn recovery_of_missing_file_is_empty() {
        let rec = recover_from_file("/nonexistent/path/to.wal").unwrap();
        assert!(rec.redo.is_empty());
        assert!(!rec.torn_tail);
    }

    #[test]
    fn tailing_reads_records_and_resumes_by_lsn() {
        let wal = Wal::in_memory();
        let l1 = wal.append(&WalRecord::Begin { txid: 1 }).unwrap();
        wal.append(&w(1, "a", Some("1"))).unwrap();
        wal.append(&WalRecord::Commit { txid: 1 }).unwrap();
        assert_eq!(l1, 0);

        let all = wal.read_records_from(0, usize::MAX).unwrap();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].record, WalRecord::Begin { txid: 1 });
        assert_eq!(all[2].record, WalRecord::Commit { txid: 1 });
        assert_eq!(all[2].next_lsn, wal.tail_lsn());

        // Resume from a mid-log LSN: only subsequent records arrive.
        let rest = wal.read_records_from(all[0].next_lsn, usize::MAX).unwrap();
        assert_eq!(rest.len(), 2);
        assert_eq!(rest[0].lsn, all[1].lsn);

        // A tail read at the end is empty, not an error.
        assert!(wal.read_records_from(wal.tail_lsn(), usize::MAX).unwrap().is_empty());

        // max_records bounds the batch; next_lsn chains across batches.
        let one = wal.read_records_from(0, 1).unwrap();
        assert_eq!(one.len(), 1);
        let two = wal.read_records_from(one[0].next_lsn, 1).unwrap();
        assert_eq!(two[0].record, all[1].record);
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn tailing_stops_cleanly_at_a_torn_tail() {
        mmdb_fault::clear_all();
        let wal = Wal::in_memory();
        wal.append(&WalRecord::Begin { txid: 1 }).unwrap();
        wal.append(&WalRecord::Commit { txid: 1 }).unwrap();

        // Tear the next record mid-frame: the bytes land in the log, so the
        // tail scan must stop at them without erroring — exactly where
        // recovery would truncate.
        mmdb_fault::set("wal.append", "short").unwrap();
        assert!(wal.append(&w(1, "torn", Some("x"))).is_err());
        mmdb_fault::clear_all();

        let tailed = wal.read_records_from(0, usize::MAX).unwrap();
        assert_eq!(tailed.len(), 2, "only intact records are served");
        assert!(tailed[1].next_lsn < wal.tail_lsn(), "torn bytes are never shipped");
        let rec = recover_from_bytes(&wal.snapshot_bytes());
        assert!(rec.torn_tail);
        assert_eq!(rec.valid_len, tailed[1].next_lsn, "tail stops where recovery truncates");
    }

    #[test]
    fn batch_append_is_contiguous_and_byte_identical_to_serial() {
        // The same records appended one-by-one and as a batch must
        // produce identical bytes and identical per-record offsets —
        // recovery and tailing cannot tell the two paths apart.
        let records = vec![
            WalRecord::Begin { txid: 1 },
            w(1, "a", Some("1")),
            WalRecord::Commit { txid: 1 },
            WalRecord::Begin { txid: 2 },
            w(2, "b", None),
            WalRecord::Commit { txid: 2 },
        ];
        let serial = Wal::in_memory();
        for r in &records {
            serial.append(r).unwrap();
        }
        let batched = Wal::in_memory();
        let ends = batched.append_batch(&records).unwrap();
        assert_eq!(serial.snapshot_bytes(), batched.snapshot_bytes());
        assert_eq!(ends.len(), records.len());
        let tailed = batched.read_records_from(0, usize::MAX).unwrap();
        for (t, end) in tailed.iter().zip(&ends) {
            assert_eq!(t.next_lsn, *end, "per-record end offsets line up with tailing");
        }
        assert_eq!(*ends.last().unwrap(), batched.tail_lsn());
        assert!(batched.append_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn sync_advances_the_durable_watermark() {
        let wal = Wal::in_memory();
        assert_eq!(wal.durable_lsn(), 0);
        wal.append(&WalRecord::Begin { txid: 1 }).unwrap();
        assert_eq!(wal.durable_lsn(), 0, "appended but unsynced is not durable");
        wal.sync().unwrap();
        assert_eq!(wal.durable_lsn(), wal.tail_lsn());
        wal.append_batch(&[w(1, "k", Some("v")), WalRecord::Commit { txid: 1 }]).unwrap();
        assert!(wal.durable_lsn() < wal.tail_lsn());
        wal.sync().unwrap();
        assert_eq!(wal.durable_lsn(), wal.tail_lsn());
    }

    #[test]
    fn reopened_wal_treats_existing_content_as_durable() {
        let dir = std::env::temp_dir().join(format!("mmdb-wal-durable-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("durable.wal");
        let _ = std::fs::remove_file(&path);
        {
            let wal = Wal::open(&path).unwrap();
            wal.append(&WalRecord::Begin { txid: 1 }).unwrap();
            wal.append(&WalRecord::Commit { txid: 1 }).unwrap();
            wal.sync().unwrap();
        }
        let wal = Wal::open(&path).unwrap();
        assert_eq!(wal.durable_lsn(), wal.tail_lsn(), "recovered prefix is durable history");
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn batch_append_failures_are_atomic_or_tear_like_serial_appends() {
        // `fail`: the whole batch is rejected before any byte lands.
        mmdb_fault::clear_all();
        let wal = Wal::in_memory();
        wal.append(&WalRecord::Begin { txid: 1 }).unwrap();
        wal.append(&WalRecord::Commit { txid: 1 }).unwrap();
        let intact = wal.snapshot_bytes();
        mmdb_fault::set("wal.append", "error").unwrap();
        assert!(wal
            .append_batch(&[WalRecord::Begin { txid: 2 }, WalRecord::Commit { txid: 2 }])
            .is_err());
        assert_eq!(wal.snapshot_bytes(), intact, "a failed batch leaves no trace");

        // `short`: the armed record tears mid-frame and the rest of the
        // batch is never framed; recovery and tailing both stop at the
        // intact prefix.
        mmdb_fault::set("wal.append", "short").unwrap();
        assert!(wal
            .append_batch(&[
                WalRecord::Begin { txid: 10 },
                w(10, "k", Some("v")),
                WalRecord::Commit { txid: 10 },
            ])
            .is_err());
        mmdb_fault::clear_all();
        let rec = recover_from_bytes(&wal.snapshot_bytes());
        assert!(rec.torn_tail);
        let tailed = wal.read_records_from(0, usize::MAX).unwrap();
        assert_eq!(
            tailed.last().unwrap().next_lsn,
            rec.valid_len,
            "tailing stops exactly where recovery truncates"
        );
    }

    #[test]
    fn tailing_works_on_a_file_backed_wal() {
        let dir = std::env::temp_dir().join(format!("mmdb-wal-tail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tail.wal");
        let _ = std::fs::remove_file(&path);
        let wal = Wal::open(&path).unwrap();
        wal.append(&WalRecord::Begin { txid: 5 }).unwrap();
        wal.append(&w(5, "k", Some("v"))).unwrap();
        let commit_lsn = wal.append(&WalRecord::Commit { txid: 5 }).unwrap();
        wal.sync().unwrap();

        let tailed = wal.read_records_from(0, usize::MAX).unwrap();
        assert_eq!(tailed.len(), 3);
        assert_eq!(tailed[2].lsn, commit_lsn);
        assert_eq!(tailed[2].next_lsn, wal.tail_lsn());

        // Tailing does not disturb the append cursor.
        wal.append(&WalRecord::Checkpoint).unwrap();
        let more = wal.read_records_from(tailed[2].next_lsn, usize::MAX).unwrap();
        assert_eq!(more.len(), 1);
        assert_eq!(more[0].record, WalRecord::Checkpoint);
        let _ = std::fs::remove_file(&path);
    }
}
