//! A redo-only write-ahead log with CRC-checked records and recovery.
//!
//! One WAL serves every model — this is the tutorial's "one system
//! implements fault tolerance" argument for multi-model over polyglot
//! persistence: a MongoDB+Neo4j+Redis deployment has three logs and no
//! common recovery point, while mmdb has exactly one.
//!
//! The log is a sequence of records, each framed as
//! `len: u32 | crc32: u32 | payload`. Write records carry a *domain*
//! string (e.g. `"doc/orders"`, `"graph/knows/edge"`) so recovery can route
//! each write back to the owning model. Recovery replays the writes of
//! committed transactions in log order and discards uncommitted tails —
//! including torn final records, which are detected by the CRC.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut, BytesMut};
use parking_lot::Mutex;

use mmdb_types::{Error, Result};

/// Log sequence number: byte offset of a record in the log.
pub type Lsn = u64;

/// Transaction identifier as recorded in the log.
pub type TxId = u64;

/// A single WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Transaction start.
    Begin { txid: TxId },
    /// A write (`value: None` encodes a delete) in some model domain.
    Write {
        /// Owning transaction.
        txid: TxId,
        /// Routing tag, e.g. `"doc/orders"`.
        domain: String,
        /// Encoded key.
        key: Vec<u8>,
        /// Encoded new value; `None` is a delete.
        value: Option<Vec<u8>>,
    },
    /// Transaction commit — the durability point.
    Commit { txid: TxId },
    /// Transaction abort.
    Abort { txid: TxId },
    /// Checkpoint marker: a consistent snapshot of all engine state as
    /// of `snapshot_lsn` exists (in `mmdb.snapshot`), so recovery may
    /// start here and the log prefix below `snapshot_lsn` may be
    /// truncated. Replicas react by checkpointing locally.
    Checkpoint {
        /// The LSN the snapshot captures — every record below it is
        /// reflected in the snapshot, no record at or past it is.
        snapshot_lsn: Lsn,
    },
}

const T_BEGIN: u8 = 1;
const T_WRITE: u8 = 2;
const T_COMMIT: u8 = 3;
const T_ABORT: u8 = 4;
const T_CHECKPOINT: u8 = 5;

impl WalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut b = BytesMut::new();
        match self {
            WalRecord::Begin { txid } => {
                b.put_u8(T_BEGIN);
                b.put_u64(*txid);
            }
            WalRecord::Commit { txid } => {
                b.put_u8(T_COMMIT);
                b.put_u64(*txid);
            }
            WalRecord::Abort { txid } => {
                b.put_u8(T_ABORT);
                b.put_u64(*txid);
            }
            WalRecord::Checkpoint { snapshot_lsn } => {
                b.put_u8(T_CHECKPOINT);
                b.put_u64(*snapshot_lsn);
            }
            WalRecord::Write { txid, domain, key, value } => {
                b.put_u8(T_WRITE);
                b.put_u64(*txid);
                b.put_u32(domain.len() as u32);
                b.put_slice(domain.as_bytes());
                b.put_u32(key.len() as u32);
                b.put_slice(key);
                match value {
                    Some(v) => {
                        b.put_u8(1);
                        b.put_u32(v.len() as u32);
                        b.put_slice(v);
                    }
                    None => b.put_u8(0),
                }
            }
        }
        b.to_vec()
    }

    fn decode(mut buf: &[u8]) -> Result<WalRecord> {
        let corrupt = || Error::Storage("corrupt WAL record".into());
        if buf.is_empty() {
            return Err(corrupt());
        }
        let tag = buf.get_u8();
        let rec = match tag {
            T_BEGIN => WalRecord::Begin { txid: read_u64(&mut buf)? },
            T_COMMIT => WalRecord::Commit { txid: read_u64(&mut buf)? },
            T_ABORT => WalRecord::Abort { txid: read_u64(&mut buf)? },
            // Pre-truncation logs carried a bare checkpoint marker with
            // no payload; tolerate it as "snapshot at LSN 0".
            T_CHECKPOINT if buf.is_empty() => WalRecord::Checkpoint { snapshot_lsn: 0 },
            T_CHECKPOINT => WalRecord::Checkpoint { snapshot_lsn: read_u64(&mut buf)? },
            T_WRITE => {
                let txid = read_u64(&mut buf)?;
                let dlen = read_u32(&mut buf)? as usize;
                if buf.len() < dlen {
                    return Err(corrupt());
                }
                let domain = std::str::from_utf8(&buf[..dlen])
                    .map_err(|_| corrupt())?
                    .to_string();
                buf.advance(dlen);
                let klen = read_u32(&mut buf)? as usize;
                if buf.len() < klen {
                    return Err(corrupt());
                }
                let key = buf[..klen].to_vec();
                buf.advance(klen);
                if buf.is_empty() {
                    return Err(corrupt());
                }
                let has_value = buf.get_u8() == 1;
                let value = if has_value {
                    let vlen = read_u32(&mut buf)? as usize;
                    if buf.len() < vlen {
                        return Err(corrupt());
                    }
                    let v = buf[..vlen].to_vec();
                    buf.advance(vlen);
                    Some(v)
                } else {
                    None
                };
                WalRecord::Write { txid, domain, key, value }
            }
            _ => return Err(corrupt()),
        };
        if !buf.is_empty() {
            return Err(corrupt());
        }
        Ok(rec)
    }
}

fn read_u64(buf: &mut &[u8]) -> Result<u64> {
    if buf.len() < 8 {
        return Err(Error::Storage("corrupt WAL record".into()));
    }
    Ok(buf.get_u64())
}

fn read_u32(buf: &mut &[u8]) -> Result<u32> {
    if buf.len() < 4 {
        return Err(Error::Storage("corrupt WAL record".into()));
    }
    Ok(buf.get_u32())
}

/// CRC-32 (IEEE 802.3 polynomial), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB88320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

enum WalBackend {
    File(File),
    Memory(Vec<u8>),
}

/// Magic opening a truncated ("v2") WAL file. The first four bytes are
/// `0xFFFFFFFF` — an impossible frame length, so a header can never be
/// confused with a legacy headerless log whose first record it would
/// otherwise shadow. The header is [`WAL_HEADER_LEN`] bytes: the magic
/// followed by the file's base LSN as `u64` little-endian.
pub const WAL2_MAGIC: [u8; 8] = [0xFF, 0xFF, 0xFF, 0xFF, b'W', b'A', b'L', b'2'];

/// Size of the v2 file header (magic + base LSN).
pub const WAL_HEADER_LEN: u64 = 16;

/// Parse a v2 header from the start of a log file's bytes. Returns the
/// base LSN when the magic matches, `None` for legacy headerless logs.
pub fn parse_wal_header(data: &[u8]) -> Option<Lsn> {
    if data.len() >= WAL_HEADER_LEN as usize && data[..8] == WAL2_MAGIC {
        Some(u64::from_le_bytes(data[8..16].try_into().unwrap_or([0; 8])))
    } else {
        None
    }
}

fn encode_wal_header(base_lsn: Lsn) -> [u8; WAL_HEADER_LEN as usize] {
    let mut h = [0u8; WAL_HEADER_LEN as usize];
    h[..8].copy_from_slice(&WAL2_MAGIC);
    h[8..].copy_from_slice(&base_lsn.to_le_bytes());
    h
}

/// The write-ahead log.
///
/// LSNs are *logical*: they keep counting monotonically across
/// [`Wal::truncate_below`], which rewrites the file to hold only the
/// suffix at or past a checkpoint horizon. A truncated file starts with
/// a [`WAL2_MAGIC`] header recording its base LSN, and
/// `physical offset = header + (lsn - base)`. Fresh logs are headerless
/// with base 0, so pre-truncation files stay readable unchanged.
pub struct Wal {
    inner: Mutex<WalInner>,
    /// The file path for file-backed logs (`None` in memory) — needed by
    /// [`Wal::truncate_below`] to rewrite-and-rename in place.
    path: Option<PathBuf>,
    /// Logical LSN up to which the log is known durable: the tail as of
    /// the last successful [`Wal::sync`]. Replication streams are capped
    /// here so appended-but-unsynced records (which a crash could still
    /// erase) never reach a replica or change-feed subscriber.
    durable_lsn: std::sync::atomic::AtomicU64,
}

struct WalInner {
    backend: WalBackend,
    /// Next logical LSN to be assigned.
    next_lsn: Lsn,
    /// Logical LSN of the first byte stored in the backend: the last
    /// truncation horizon (0 until the first truncation).
    base_lsn: Lsn,
    /// Physical offset where record data starts: [`WAL_HEADER_LEN`] for
    /// truncated files, 0 for legacy files and the memory backend.
    data_start: u64,
}

impl WalInner {
    /// Physical backend offset of logical LSN `lsn`.
    fn physical(&self, lsn: Lsn) -> u64 {
        self.data_start + (lsn - self.base_lsn)
    }
}

impl Wal {
    /// Open (or create) a file-backed WAL, appending after existing content.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path.as_ref())
            .map_err(|e| Error::Storage(format!("open wal {:?}: {e}", path.as_ref())))?;
        let len = file.metadata().map_err(|e| Error::Storage(e.to_string()))?.len();
        // A truncated log opens with the v2 header; its records' logical
        // LSNs continue from the recorded base.
        let mut header = [0u8; WAL_HEADER_LEN as usize];
        let got = {
            use std::os::unix::fs::FileExt;
            file.read_at(&mut header, 0).map_err(|e| Error::Storage(e.to_string()))?
        };
        let (base_lsn, data_start) = match parse_wal_header(&header[..got]) {
            Some(base) => (base, WAL_HEADER_LEN),
            None => (0, 0),
        };
        let next_lsn = base_lsn + len.saturating_sub(data_start);
        Ok(Wal {
            inner: Mutex::new(WalInner {
                backend: WalBackend::File(file),
                next_lsn,
                base_lsn,
                data_start,
            }),
            path: Some(path.as_ref().to_path_buf()),
            // Everything already in the file survived a previous run's
            // syncs (recovery truncated any torn tail before this open).
            durable_lsn: std::sync::atomic::AtomicU64::new(next_lsn),
        })
    }

    /// An in-memory WAL (tests; volatile databases).
    pub fn in_memory() -> Self {
        Wal {
            inner: Mutex::new(WalInner {
                backend: WalBackend::Memory(Vec::new()),
                next_lsn: 0,
                base_lsn: 0,
                data_start: 0,
            }),
            path: None,
            durable_lsn: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Append one record, returning its LSN. Not yet durable — call
    /// [`Wal::sync`] (commit does).
    pub fn append(&self, record: &WalRecord) -> Result<Lsn> {
        let payload = record.encode();
        let mut framed = Vec::with_capacity(payload.len() + 8);
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&crc32(&payload).to_le_bytes());
        framed.extend_from_slice(&payload);
        // Failpoint `wal.append`: `short` tears the record mid-frame —
        // the bytes land in the log, so recovery must detect and truncate
        // the torn tail.
        let write_len = match mmdb_fault::eval("wal.append") {
            mmdb_fault::Decision::Proceed => framed.len(),
            mmdb_fault::Decision::Fail(msg) => {
                return Err(Error::Storage(format!("wal append: {msg}")))
            }
            mmdb_fault::Decision::Short => framed.len() / 2,
        };
        let mut inner = self.inner.lock();
        let lsn = inner.next_lsn;
        match &mut inner.backend {
            WalBackend::File(f) => f
                .write_all(&framed[..write_len])
                .map_err(|e| Error::Storage(format!("wal append: {e}")))?,
            WalBackend::Memory(v) => v.extend_from_slice(&framed[..write_len]),
        }
        inner.next_lsn += write_len as u64;
        if write_len < framed.len() {
            return Err(Error::Storage("wal append: torn write (injected)".into()));
        }
        Ok(lsn)
    }

    /// Append a run of records as one contiguous write, returning for
    /// each record the LSN just past it (the `next_lsn` a tailer would
    /// see). This is the group-commit path: a commit leader frames every
    /// transaction of its batch into one buffer and lands it with a
    /// single backend write, so the batch occupies one gap-free LSN run
    /// that no concurrent append can interleave.
    ///
    /// Failure atomicity mirrors [`Wal::append`]: an injected `fail` on
    /// `wal.append` rejects the whole batch before any byte lands, and
    /// an injected `short` tears the log at the affected record's frame
    /// (everything framed before it still lands, recovery truncates).
    pub fn append_batch(&self, records: &[WalRecord]) -> Result<Vec<Lsn>> {
        if records.is_empty() {
            return Ok(Vec::new());
        }
        let mut buf = Vec::new();
        let mut ends = Vec::with_capacity(records.len());
        let mut torn = false;
        for record in records {
            let payload = record.encode();
            // The same `wal.append` failpoint guards every record of the
            // batch, so existing crash schedules (`1in5`, `short`) reach
            // mid-batch offsets too.
            match mmdb_fault::eval("wal.append") {
                mmdb_fault::Decision::Proceed => {}
                mmdb_fault::Decision::Fail(msg) => {
                    return Err(Error::Storage(format!("wal append: {msg}")))
                }
                mmdb_fault::Decision::Short => torn = true,
            }
            let frame_start = buf.len();
            buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            buf.extend_from_slice(&crc32(&payload).to_le_bytes());
            buf.extend_from_slice(&payload);
            if torn {
                // Same tear as the single-record path: half the frame
                // lands, the rest of the batch never gets framed.
                buf.truncate(frame_start + (payload.len() + 8) / 2);
                break;
            }
            ends.push(buf.len() as u64);
        }
        let mut inner = self.inner.lock();
        let base = inner.next_lsn;
        match &mut inner.backend {
            WalBackend::File(f) => f
                .write_all(&buf)
                .map_err(|e| Error::Storage(format!("wal append: {e}")))?,
            WalBackend::Memory(v) => v.extend_from_slice(&buf),
        }
        inner.next_lsn += buf.len() as u64;
        if torn {
            return Err(Error::Storage("wal append: torn write (injected)".into()));
        }
        Ok(ends.into_iter().map(|e| base + e).collect())
    }

    /// Durably flush appended records.
    pub fn sync(&self) -> Result<()> {
        // Failpoint `wal.sync`: `delay(ms)` models a slow fsync, `error`
        // a failed one.
        mmdb_fault::fail_point!("wal.sync", |msg| Error::Storage(format!("wal fsync: {msg}")));
        let inner = self.inner.lock();
        if let WalBackend::File(f) = &inner.backend {
            f.sync_data().map_err(|e| Error::Storage(format!("wal fsync: {e}")))?;
        }
        // Everything appended before this sync is now durable. Published
        // under the inner lock so the watermark never races past a
        // concurrent append it did not cover.
        self.durable_lsn.fetch_max(inner.next_lsn, std::sync::atomic::Ordering::SeqCst);
        Ok(())
    }

    /// Next LSN to be assigned (== current log length in bytes).
    pub fn tail_lsn(&self) -> Lsn {
        self.inner.lock().next_lsn
    }

    /// The durable tail: the log length as of the last successful
    /// [`Wal::sync`]. Records at or past this offset may still be lost
    /// to a crash, so replication only ships below it.
    pub fn durable_lsn(&self) -> Lsn {
        self.durable_lsn.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Read back the whole log (in-memory backend) — test helper.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let inner = self.inner.lock();
        match &inner.backend {
            WalBackend::Memory(v) => v.clone(),
            WalBackend::File(_) => Vec::new(),
        }
    }

    /// Tail the log: read up to `max_records` CRC-verified records starting
    /// at byte offset `from` (an LSN previously returned by [`Wal::append`],
    /// [`Wal::tail_lsn`] or a prior tail read). This is the replication
    /// feed — a primary streams the result to replicas and change-feed
    /// subscribers, who resume from the last `next_lsn` they saw.
    ///
    /// The scan stops cleanly (no error) at a torn or partial tail record,
    /// exactly like recovery: such bytes only exist transiently between a
    /// failed append and the crash/truncate that follows, and must never be
    /// shipped. Reads never move the append cursor.
    pub fn read_records_from(&self, from: Lsn, max_records: usize) -> Result<Vec<TailedRecord>> {
        /// Per-call read budget: bounds memory when a replica is far
        /// behind. A record larger than the chunk is re-read at its exact
        /// size below, so oversized records slow tailing down rather than
        /// stall it.
        const TAIL_CHUNK: usize = 1 << 20;

        let inner = self.inner.lock();
        let end = inner.next_lsn;
        if from >= end || max_records == 0 {
            return Ok(Vec::new());
        }
        if from < inner.base_lsn {
            return Err(Error::LogTruncated(format!(
                "LSN {from} is below the truncation horizon {}",
                inner.base_lsn
            )));
        }
        let read_chunk = |inner: &WalInner, want: usize| -> Result<Vec<u8>> {
            let at = inner.physical(from);
            match &inner.backend {
                WalBackend::Memory(v) => Ok(v[at as usize..at as usize + want].to_vec()),
                WalBackend::File(f) => {
                    use std::os::unix::fs::FileExt;
                    let mut b = vec![0u8; want];
                    let n = f
                        .read_at(&mut b, at)
                        .map_err(|e| Error::Storage(format!("wal tail read: {e}")))?;
                    b.truncate(n);
                    Ok(b)
                }
            }
        };
        let remaining = (end - from) as usize;
        let mut buf = read_chunk(&inner, remaining.min(TAIL_CHUNK))?;
        // A single record can exceed the chunk (one huge value): re-read
        // with exactly that record's size so the cursor always advances.
        if buf.len() >= 8 {
            let first_len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
            if 8 + first_len > buf.len() && 8 + first_len <= remaining {
                buf = read_chunk(&inner, 8 + first_len)?;
            }
        }
        drop(inner);

        let mut out = Vec::new();
        let mut off = 0usize;
        while out.len() < max_records && buf.len() - off >= 8 {
            let len = u32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
                as usize;
            let crc =
                u32::from_le_bytes([buf[off + 4], buf[off + 5], buf[off + 6], buf[off + 7]]);
            if buf.len() - off < 8 + len {
                break; // partial frame: either the chunk boundary or a torn tail
            }
            let payload = &buf[off + 8..off + 8 + len];
            if crc32(payload) != crc {
                break; // corrupt tail: stop where recovery would
            }
            let record = match WalRecord::decode(payload) {
                Ok(r) => r,
                Err(_) => break,
            };
            out.push(TailedRecord {
                lsn: from + off as u64,
                next_lsn: from + (off + 8 + len) as u64,
                record,
            });
            off += 8 + len;
        }
        Ok(out)
    }

    /// Physical size of the log in bytes (header included, if any).
    pub fn size_bytes(&self) -> u64 {
        let inner = self.inner.lock();
        inner.data_start + (inner.next_lsn - inner.base_lsn)
    }

    /// The truncation horizon: the lowest logical LSN still present in
    /// the log (0 until the first [`Wal::truncate_below`]).
    pub fn truncated_lsn(&self) -> Lsn {
        self.inner.lock().base_lsn
    }

    /// Append a checkpoint marker carrying `snapshot_lsn` and make it
    /// durable. Returns the marker's LSN.
    pub fn append_checkpoint(&self, snapshot_lsn: Lsn) -> Result<Lsn> {
        // Failpoint `ckpt.marker_append`: the snapshot file exists but
        // the marker never lands — recovery must still be consistent
        // (the snapshot is simply newer than the last marker).
        mmdb_fault::fail_point!("ckpt.marker_append", |msg| Error::Storage(format!(
            "checkpoint marker append: {msg}"
        )));
        let lsn = self.append(&WalRecord::Checkpoint { snapshot_lsn })?;
        // lint: allow(blocking, the checkpoint marker must be durable before truncation may proceed)
        self.sync()?;
        Ok(lsn)
    }

    /// Drop the log prefix below `horizon`, keeping LSNs stable: the
    /// suffix is rewritten to a temp file carrying a [`WAL2_MAGIC`]
    /// header with `base = horizon`, fsynced, and atomically renamed
    /// over the log. Returns the number of bytes reclaimed.
    ///
    /// The caller must guarantee `horizon` is record-aligned and at or
    /// below [`Wal::durable_lsn`] — `Database::checkpoint` calls this
    /// under commit quiesce right after a sync, so both hold there. A
    /// crash anywhere inside leaves either the old or the new file,
    /// each a complete, recoverable log.
    pub fn truncate_below(&self, horizon: Lsn) -> Result<u64> {
        // Failpoint `ckpt.wal_truncate`: the checkpoint marker is
        // durable but the prefix survives — recovery just replays more
        // than strictly needed.
        mmdb_fault::fail_point!("ckpt.wal_truncate", |msg| Error::Storage(format!(
            "wal truncate: {msg}"
        )));
        let mut inner = self.inner.lock();
        if horizon <= inner.base_lsn {
            return Ok(0);
        }
        if horizon > inner.next_lsn {
            return Err(Error::Storage(format!(
                "wal truncate horizon {horizon} past tail {}",
                inner.next_lsn
            )));
        }
        let reclaimed = horizon - inner.base_lsn;
        let at = inner.physical(horizon);
        if let WalBackend::Memory(v) = &mut inner.backend {
            v.drain(..reclaimed as usize);
            inner.base_lsn = horizon;
            return Ok(reclaimed);
        }
        let path =
            self.path.as_ref().ok_or_else(|| Error::Storage("file wal has no path".into()))?;
        let suffix = {
            use std::os::unix::fs::FileExt;
            let WalBackend::File(f) = &inner.backend else {
                return Err(Error::Storage("wal truncate: no file backend".into()));
            };
            let want = (inner.next_lsn - horizon) as usize;
            let mut b = vec![0u8; want];
            let mut done = 0;
            while done < want {
                let n = f
                    .read_at(&mut b[done..], at + done as u64)
                    .map_err(|e| Error::Storage(format!("wal truncate read: {e}")))?;
                if n == 0 {
                    return Err(Error::Storage("wal truncate: short read".into()));
                }
                done += n;
            }
            b
        };
        let tmp = path.with_file_name("mmdb.wal.tmp");
        let mut out =
            File::create(&tmp).map_err(|e| Error::Storage(format!("wal truncate tmp: {e}")))?;
        out.write_all(&encode_wal_header(horizon))
            .and_then(|()| out.write_all(&suffix))
            // lint: allow(blocking, the truncated log must be durable before the rename swaps it in; checkpoint path only)
            .and_then(|()| out.sync_all())
            .map_err(|e| Error::Storage(format!("wal truncate write: {e}")))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| Error::Storage(format!("wal truncate rename: {e}")))?;
        // The rename is what makes the truncation visible after a crash,
        // so fsync the directory too (best-effort), then point the live
        // handle at the new inode.
        if let Some(dir) = path.parent() {
            if let Ok(d) = File::open(dir) {
                // lint: allow(blocking, directory fsync publishes the truncation rename; checkpoint path only)
                let _ = d.sync_all();
            }
        }
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .open(path)
            .map_err(|e| Error::Storage(format!("wal truncate reopen: {e}")))?;
        inner.backend = WalBackend::File(file);
        inner.base_lsn = horizon;
        inner.data_start = WAL_HEADER_LEN;
        Ok(reclaimed)
    }
}

/// One record surfaced by [`Wal::read_records_from`], with its position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailedRecord {
    /// Byte offset where this record's frame starts.
    pub lsn: Lsn,
    /// Byte offset just past this record — resume tailing here.
    pub next_lsn: Lsn,
    /// The decoded record.
    pub record: WalRecord,
}

/// One redo operation surfaced by recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedoOp {
    /// Committing transaction.
    pub txid: TxId,
    /// Model routing tag.
    pub domain: String,
    /// Encoded key.
    pub key: Vec<u8>,
    /// New value; `None` is a delete.
    pub value: Option<Vec<u8>>,
}

/// Outcome of scanning a log for recovery.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Redo operations of committed transactions, in log order, starting
    /// at the last checkpoint.
    pub redo: Vec<RedoOp>,
    /// Transactions that began but never committed (work to discard).
    pub losers: Vec<TxId>,
    /// Records dropped because the log ended mid-record (torn write).
    pub torn_tail: bool,
    /// *Physical* byte length of the valid log prefix (v2 header
    /// included). When `torn_tail` is set the caller should truncate the
    /// log file to this length before appending, or later appends would
    /// hide behind the corruption and be lost by the next recovery.
    pub valid_len: u64,
    /// The file's truncation horizon: logical LSN of its first record
    /// (0 for never-truncated logs). A base above 0 means a checkpoint
    /// snapshot must exist — the prefix it replaced is gone.
    pub base_lsn: Lsn,
}

/// Scan record bytes (no file header) whose first byte sits at logical
/// LSN `base`, skipping committed writes of records that end at or below
/// `min_lsn` — those are already captured by the snapshot the caller
/// loaded. `valid_len` in the result counts only the bytes of `data`.
fn recover_scan(data: &[u8], base: Lsn, min_lsn: Lsn) -> Recovery {
    // (record, logical end LSN) pairs of the intact prefix.
    let mut records: Vec<(WalRecord, Lsn)> = Vec::new();
    let mut torn = false;
    let mut valid_len = 0u64;
    let mut rest = data;
    while rest.len() >= 8 {
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if rest.len() < 8 + len {
            torn = true;
            break;
        }
        let payload = &rest[8..8 + len];
        if crc32(payload) != crc {
            // Corrupt record: everything after it is untrustworthy.
            torn = true;
            break;
        }
        match WalRecord::decode(payload) {
            Ok(r) => {
                valid_len += 8 + len as u64;
                records.push((r, base + valid_len));
            }
            Err(_) => {
                torn = true;
                break;
            }
        }
        rest = &rest[8 + len..];
    }
    if !rest.is_empty() && rest.len() < 8 {
        torn = true;
    }

    // Start replay at the last checkpoint marker.
    let start = records
        .iter()
        .rposition(|(r, _)| matches!(r, WalRecord::Checkpoint { .. }))
        .map(|i| i + 1)
        .unwrap_or(0);

    let mut committed = std::collections::HashSet::new();
    let mut seen = std::collections::HashSet::new();
    let mut aborted = std::collections::HashSet::new();
    for (r, _) in &records[start..] {
        match r {
            WalRecord::Begin { txid } => {
                seen.insert(*txid);
            }
            WalRecord::Commit { txid } => {
                committed.insert(*txid);
            }
            WalRecord::Abort { txid } => {
                aborted.insert(*txid);
            }
            _ => {}
        }
    }
    let mut redo = Vec::new();
    for (r, end) in &records[start..] {
        if let WalRecord::Write { txid, domain, key, value } = r {
            // Skip writes the snapshot already reflects: replay is not
            // idempotent for every model (graph edges accumulate), so a
            // record wholly below the snapshot LSN must not re-apply.
            // Group commit appends each Begin..Commit block contiguously,
            // so a block never straddles the snapshot LSN.
            if *end <= min_lsn {
                continue;
            }
            if committed.contains(txid) {
                redo.push(RedoOp {
                    txid: *txid,
                    domain: domain.clone(),
                    key: key.clone(),
                    value: value.clone(),
                });
            }
        }
    }
    let losers = seen
        .into_iter()
        .filter(|t| !committed.contains(t) && !aborted.contains(t))
        .collect();
    Recovery { redo, losers, torn_tail: torn, valid_len, base_lsn: base }
}

/// Scan raw headerless log bytes and compute the redo set.
pub fn recover_from_bytes(full: &[u8]) -> Recovery {
    recover_scan(full, 0, 0)
}

/// Recover from a file-backed log, skipping committed writes at or below
/// `min_lsn` (the loaded snapshot's LSN; pass 0 without a snapshot). The
/// file may be a legacy headerless log or a truncated v2 log.
pub fn recover_from_file_after(path: impl AsRef<Path>, min_lsn: Lsn) -> Result<Recovery> {
    let mut data = Vec::new();
    match File::open(path.as_ref()) {
        Ok(mut f) => {
            f.read_to_end(&mut data)
                .map_err(|e| Error::Storage(format!("read wal: {e}")))?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(Error::Storage(format!("open wal: {e}"))),
    }
    let (body, base, header_len) = match parse_wal_header(&data) {
        Some(base) => (&data[WAL_HEADER_LEN as usize..], base, WAL_HEADER_LEN),
        None => (&data[..], 0, 0),
    };
    let mut rec = recover_scan(body, base, min_lsn);
    rec.valid_len += header_len;
    Ok(rec)
}

/// Recover from a file-backed log (no snapshot).
pub fn recover_from_file(path: impl AsRef<Path>) -> Result<Recovery> {
    recover_from_file_after(path, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(txid: TxId, key: &str, val: Option<&str>) -> WalRecord {
        WalRecord::Write {
            txid,
            domain: "doc/orders".into(),
            key: key.as_bytes().to_vec(),
            value: val.map(|v| v.as_bytes().to_vec()),
        }
    }

    #[test]
    fn record_encode_decode_roundtrip() {
        for r in [
            WalRecord::Begin { txid: 7 },
            WalRecord::Commit { txid: 7 },
            WalRecord::Abort { txid: 9 },
            WalRecord::Checkpoint { snapshot_lsn: 0 },
            WalRecord::Checkpoint { snapshot_lsn: 123_456_789 },
            w(7, "k1", Some("v1")),
            w(7, "k2", None),
        ] {
            assert_eq!(WalRecord::decode(&r.encode()).unwrap(), r);
        }
        // Legacy logs carry payload-less checkpoint markers.
        assert_eq!(
            WalRecord::decode(&[5u8]).unwrap(),
            WalRecord::Checkpoint { snapshot_lsn: 0 }
        );
    }

    #[test]
    fn crc32_known_vector() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn committed_writes_are_redone_uncommitted_discarded() {
        let wal = Wal::in_memory();
        wal.append(&WalRecord::Begin { txid: 1 }).unwrap();
        wal.append(&w(1, "a", Some("1"))).unwrap();
        wal.append(&WalRecord::Begin { txid: 2 }).unwrap();
        wal.append(&w(2, "b", Some("2"))).unwrap();
        wal.append(&WalRecord::Commit { txid: 1 }).unwrap();
        // txn 2 never commits.
        let rec = recover_from_bytes(&wal.snapshot_bytes());
        assert_eq!(rec.redo.len(), 1);
        assert_eq!(rec.redo[0].key, b"a");
        assert_eq!(rec.losers, vec![2]);
        assert!(!rec.torn_tail);
    }

    #[test]
    fn aborted_txn_is_not_a_loser() {
        let wal = Wal::in_memory();
        wal.append(&WalRecord::Begin { txid: 3 }).unwrap();
        wal.append(&w(3, "x", Some("v"))).unwrap();
        wal.append(&WalRecord::Abort { txid: 3 }).unwrap();
        let rec = recover_from_bytes(&wal.snapshot_bytes());
        assert!(rec.redo.is_empty());
        assert!(rec.losers.is_empty());
    }

    #[test]
    fn checkpoint_truncates_replay() {
        let wal = Wal::in_memory();
        wal.append(&WalRecord::Begin { txid: 1 }).unwrap();
        wal.append(&w(1, "old", Some("x"))).unwrap();
        wal.append(&WalRecord::Commit { txid: 1 }).unwrap();
        wal.append(&WalRecord::Checkpoint { snapshot_lsn: wal.tail_lsn() }).unwrap();
        wal.append(&WalRecord::Begin { txid: 2 }).unwrap();
        wal.append(&w(2, "new", Some("y"))).unwrap();
        wal.append(&WalRecord::Commit { txid: 2 }).unwrap();
        let rec = recover_from_bytes(&wal.snapshot_bytes());
        assert_eq!(rec.redo.len(), 1);
        assert_eq!(rec.redo[0].key, b"new");
    }

    #[test]
    fn torn_tail_is_detected_and_dropped() {
        let wal = Wal::in_memory();
        wal.append(&WalRecord::Begin { txid: 1 }).unwrap();
        wal.append(&w(1, "a", Some("1"))).unwrap();
        wal.append(&WalRecord::Commit { txid: 1 }).unwrap();
        let mut bytes = wal.snapshot_bytes();
        let full = recover_from_bytes(&bytes);
        assert_eq!(full.redo.len(), 1);
        // Simulate a crash mid-write of a subsequent record.
        let good_len = bytes.len() as u64;
        bytes.extend_from_slice(&[20, 0, 0, 0, 0xAA, 0xBB]);
        let rec = recover_from_bytes(&bytes);
        assert!(rec.torn_tail);
        assert_eq!(rec.redo.len(), 1, "prefix remains recoverable");
        assert_eq!(rec.valid_len, good_len, "valid_len marks the truncation point");
        assert!(!full.torn_tail);
        assert_eq!(full.valid_len, good_len);
    }

    #[test]
    fn corrupt_crc_stops_replay_at_corruption() {
        let wal = Wal::in_memory();
        wal.append(&WalRecord::Begin { txid: 1 }).unwrap();
        wal.append(&w(1, "a", Some("1"))).unwrap();
        wal.append(&WalRecord::Commit { txid: 1 }).unwrap();
        let mut bytes = wal.snapshot_bytes();
        // Flip a payload byte of the *middle* record.
        let n = bytes.len();
        bytes[n / 2] ^= 0xFF;
        let rec = recover_from_bytes(&bytes);
        assert!(rec.torn_tail);
        // The commit follows the corruption, so nothing can be redone.
        assert!(rec.redo.is_empty());
    }

    #[test]
    fn file_backed_wal_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("mmdb-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.wal");
        let _ = std::fs::remove_file(&path);
        {
            let wal = Wal::open(&path).unwrap();
            wal.append(&WalRecord::Begin { txid: 1 }).unwrap();
            wal.append(&w(1, "persist", Some("yes"))).unwrap();
            wal.append(&WalRecord::Commit { txid: 1 }).unwrap();
            wal.sync().unwrap();
        }
        let rec = recover_from_file(&path).unwrap();
        assert_eq!(rec.redo.len(), 1);
        assert_eq!(rec.redo[0].domain, "doc/orders");
        // Appending after reopen extends, not truncates.
        {
            let wal = Wal::open(&path).unwrap();
            assert!(wal.tail_lsn() > 0);
            wal.append(&WalRecord::Begin { txid: 2 }).unwrap();
            wal.append(&w(2, "more", Some("data"))).unwrap();
            wal.append(&WalRecord::Commit { txid: 2 }).unwrap();
            wal.sync().unwrap();
        }
        let rec = recover_from_file(&path).unwrap();
        assert_eq!(rec.redo.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn recovery_of_missing_file_is_empty() {
        let rec = recover_from_file("/nonexistent/path/to.wal").unwrap();
        assert!(rec.redo.is_empty());
        assert!(!rec.torn_tail);
    }

    #[test]
    fn tailing_reads_records_and_resumes_by_lsn() {
        let wal = Wal::in_memory();
        let l1 = wal.append(&WalRecord::Begin { txid: 1 }).unwrap();
        wal.append(&w(1, "a", Some("1"))).unwrap();
        wal.append(&WalRecord::Commit { txid: 1 }).unwrap();
        assert_eq!(l1, 0);

        let all = wal.read_records_from(0, usize::MAX).unwrap();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].record, WalRecord::Begin { txid: 1 });
        assert_eq!(all[2].record, WalRecord::Commit { txid: 1 });
        assert_eq!(all[2].next_lsn, wal.tail_lsn());

        // Resume from a mid-log LSN: only subsequent records arrive.
        let rest = wal.read_records_from(all[0].next_lsn, usize::MAX).unwrap();
        assert_eq!(rest.len(), 2);
        assert_eq!(rest[0].lsn, all[1].lsn);

        // A tail read at the end is empty, not an error.
        assert!(wal.read_records_from(wal.tail_lsn(), usize::MAX).unwrap().is_empty());

        // max_records bounds the batch; next_lsn chains across batches.
        let one = wal.read_records_from(0, 1).unwrap();
        assert_eq!(one.len(), 1);
        let two = wal.read_records_from(one[0].next_lsn, 1).unwrap();
        assert_eq!(two[0].record, all[1].record);
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn tailing_stops_cleanly_at_a_torn_tail() {
        mmdb_fault::clear_all();
        let wal = Wal::in_memory();
        wal.append(&WalRecord::Begin { txid: 1 }).unwrap();
        wal.append(&WalRecord::Commit { txid: 1 }).unwrap();

        // Tear the next record mid-frame: the bytes land in the log, so the
        // tail scan must stop at them without erroring — exactly where
        // recovery would truncate.
        mmdb_fault::set("wal.append", "short").unwrap();
        assert!(wal.append(&w(1, "torn", Some("x"))).is_err());
        mmdb_fault::clear_all();

        let tailed = wal.read_records_from(0, usize::MAX).unwrap();
        assert_eq!(tailed.len(), 2, "only intact records are served");
        assert!(tailed[1].next_lsn < wal.tail_lsn(), "torn bytes are never shipped");
        let rec = recover_from_bytes(&wal.snapshot_bytes());
        assert!(rec.torn_tail);
        assert_eq!(rec.valid_len, tailed[1].next_lsn, "tail stops where recovery truncates");
    }

    #[test]
    fn batch_append_is_contiguous_and_byte_identical_to_serial() {
        // The same records appended one-by-one and as a batch must
        // produce identical bytes and identical per-record offsets —
        // recovery and tailing cannot tell the two paths apart.
        let records = vec![
            WalRecord::Begin { txid: 1 },
            w(1, "a", Some("1")),
            WalRecord::Commit { txid: 1 },
            WalRecord::Begin { txid: 2 },
            w(2, "b", None),
            WalRecord::Commit { txid: 2 },
        ];
        let serial = Wal::in_memory();
        for r in &records {
            serial.append(r).unwrap();
        }
        let batched = Wal::in_memory();
        let ends = batched.append_batch(&records).unwrap();
        assert_eq!(serial.snapshot_bytes(), batched.snapshot_bytes());
        assert_eq!(ends.len(), records.len());
        let tailed = batched.read_records_from(0, usize::MAX).unwrap();
        for (t, end) in tailed.iter().zip(&ends) {
            assert_eq!(t.next_lsn, *end, "per-record end offsets line up with tailing");
        }
        assert_eq!(*ends.last().unwrap(), batched.tail_lsn());
        assert!(batched.append_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn sync_advances_the_durable_watermark() {
        let wal = Wal::in_memory();
        assert_eq!(wal.durable_lsn(), 0);
        wal.append(&WalRecord::Begin { txid: 1 }).unwrap();
        assert_eq!(wal.durable_lsn(), 0, "appended but unsynced is not durable");
        wal.sync().unwrap();
        assert_eq!(wal.durable_lsn(), wal.tail_lsn());
        wal.append_batch(&[w(1, "k", Some("v")), WalRecord::Commit { txid: 1 }]).unwrap();
        assert!(wal.durable_lsn() < wal.tail_lsn());
        wal.sync().unwrap();
        assert_eq!(wal.durable_lsn(), wal.tail_lsn());
    }

    #[test]
    fn reopened_wal_treats_existing_content_as_durable() {
        let dir = std::env::temp_dir().join(format!("mmdb-wal-durable-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("durable.wal");
        let _ = std::fs::remove_file(&path);
        {
            let wal = Wal::open(&path).unwrap();
            wal.append(&WalRecord::Begin { txid: 1 }).unwrap();
            wal.append(&WalRecord::Commit { txid: 1 }).unwrap();
            wal.sync().unwrap();
        }
        let wal = Wal::open(&path).unwrap();
        assert_eq!(wal.durable_lsn(), wal.tail_lsn(), "recovered prefix is durable history");
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn batch_append_failures_are_atomic_or_tear_like_serial_appends() {
        // `fail`: the whole batch is rejected before any byte lands.
        mmdb_fault::clear_all();
        let wal = Wal::in_memory();
        wal.append(&WalRecord::Begin { txid: 1 }).unwrap();
        wal.append(&WalRecord::Commit { txid: 1 }).unwrap();
        let intact = wal.snapshot_bytes();
        mmdb_fault::set("wal.append", "error").unwrap();
        assert!(wal
            .append_batch(&[WalRecord::Begin { txid: 2 }, WalRecord::Commit { txid: 2 }])
            .is_err());
        assert_eq!(wal.snapshot_bytes(), intact, "a failed batch leaves no trace");

        // `short`: the armed record tears mid-frame and the rest of the
        // batch is never framed; recovery and tailing both stop at the
        // intact prefix.
        mmdb_fault::set("wal.append", "short").unwrap();
        assert!(wal
            .append_batch(&[
                WalRecord::Begin { txid: 10 },
                w(10, "k", Some("v")),
                WalRecord::Commit { txid: 10 },
            ])
            .is_err());
        mmdb_fault::clear_all();
        let rec = recover_from_bytes(&wal.snapshot_bytes());
        assert!(rec.torn_tail);
        let tailed = wal.read_records_from(0, usize::MAX).unwrap();
        assert_eq!(
            tailed.last().unwrap().next_lsn,
            rec.valid_len,
            "tailing stops exactly where recovery truncates"
        );
    }

    #[test]
    fn tailing_works_on_a_file_backed_wal() {
        let dir = std::env::temp_dir().join(format!("mmdb-wal-tail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tail.wal");
        let _ = std::fs::remove_file(&path);
        let wal = Wal::open(&path).unwrap();
        wal.append(&WalRecord::Begin { txid: 5 }).unwrap();
        wal.append(&w(5, "k", Some("v"))).unwrap();
        let commit_lsn = wal.append(&WalRecord::Commit { txid: 5 }).unwrap();
        wal.sync().unwrap();

        let tailed = wal.read_records_from(0, usize::MAX).unwrap();
        assert_eq!(tailed.len(), 3);
        assert_eq!(tailed[2].lsn, commit_lsn);
        assert_eq!(tailed[2].next_lsn, wal.tail_lsn());

        // Tailing does not disturb the append cursor.
        wal.append(&WalRecord::Checkpoint { snapshot_lsn: 0 }).unwrap();
        let more = wal.read_records_from(tailed[2].next_lsn, usize::MAX).unwrap();
        assert_eq!(more.len(), 1);
        assert_eq!(more[0].record, WalRecord::Checkpoint { snapshot_lsn: 0 });
        let _ = std::fs::remove_file(&path);
    }

    /// Append a committed txn and return the logical tail afterwards.
    fn commit_one(wal: &Wal, txid: TxId, key: &str) -> Lsn {
        wal.append(&WalRecord::Begin { txid }).unwrap();
        wal.append(&w(txid, key, Some("v"))).unwrap();
        wal.append(&WalRecord::Commit { txid }).unwrap();
        wal.sync().unwrap();
        wal.tail_lsn()
    }

    #[test]
    fn truncate_keeps_lsns_stable_in_memory() {
        let wal = Wal::in_memory();
        let h = commit_one(&wal, 1, "old");
        let tail = commit_one(&wal, 2, "new");
        let before = wal.read_records_from(h, usize::MAX).unwrap();
        let reclaimed = wal.truncate_below(h).unwrap();
        assert_eq!(reclaimed, h);
        assert_eq!(wal.truncated_lsn(), h);
        assert_eq!(wal.tail_lsn(), tail, "logical tail is unchanged");
        // Reads at or past the horizon are byte-identical to before.
        assert_eq!(wal.read_records_from(h, usize::MAX).unwrap(), before);
        // Reads below it are a typed error.
        assert!(matches!(
            wal.read_records_from(0, usize::MAX),
            Err(Error::LogTruncated(_))
        ));
        // Truncating at or below the horizon is a no-op.
        assert_eq!(wal.truncate_below(h).unwrap(), 0);
    }

    #[test]
    fn truncated_file_reopens_with_stable_lsns() {
        let dir = std::env::temp_dir().join(format!("mmdb-wal-trunc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mmdb.wal");
        let _ = std::fs::remove_file(&path);
        let (h, tail, suffix) = {
            let wal = Wal::open(&path).unwrap();
            let h = commit_one(&wal, 1, "old");
            let tail = commit_one(&wal, 2, "new");
            let size_before = wal.size_bytes();
            assert_eq!(wal.truncate_below(h).unwrap(), h);
            assert!(wal.size_bytes() < size_before, "the file shrank");
            (h, tail, wal.read_records_from(h, usize::MAX).unwrap())
        };
        // Reopen: header restores the base, logical LSNs keep counting.
        let wal = Wal::open(&path).unwrap();
        assert_eq!(wal.truncated_lsn(), h);
        assert_eq!(wal.tail_lsn(), tail);
        assert_eq!(wal.durable_lsn(), tail);
        assert_eq!(wal.read_records_from(h, usize::MAX).unwrap(), suffix);
        // Appends after reopen continue the logical sequence and the
        // recovery scan reports the base.
        let tail2 = commit_one(&wal, 3, "more");
        assert!(tail2 > tail);
        let rec = recover_from_file(&path).unwrap();
        assert_eq!(rec.base_lsn, h);
        assert_eq!(rec.redo.len(), 2, "only records past the horizon remain");
        assert_eq!(rec.valid_len, wal.size_bytes());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn recovery_filters_redo_below_the_snapshot_lsn() {
        let dir = std::env::temp_dir().join(format!("mmdb-wal-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mmdb.wal");
        let _ = std::fs::remove_file(&path);
        let wal = Wal::open(&path).unwrap();
        let s = commit_one(&wal, 1, "snapshotted");
        commit_one(&wal, 2, "replayed");
        // Snapshot at `s`, but no marker and no truncation (the crash
        // windows between snapshot rename and marker append): recovery
        // must skip everything the snapshot already holds.
        let rec = recover_from_file_after(&path, s).unwrap();
        assert_eq!(rec.redo.len(), 1);
        assert_eq!(rec.redo[0].key, b"replayed");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn append_checkpoint_is_durable_and_carries_the_lsn() {
        let wal = Wal::in_memory();
        let s = commit_one(&wal, 1, "a");
        wal.append_checkpoint(s).unwrap();
        assert_eq!(wal.durable_lsn(), wal.tail_lsn(), "marker is synced");
        let tailed = wal.read_records_from(s, usize::MAX).unwrap();
        assert_eq!(tailed.len(), 1);
        assert_eq!(tailed[0].record, WalRecord::Checkpoint { snapshot_lsn: s });
    }
}
