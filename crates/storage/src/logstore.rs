//! OctopusDB-style log-structured storage with selectable *storage views*.
//!
//! The tutorial presents OctopusDB (Dittrich & Jindal, CIDR 2011) as the
//! "one size *can* fit all" position: every insert/update becomes an entry
//! in one central log; on top of the log one may materialize any number of
//! optional **storage views** — row-oriented, column-oriented, or
//! index-oriented — and "query optimization, view maintenance and index
//! selection suddenly become a single problem: storage view selection".
//!
//! This module implements exactly that: [`CentralLog`], three view kinds,
//! lazy view maintenance, and a [`ViewAdvisor`] that picks views from a
//! workload profile. Ablation E7 benches each view kind against its
//! favourable and unfavourable workloads.

use std::collections::{BTreeMap, HashMap};

use mmdb_types::{Error, Result, Value};

/// One operation in the central log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogOp {
    /// Insert or overwrite a record (an object) under a key.
    Put {
        /// Record key.
        key: Value,
        /// Record payload (object).
        value: Value,
    },
    /// Remove the record under a key.
    Delete {
        /// Record key.
        key: Value,
    },
}

/// The append-only central log: the primary (and only mandatory) copy of
/// the data.
#[derive(Default)]
pub struct CentralLog {
    entries: Vec<LogOp>,
}

impl CentralLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an operation, returning its position.
    pub fn append(&mut self, op: LogOp) -> usize {
        self.entries.push(op);
        self.entries.len() - 1
    }

    /// Entries from `from` (exclusive tail catch-up helper).
    pub fn since(&self, from: usize) -> &[LogOp] {
        &self.entries[from..]
    }

    /// Total number of log entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Ground-truth point lookup by replaying the log backwards. Correct
    /// with *zero* views materialized — this is the OctopusDB claim that
    /// the log alone is a complete store; views only buy speed.
    pub fn replay_get(&self, key: &Value) -> Option<Value> {
        for op in self.entries.iter().rev() {
            match op {
                LogOp::Put { key: k, value } if k == key => return Some(value.clone()),
                LogOp::Delete { key: k } if k == key => return None,
                _ => {}
            }
        }
        None
    }
}

/// Kinds of storage view the advisor can recommend.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ViewKind {
    /// Row view: key → full record. Serves point reads.
    Row,
    /// Column view over the named fields. Serves column scans.
    Column(Vec<String>),
    /// Index view on one field. Serves range/equality predicates.
    Index(String),
}

/// Row-oriented view: latest record per key.
#[derive(Default)]
pub struct RowView {
    rows: HashMap<Value, Value>,
}

impl RowView {
    fn apply(&mut self, op: &LogOp) {
        match op {
            LogOp::Put { key, value } => {
                self.rows.insert(key.clone(), value.clone());
            }
            LogOp::Delete { key } => {
                self.rows.remove(key);
            }
        }
    }

    /// Point lookup.
    pub fn get(&self, key: &Value) -> Option<&Value> {
        self.rows.get(key)
    }

    /// Live record count.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the view holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Column-oriented view: per-field value vectors aligned by row position.
///
/// Deletes mark the row dead; scans skip dead rows. (A real system would
/// periodically rewrite the columns; the dead-row ratio is visible via
/// [`ColumnView::dead_ratio`].)
pub struct ColumnView {
    fields: Vec<String>,
    keys: Vec<Value>,
    live: Vec<bool>,
    columns: Vec<Vec<Value>>,
    key_pos: HashMap<Value, usize>,
}

impl ColumnView {
    fn new(fields: Vec<String>) -> Self {
        let n = fields.len();
        ColumnView {
            fields,
            keys: Vec::new(),
            live: Vec::new(),
            columns: vec![Vec::new(); n],
            key_pos: HashMap::new(),
        }
    }

    fn apply(&mut self, op: &LogOp) {
        match op {
            LogOp::Put { key, value } => {
                if let Some(&pos) = self.key_pos.get(key) {
                    self.live[pos] = false; // supersede the old version
                }
                let pos = self.keys.len();
                self.keys.push(key.clone());
                self.live.push(true);
                for (ci, f) in self.fields.iter().enumerate() {
                    self.columns[ci].push(value.get_field(f).clone());
                }
                self.key_pos.insert(key.clone(), pos);
            }
            LogOp::Delete { key } => {
                if let Some(pos) = self.key_pos.remove(key) {
                    self.live[pos] = false;
                }
            }
        }
    }

    /// Scan one column, yielding `(key, value)` for live rows.
    pub fn scan_field(&self, field: &str) -> Result<Vec<(&Value, &Value)>> {
        let ci = self
            .fields
            .iter()
            .position(|f| f == field)
            .ok_or_else(|| Error::NotFound(format!("column view has no field '{field}'")))?;
        Ok(self
            .keys
            .iter()
            .zip(&self.columns[ci])
            .zip(&self.live)
            .filter(|(_, &live)| live)
            .map(|((k, v), _)| (k, v))
            .collect())
    }

    /// Fraction of dead (superseded/deleted) rows in the view.
    pub fn dead_ratio(&self) -> f64 {
        if self.live.is_empty() {
            return 0.0;
        }
        self.live.iter().filter(|l| !**l).count() as f64 / self.live.len() as f64
    }
}

/// Index view: sorted map from a field's value to the keys holding it.
pub struct IndexView {
    field: String,
    map: BTreeMap<Value, Vec<Value>>,
    /// Reverse map for maintenance on overwrite/delete.
    by_key: HashMap<Value, Value>,
}

impl IndexView {
    fn new(field: String) -> Self {
        IndexView { field, map: BTreeMap::new(), by_key: HashMap::new() }
    }

    fn apply(&mut self, op: &LogOp) {
        match op {
            LogOp::Put { key, value } => {
                self.unlink(key);
                let fv = value.get_field(&self.field).clone();
                self.map.entry(fv.clone()).or_default().push(key.clone());
                self.by_key.insert(key.clone(), fv);
            }
            LogOp::Delete { key } => self.unlink(key),
        }
    }

    fn unlink(&mut self, key: &Value) {
        if let Some(old) = self.by_key.remove(key) {
            if let Some(keys) = self.map.get_mut(&old) {
                keys.retain(|k| k != key);
                if keys.is_empty() {
                    self.map.remove(&old);
                }
            }
        }
    }

    /// Keys whose field value lies in `[lo, hi]`.
    pub fn range(&self, lo: &Value, hi: &Value) -> Vec<&Value> {
        self.map
            .range(lo.clone()..=hi.clone())
            .flat_map(|(_, ks)| ks.iter())
            .collect()
    }

    /// Keys whose field value equals `v`.
    pub fn eq(&self, v: &Value) -> Vec<&Value> {
        self.map.get(v).map(|ks| ks.iter().collect()).unwrap_or_default()
    }
}

/// The log store: central log plus whatever views are materialized.
pub struct LogStore {
    log: CentralLog,
    row: Option<(RowView, usize)>,
    columns: Vec<(ColumnView, usize)>,
    indexes: Vec<(IndexView, usize)>,
}

impl Default for LogStore {
    fn default() -> Self {
        Self::new()
    }
}

impl LogStore {
    /// A store with no views (log only).
    pub fn new() -> Self {
        LogStore { log: CentralLog::new(), row: None, columns: Vec::new(), indexes: Vec::new() }
    }

    /// Materialize a view; it backfills from the log immediately.
    pub fn add_view(&mut self, kind: ViewKind) {
        match kind {
            ViewKind::Row => {
                if self.row.is_none() {
                    self.row = Some((RowView::default(), 0));
                }
            }
            ViewKind::Column(fields) => self.columns.push((ColumnView::new(fields), 0)),
            ViewKind::Index(field) => self.indexes.push((IndexView::new(field), 0)),
        }
        self.catch_up();
    }

    /// Drop all views (back to log-only).
    pub fn drop_views(&mut self) {
        self.row = None;
        self.columns.clear();
        self.indexes.clear();
    }

    /// Append a put. Views are maintained lazily at read time (OctopusDB's
    /// "optional" views), so writes cost O(1) regardless of view count —
    /// call [`LogStore::catch_up`] to force maintenance.
    pub fn put(&mut self, key: Value, value: Value) {
        self.log.append(LogOp::Put { key, value });
    }

    /// Append a delete.
    pub fn delete(&mut self, key: Value) {
        self.log.append(LogOp::Delete { key });
    }

    /// Bring every view up to the log tail.
    pub fn catch_up(&mut self) {
        let log = &self.log;
        if let Some((view, upto)) = &mut self.row {
            for op in log.since(*upto) {
                view.apply(op);
            }
            *upto = log.len();
        }
        for (view, upto) in &mut self.columns {
            for op in log.since(*upto) {
                view.apply(op);
            }
            *upto = log.len();
        }
        for (view, upto) in &mut self.indexes {
            for op in log.since(*upto) {
                view.apply(op);
            }
            *upto = log.len();
        }
    }

    /// Point read: row view if materialized, else log replay.
    pub fn get(&mut self, key: &Value) -> Option<Value> {
        self.catch_up();
        match &self.row {
            Some((view, _)) => view.get(key).cloned(),
            None => self.log.replay_get(key),
        }
    }

    /// Column scan: column view if one covers the field, else full replay.
    pub fn scan_field(&mut self, field: &str) -> Vec<(Value, Value)> {
        self.catch_up();
        for (view, _) in &self.columns {
            if let Ok(rows) = view.scan_field(field) {
                return rows.into_iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            }
        }
        // Fallback: replay into a row image and project.
        let mut rows: HashMap<Value, Value> = HashMap::new();
        for op in self.log.since(0) {
            match op {
                LogOp::Put { key, value } => {
                    rows.insert(key.clone(), value.clone());
                }
                LogOp::Delete { key } => {
                    rows.remove(key);
                }
            }
        }
        rows.into_iter()
            .map(|(k, v)| {
                let field_value = v.get_field(field).clone();
                (k, field_value)
            })
            .collect()
    }

    /// Range query on a field: index view if materialized, else scan.
    pub fn range(&mut self, field: &str, lo: &Value, hi: &Value) -> Vec<Value> {
        self.catch_up();
        for (view, _) in &self.indexes {
            if view.field == field {
                return view.range(lo, hi).into_iter().cloned().collect();
            }
        }
        self.scan_field(field)
            .into_iter()
            .filter(|(_, v)| v >= lo && v <= hi)
            .map(|(k, _)| k)
            .collect()
    }

    /// Which views are currently materialized.
    pub fn materialized(&self) -> Vec<ViewKind> {
        let mut out = Vec::new();
        if self.row.is_some() {
            out.push(ViewKind::Row);
        }
        for (v, _) in &self.columns {
            out.push(ViewKind::Column(v.fields.clone()));
        }
        for (v, _) in &self.indexes {
            out.push(ViewKind::Index(v.field.clone()));
        }
        out
    }

    /// The central log (read access for recovery/inspection).
    pub fn log(&self) -> &CentralLog {
        &self.log
    }
}

/// Observed workload counts used by the advisor.
#[derive(Debug, Default, Clone)]
pub struct WorkloadProfile {
    /// Point lookups by key.
    pub point_reads: u64,
    /// Writes (puts + deletes).
    pub writes: u64,
    /// Full scans of a single field: field → count.
    pub field_scans: HashMap<String, u64>,
    /// Range predicates on a field: field → count.
    pub range_queries: HashMap<String, u64>,
}

/// Picks storage views for a workload — OctopusDB's "single problem".
///
/// Cost model (unitless): a point read costs `log_len` without a row view
/// and `1` with; a field scan costs `row_width × n` from rows and `n` from
/// a column; a range query costs `n` from a scan and `log n + k` from an
/// index. A view costs its maintenance (`writes`) amortized. The advisor
/// recommends every view whose saving exceeds its maintenance.
pub struct ViewAdvisor {
    /// Approximate live record count.
    pub record_count: u64,
    /// Approximate fields per record.
    pub row_width: u64,
}

impl ViewAdvisor {
    /// Recommend views for the profile.
    pub fn recommend(&self, profile: &WorkloadProfile) -> Vec<ViewKind> {
        let n = self.record_count.max(1);
        let mut out = Vec::new();
        // Row view: saves (replay - 1) per point read; costs 1 per write.
        let row_saving = profile.point_reads.saturating_mul(n.saturating_sub(1));
        if row_saving > profile.writes {
            out.push(ViewKind::Row);
        }
        // Column view: group all scanned fields into one view.
        let scanned: Vec<String> = profile
            .field_scans
            .iter()
            .filter(|(_, &c)| c.saturating_mul(n * self.row_width.saturating_sub(1)) > profile.writes)
            .map(|(f, _)| f.clone())
            .collect();
        if !scanned.is_empty() {
            let mut fields = scanned;
            fields.sort();
            out.push(ViewKind::Column(fields));
        }
        // Index views: one per hot range field.
        let mut idx_fields: Vec<&String> = profile
            .range_queries
            .iter()
            .filter(|(_, &c)| {
                let log_n = 64 - n.leading_zeros() as u64;
                c.saturating_mul(n.saturating_sub(log_n)) > profile.writes
            })
            .map(|(f, _)| f)
            .collect();
        idx_fields.sort();
        for f in idx_fields {
            out.push(ViewKind::Index(f.clone()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_types::Value;

    fn rec(name: &str, price: i64) -> Value {
        Value::object([("name", Value::str(name)), ("price", Value::int(price))])
    }

    #[test]
    fn log_only_store_is_complete() {
        let mut s = LogStore::new();
        s.put(Value::int(1), rec("toy", 66));
        s.put(Value::int(2), rec("book", 40));
        s.put(Value::int(1), rec("toy2", 70));
        s.delete(Value::int(2));
        assert_eq!(s.get(&Value::int(1)).unwrap().get_field("name"), &Value::str("toy2"));
        assert_eq!(s.get(&Value::int(2)), None);
        assert!(s.materialized().is_empty());
    }

    #[test]
    fn row_view_serves_point_reads() {
        let mut s = LogStore::new();
        for i in 0..100 {
            s.put(Value::int(i), rec("p", i));
        }
        s.add_view(ViewKind::Row);
        assert_eq!(s.get(&Value::int(42)).unwrap().get_field("price"), &Value::int(42));
        // Writes after materialization are picked up lazily.
        s.put(Value::int(42), rec("updated", 1));
        assert_eq!(s.get(&Value::int(42)).unwrap().get_field("name"), &Value::str("updated"));
    }

    #[test]
    fn column_view_scans_one_field() {
        let mut s = LogStore::new();
        for i in 0..10 {
            s.put(Value::int(i), rec(&format!("p{i}"), i * 10));
        }
        s.add_view(ViewKind::Column(vec!["price".into()]));
        let prices = s.scan_field("price");
        assert_eq!(prices.len(), 10);
        // Update supersedes the old row version in the column view.
        s.put(Value::int(0), rec("p0", 999));
        let prices = s.scan_field("price");
        assert_eq!(prices.len(), 10);
        assert!(prices.iter().any(|(_, v)| v == &Value::int(999)));
        assert!(!prices.iter().any(|(_, v)| v == &Value::int(0)));
    }

    #[test]
    fn column_view_tracks_dead_rows() {
        let mut s = LogStore::new();
        s.add_view(ViewKind::Column(vec!["price".into()]));
        for i in 0..10 {
            s.put(Value::int(i), rec("p", i));
        }
        for i in 0..5 {
            s.delete(Value::int(i));
        }
        s.catch_up();
        let (view, _) = &s.columns[0];
        assert!(view.dead_ratio() > 0.4);
        assert_eq!(s.scan_field("price").len(), 5);
    }

    #[test]
    fn index_view_serves_ranges_and_handles_updates() {
        let mut s = LogStore::new();
        for i in 0..100 {
            s.put(Value::int(i), rec("p", i));
        }
        s.add_view(ViewKind::Index("price".into()));
        let hits = s.range("price", &Value::int(10), &Value::int(19));
        assert_eq!(hits.len(), 10);
        // Move one record out of the range; the index must unlink it.
        s.put(Value::int(15), rec("p", 1000));
        let hits = s.range("price", &Value::int(10), &Value::int(19));
        assert_eq!(hits.len(), 9);
        s.delete(Value::int(11));
        let hits = s.range("price", &Value::int(10), &Value::int(19));
        assert_eq!(hits.len(), 8);
    }

    #[test]
    fn range_without_index_falls_back_to_scan() {
        let mut s = LogStore::new();
        for i in 0..50 {
            s.put(Value::int(i), rec("p", i));
        }
        let hits = s.range("price", &Value::int(0), &Value::int(4));
        assert_eq!(hits.len(), 5);
    }

    #[test]
    fn views_backfill_on_materialization() {
        let mut s = LogStore::new();
        for i in 0..20 {
            s.put(Value::int(i), rec("p", i));
        }
        s.add_view(ViewKind::Index("price".into()));
        assert_eq!(s.range("price", &Value::int(0), &Value::int(100)).len(), 20);
    }

    #[test]
    fn advisor_recommends_matching_views() {
        let advisor = ViewAdvisor { record_count: 10_000, row_width: 10 };
        // Point-read heavy.
        let mut p = WorkloadProfile { point_reads: 1000, writes: 100, ..Default::default() };
        assert!(advisor.recommend(&p).contains(&ViewKind::Row));
        // Scan heavy.
        p = WorkloadProfile::default();
        p.field_scans.insert("price".into(), 50);
        p.writes = 100;
        assert!(matches!(&advisor.recommend(&p)[..], [ViewKind::Column(f)] if f == &vec!["price".to_string()]));
        // Range heavy.
        p = WorkloadProfile::default();
        p.range_queries.insert("price".into(), 50);
        p.writes = 100;
        assert_eq!(advisor.recommend(&p), vec![ViewKind::Index("price".into())]);
        // Write-only: no views.
        p = WorkloadProfile { writes: 1_000_000, ..Default::default() };
        assert!(advisor.recommend(&p).is_empty());
    }
}
