//! Page-granular storage backends.
//!
//! [`DiskManager`] abstracts over a real file and a RAM-vector backend;
//! everything above (buffer pool, heap files,
//! B+-trees on pages) is backend-agnostic. The in-memory backend is also
//! what the tutorial's "multi-model main-memory structure" challenge calls
//! for as a first step, and it keeps unit tests hermetic.

use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use mmdb_types::{Error, Result};

use crate::wal::crc32;

/// Fixed page size, 8 KiB like PostgreSQL's default.
pub const PAGE_SIZE: usize = 8192;

/// Byte range of the page checksum within the page header.
///
/// `SlottedPage` reserves a 16-byte header but only uses bytes 0..4
/// (slot count + free-end); bytes 4..8 hold a CRC32 over the rest of the
/// page, stamped by [`DiskManager::write_page`] and verified by
/// [`DiskManager::read_page`]. A stored value of 0 means "no checksum"
/// (pages written before checksumming existed, or never-written zero
/// pages) and is accepted unverified.
pub const PAGE_CRC_RANGE: std::ops::Range<usize> = 4..8;

/// CRC32 of a page with its checksum field treated as zero.
fn page_crc(buf: &[u8]) -> u32 {
    debug_assert_eq!(buf.len(), PAGE_SIZE);
    let mut shadow = [0u8; PAGE_SIZE];
    shadow.copy_from_slice(buf);
    shadow[PAGE_CRC_RANGE].fill(0);
    crc32(&shadow)
}

/// Identifier of a page within one `DiskManager`.
pub type PageId = u64;

trait Backend: Send + Sync {
    fn read(&self, page: PageId, buf: &mut [u8]) -> Result<()>;
    fn write(&self, page: PageId, buf: &[u8]) -> Result<()>;
    fn sync(&self) -> Result<()>;
}

struct FileBackend {
    file: File,
}

impl Backend for FileBackend {
    fn read(&self, page: PageId, buf: &mut [u8]) -> Result<()> {
        self.file
            .read_exact_at(buf, page * PAGE_SIZE as u64)
            .map_err(|e| Error::Storage(format!("read page {page}: {e}")))
    }

    fn write(&self, page: PageId, buf: &[u8]) -> Result<()> {
        self.file
            .write_all_at(buf, page * PAGE_SIZE as u64)
            .map_err(|e| Error::Storage(format!("write page {page}: {e}")))
    }

    fn sync(&self) -> Result<()> {
        self.file
            .sync_data()
            .map_err(|e| Error::Storage(format!("fsync: {e}")))
    }
}

struct MemBackend {
    pages: Mutex<Vec<Box<[u8; PAGE_SIZE]>>>,
}

impl Backend for MemBackend {
    fn read(&self, page: PageId, buf: &mut [u8]) -> Result<()> {
        let pages = self.pages.lock();
        let p = pages
            .get(page as usize)
            .ok_or_else(|| Error::Storage(format!("read of unallocated page {page}")))?;
        buf.copy_from_slice(p.as_slice());
        Ok(())
    }

    fn write(&self, page: PageId, buf: &[u8]) -> Result<()> {
        let mut pages = self.pages.lock();
        while pages.len() <= page as usize {
            pages.push(vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().expect("size")); // lint: allow(panic, vec of exactly PAGE_SIZE bytes; fixed-size conversion is infallible)
        }
        pages[page as usize].copy_from_slice(buf);
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }
}

/// Allocates, reads and writes fixed-size pages.
pub struct DiskManager {
    backend: Box<dyn Backend>,
    next_page: AtomicU64,
}

impl DiskManager {
    /// Open (or create) a file-backed manager. Existing pages are preserved;
    /// allocation continues after the last full page.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path.as_ref())
            .map_err(|e| Error::Storage(format!("open {:?}: {e}", path.as_ref())))?;
        let len = file
            .metadata()
            .map_err(|e| Error::Storage(e.to_string()))?
            .len();
        Ok(DiskManager {
            backend: Box::new(FileBackend { file }),
            next_page: AtomicU64::new(len / PAGE_SIZE as u64),
        })
    }

    /// A purely in-memory manager.
    pub fn in_memory() -> Self {
        DiskManager {
            backend: Box::new(MemBackend { pages: Mutex::new(Vec::new()) }),
            next_page: AtomicU64::new(0),
        }
    }

    /// Allocate a fresh page id (the page is materialized on first write).
    pub fn allocate(&self) -> PageId {
        self.next_page.fetch_add(1, Ordering::SeqCst)
    }

    /// Number of pages allocated so far.
    pub fn page_count(&self) -> u64 {
        self.next_page.load(Ordering::SeqCst)
    }

    /// Read a page into `buf` (must be `PAGE_SIZE` long) and verify its
    /// checksum. A mismatch returns a typed `corruption` error instead of
    /// letting the caller decode garbage. Pages whose stored checksum is 0
    /// (never written, or written before checksumming existed) are
    /// accepted unverified; the odds of real corruption zeroing exactly
    /// the checksum field and nothing the header sanity checks catch are
    /// what the legacy escape hatch costs.
    pub fn read_page(&self, page: PageId, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        self.backend.read(page, buf)?;
        let stored = u32::from_le_bytes(buf[PAGE_CRC_RANGE].try_into().expect("4 bytes")); // lint: allow(panic, PAGE_CRC_RANGE is a fixed 4-byte range; conversion is infallible)
        if stored != 0 {
            let computed = page_crc(buf);
            if computed != stored {
                return Err(Error::Corruption(format!(
                    "page {page} checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )));
            }
        }
        Ok(())
    }

    /// Write a page from `buf` (must be `PAGE_SIZE` long), stamping its
    /// checksum into the header (see [`PAGE_CRC_RANGE`]).
    pub fn write_page(&self, page: PageId, buf: &[u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        let mut stamped = [0u8; PAGE_SIZE];
        stamped.copy_from_slice(buf);
        stamped[PAGE_CRC_RANGE].copy_from_slice(&page_crc(buf).to_le_bytes());
        // Failpoint `disk.write_page`: `short` writes a torn page (tail
        // zeroed) and then errors, the classic partial-page crash. The
        // tear lands *after* the checksum stamp, so a later read of the
        // torn page fails verification — exactly what the checksum is for.
        match mmdb_fault::eval("disk.write_page") {
            mmdb_fault::Decision::Proceed => self.backend.write(page, &stamped),
            mmdb_fault::Decision::Fail(msg) => {
                Err(Error::Storage(format!("write page {page}: {msg}")))
            }
            mmdb_fault::Decision::Short => {
                for b in &mut stamped[PAGE_SIZE / 2..] {
                    *b = 0;
                }
                self.backend.write(page, &stamped)?;
                Err(Error::Storage(format!("write page {page}: torn page (injected)")))
            }
        }
    }

    /// Durably flush all written pages.
    pub fn sync(&self) -> Result<()> {
        self.backend.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_backend_roundtrip() {
        let dm = DiskManager::in_memory();
        let p = dm.allocate();
        let q = dm.allocate();
        assert_ne!(p, q);
        let data = [42u8; PAGE_SIZE];
        dm.write_page(p, &data).unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        dm.read_page(p, &mut buf).unwrap();
        // The payload round-trips; the header's checksum field is stamped
        // by write_page and differs from the input.
        assert_eq!(buf[..PAGE_CRC_RANGE.start], data[..PAGE_CRC_RANGE.start]);
        assert_eq!(buf[PAGE_CRC_RANGE.end..], data[PAGE_CRC_RANGE.end..]);
        assert_ne!(buf[PAGE_CRC_RANGE], [42u8; 4], "checksum was stamped");
    }

    #[test]
    fn flipped_byte_is_detected_as_corruption() {
        let dir = std::env::temp_dir().join(format!("mmdb-crc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        let _ = std::fs::remove_file(&path);
        let page;
        {
            let dm = DiskManager::open(&path).unwrap();
            page = dm.allocate();
            let mut data = [0u8; PAGE_SIZE];
            data[100..105].copy_from_slice(b"hello");
            dm.write_page(page, &data).unwrap();
            let mut buf = [0u8; PAGE_SIZE];
            dm.read_page(page, &mut buf).unwrap();
        }
        // Flip one payload byte behind the manager's back.
        {
            use std::io::{Read, Seek, SeekFrom, Write};
            let mut f = OpenOptions::new().read(true).write(true).open(&path).unwrap();
            let off = page * PAGE_SIZE as u64 + 102;
            let mut b = [0u8; 1];
            f.seek(SeekFrom::Start(off)).unwrap();
            f.read_exact(&mut b).unwrap();
            b[0] ^= 0xFF;
            f.seek(SeekFrom::Start(off)).unwrap();
            f.write_all(&b).unwrap();
        }
        {
            let dm = DiskManager::open(&path).unwrap();
            let mut buf = [0u8; PAGE_SIZE];
            let err = dm.read_page(page, &mut buf).unwrap_err();
            assert_eq!(err.kind(), "corruption", "got {err}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn legacy_pages_without_checksum_still_read() {
        // A page written directly to the backing file with a zero checksum
        // field (the pre-checksum on-disk format) must stay readable.
        let dir = std::env::temp_dir().join(format!("mmdb-crc0-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        let _ = std::fs::remove_file(&path);
        {
            use std::io::Write;
            let mut f = std::fs::File::create(&path).unwrap();
            let mut legacy = [7u8; PAGE_SIZE];
            legacy[PAGE_CRC_RANGE].fill(0);
            f.write_all(&legacy).unwrap();
        }
        let dm = DiskManager::open(&path).unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        dm.read_page(0, &mut buf).unwrap();
        assert_eq!(buf[0], 7);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unallocated_read_fails_in_memory() {
        let dm = DiskManager::in_memory();
        let mut buf = [0u8; PAGE_SIZE];
        assert!(dm.read_page(99, &mut buf).is_err());
    }

    #[test]
    fn file_backend_roundtrip_and_reopen() {
        let dir = std::env::temp_dir().join(format!("mmdb-disk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        let _ = std::fs::remove_file(&path);
        let page;
        {
            let dm = DiskManager::open(&path).unwrap();
            page = dm.allocate();
            let mut data = [0u8; PAGE_SIZE];
            // Past the header's checksum field (see PAGE_CRC_RANGE).
            data[8..13].copy_from_slice(b"mmdb!");
            dm.write_page(page, &data).unwrap();
            dm.sync().unwrap();
        }
        {
            let dm = DiskManager::open(&path).unwrap();
            assert_eq!(dm.page_count(), page + 1);
            let mut buf = [0u8; PAGE_SIZE];
            dm.read_page(page, &mut buf).unwrap();
            assert_eq!(&buf[8..13], b"mmdb!");
            // Allocation continues after existing pages.
            assert_eq!(dm.allocate(), page + 1);
        }
        let _ = std::fs::remove_file(&path);
    }
}
