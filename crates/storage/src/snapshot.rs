//! Checkpoint snapshots: a consistent, CRC-guarded image of all live
//! engine state as of one WAL LSN.
//!
//! A snapshot is what lets the WAL stop being append-only-forever: once
//! `mmdb.snapshot` durably captures everything below LSN `S`, the log
//! prefix below `S` is redundant and may be truncated. Recovery loads
//! the snapshot first and replays only the WAL suffix past `S`; a
//! replica too far behind bootstraps from the same state.
//!
//! The file is written crash-safely: the full image goes to
//! `mmdb.snapshot.tmp`, is fsynced, and is atomically renamed over
//! `mmdb.snapshot` — a crash at any point leaves either the old or the
//! new snapshot intact, never a torn one (a leftover `.tmp` is ignored
//! and removed on the next open).
//!
//! Layout: `magic (8) | crc32 (4) | body`, where `body` is
//! `snapshot_lsn: u64 | count: u64 | count × entry` and each entry is
//! `domain_len: u32 | domain | key_len: u32 | key | value_len: u32 |
//! value` (all little-endian). Only live values appear — a snapshot has
//! no tombstones, deletes exist only in the log.

use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use mmdb_types::{Error, Result};

use crate::wal::{crc32, Lsn};

/// File name of the current snapshot inside a database directory.
pub const SNAPSHOT_FILE: &str = "mmdb.snapshot";

/// File name of the in-flight snapshot (renamed over [`SNAPSHOT_FILE`]).
pub const SNAPSHOT_TMP_FILE: &str = "mmdb.snapshot.tmp";

const SNAPSHOT_MAGIC: [u8; 8] = *b"MMDBSNP1";

/// One live (domain, key, value) triple of engine state. The same shape
/// the WAL's redo ops carry, so snapshot load reuses the recovery
/// apply path unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotEntry {
    /// Model routing tag, e.g. `"doc/orders"`.
    pub domain: String,
    /// Encoded key.
    pub key: Vec<u8>,
    /// Encoded live value (snapshots never hold deletes).
    pub value: Vec<u8>,
}

fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join(SNAPSHOT_FILE)
}

fn encode_body(snapshot_lsn: Lsn, entries: &[SnapshotEntry]) -> Vec<u8> {
    let mut b = Vec::new();
    b.extend_from_slice(&snapshot_lsn.to_le_bytes());
    b.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for e in entries {
        b.extend_from_slice(&(e.domain.len() as u32).to_le_bytes());
        b.extend_from_slice(e.domain.as_bytes());
        b.extend_from_slice(&(e.key.len() as u32).to_le_bytes());
        b.extend_from_slice(&e.key);
        b.extend_from_slice(&(e.value.len() as u32).to_le_bytes());
        b.extend_from_slice(&e.value);
    }
    b
}

/// Write a snapshot of `entries` at `snapshot_lsn` into `dir`,
/// crash-safely (write-temp + fsync + atomic rename + dir fsync).
/// Returns the snapshot's size in bytes.
pub fn write_snapshot(dir: &Path, snapshot_lsn: Lsn, entries: &[SnapshotEntry]) -> Result<u64> {
    let body = encode_body(snapshot_lsn, entries);
    let mut framed = Vec::with_capacity(body.len() + 12);
    framed.extend_from_slice(&SNAPSHOT_MAGIC);
    framed.extend_from_slice(&crc32(&body).to_le_bytes());
    framed.extend_from_slice(&body);

    // Failpoint `ckpt.snapshot_write`: `short` tears the temp file
    // mid-write (a crash during serialization) — harmless, because the
    // real snapshot is only ever replaced by the rename below.
    let write_len = match mmdb_fault::eval("ckpt.snapshot_write") {
        mmdb_fault::Decision::Proceed => framed.len(),
        mmdb_fault::Decision::Fail(msg) => {
            return Err(Error::Storage(format!("snapshot write: {msg}")))
        }
        mmdb_fault::Decision::Short => framed.len() / 2,
    };
    let tmp = dir.join(SNAPSHOT_TMP_FILE);
    let mut out =
        File::create(&tmp).map_err(|e| Error::Storage(format!("snapshot tmp: {e}")))?;
    out.write_all(&framed[..write_len])
        // lint: allow(blocking, snapshot durability is the contract; only reached via an explicit checkpoint)
        .and_then(|()| out.sync_all())
        .map_err(|e| Error::Storage(format!("snapshot write: {e}")))?;
    drop(out);
    if write_len < framed.len() {
        return Err(Error::Storage("snapshot write: torn write (injected)".into()));
    }
    // Failpoint `ckpt.snapshot_rename`: the image is complete but never
    // published — reopen must keep using the previous snapshot (or none).
    mmdb_fault::fail_point!("ckpt.snapshot_rename", |msg| Error::Storage(format!(
        "snapshot rename: {msg}"
    )));
    std::fs::rename(&tmp, snapshot_path(dir))
        .map_err(|e| Error::Storage(format!("snapshot rename: {e}")))?;
    if let Ok(d) = File::open(dir) {
        // lint: allow(blocking, directory fsync publishes the snapshot rename; checkpoint path only)
        let _ = d.sync_all();
    }
    Ok(framed.len() as u64)
}

/// Load the snapshot from `dir`. `Ok(None)` when no snapshot exists;
/// [`Error::Corruption`] when one exists but fails its integrity checks
/// (a published snapshot is never torn, so that is real corruption).
pub fn read_snapshot(dir: &Path) -> Result<Option<(Lsn, Vec<SnapshotEntry>)>> {
    let mut data = Vec::new();
    match File::open(snapshot_path(dir)) {
        Ok(mut f) => {
            f.read_to_end(&mut data)
                .map_err(|e| Error::Storage(format!("read snapshot: {e}")))?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(Error::Storage(format!("open snapshot: {e}"))),
    }
    let corrupt = |why: &str| Error::Corruption(format!("snapshot: {why}"));
    if data.len() < 12 || data[..8] != SNAPSHOT_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let crc = u32::from_le_bytes(data[8..12].try_into().unwrap_or([0; 4]));
    let body = &data[12..];
    if crc32(body) != crc {
        return Err(corrupt("crc mismatch"));
    }
    fn take<'a>(buf: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
        if buf.len() < n {
            return None;
        }
        let (head, rest) = buf.split_at(n);
        *buf = rest;
        Some(head)
    }
    let mut buf = body;
    let short = || corrupt("short body");
    let u64_at = |b: &[u8]| u64::from_le_bytes(b.try_into().unwrap_or([0; 8]));
    let u32_at = |b: &[u8]| u32::from_le_bytes(b.try_into().unwrap_or([0; 4]));
    let snapshot_lsn = u64_at(take(&mut buf, 8).ok_or_else(short)?);
    let count = u64_at(take(&mut buf, 8).ok_or_else(short)?) as usize;
    let mut entries = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let dlen = u32_at(take(&mut buf, 4).ok_or_else(short)?) as usize;
        let domain = std::str::from_utf8(take(&mut buf, dlen).ok_or_else(short)?)
            .map_err(|_| corrupt("non-utf8 domain"))?
            .to_string();
        let klen = u32_at(take(&mut buf, 4).ok_or_else(short)?) as usize;
        let key = take(&mut buf, klen).ok_or_else(short)?.to_vec();
        let vlen = u32_at(take(&mut buf, 4).ok_or_else(short)?) as usize;
        let value = take(&mut buf, vlen).ok_or_else(short)?.to_vec();
        entries.push(SnapshotEntry { domain, key, value });
    }
    if !buf.is_empty() {
        return Err(corrupt("trailing bytes"));
    }
    Ok(Some((snapshot_lsn, entries)))
}

/// Remove a leftover in-flight snapshot (a crash between write and
/// rename). Called on database open; best-effort.
pub fn remove_stale_tmp(dir: &Path) {
    let _ = std::fs::remove_file(dir.join(SNAPSHOT_TMP_FILE));
}

/// Age of the published snapshot, from the file's mtime (the atomic
/// rename stamps it at checkpoint completion). `None` when no snapshot
/// exists or the filesystem can't answer; clock skew that puts the
/// mtime in the future clamps to zero rather than failing. This is what
/// lets `seconds_since_checkpoint` survive a process restart.
pub fn snapshot_age(dir: &Path) -> Option<std::time::Duration> {
    let mtime = std::fs::metadata(snapshot_path(dir)).ok()?.modified().ok()?;
    Some(mtime.elapsed().unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries() -> Vec<SnapshotEntry> {
        vec![
            SnapshotEntry { domain: "ddl/table".into(), key: b"t".to_vec(), value: b"s".to_vec() },
            SnapshotEntry {
                domain: "doc/orders".into(),
                key: b"o1".to_vec(),
                value: b"{\"total\":9}".to_vec(),
            },
            SnapshotEntry { domain: "kv/cache".into(), key: b"k".to_vec(), value: vec![] },
        ]
    }

    fn fresh_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mmdb-snap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn snapshot_round_trips() {
        let dir = fresh_dir("rt");
        assert_eq!(read_snapshot(&dir).unwrap(), None);
        let wrote = write_snapshot(&dir, 4242, &entries()).unwrap();
        assert!(wrote > 12);
        let (lsn, got) = read_snapshot(&dir).unwrap().unwrap();
        assert_eq!(lsn, 4242);
        assert_eq!(got, entries());
        // A newer snapshot atomically replaces the old one.
        write_snapshot(&dir, 9000, &entries()[..1]).unwrap();
        let (lsn, got) = read_snapshot(&dir).unwrap().unwrap();
        assert_eq!(lsn, 9000);
        assert_eq!(got.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_is_a_typed_error() {
        let dir = fresh_dir("corrupt");
        write_snapshot(&dir, 1, &entries()).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(read_snapshot(&dir).unwrap_err().kind(), "corruption");
        std::fs::write(&path, b"junk").unwrap();
        assert_eq!(read_snapshot(&dir).unwrap_err().kind(), "corruption");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_tmp_is_ignored_and_removable() {
        let dir = fresh_dir("tmp");
        write_snapshot(&dir, 7, &entries()).unwrap();
        std::fs::write(dir.join(SNAPSHOT_TMP_FILE), b"half-written garbage").unwrap();
        let (lsn, _) = read_snapshot(&dir).unwrap().unwrap();
        assert_eq!(lsn, 7, "a leftover tmp never shadows the published snapshot");
        remove_stale_tmp(&dir);
        assert!(!dir.join(SNAPSHOT_TMP_FILE).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
