//! Slotted pages — the classical in-page record layout.
//!
//! Layout of an 8 KiB page:
//!
//! ```text
//! +--------------+-----------------------+------------------+
//! | header 16 B  | slot array (grows →)  | ← record payload |
//! +--------------+-----------------------+------------------+
//! ```
//!
//! The header stores slot count and the free-space boundary. Each 4-byte
//! slot holds `(offset: u16, len: u16)`; a deleted slot has `len == 0` and
//! `offset == 0`. Record payloads grow from the end of the page toward the
//! slot array; [`SlottedPage::compact`] reclaims holes left by deletes and
//! in-place-shrink updates.

use crate::disk::PAGE_SIZE;
use mmdb_types::{Error, Result};

const HEADER_SIZE: usize = 16;
const SLOT_SIZE: usize = 4;
/// Largest payload a single page can host.
pub const MAX_RECORD_SIZE: usize = PAGE_SIZE - HEADER_SIZE - SLOT_SIZE;

/// A typed view over one page's bytes providing slotted-record operations.
///
/// The page owns its buffer (a boxed array) so it can live in the buffer
/// pool frame table.
pub struct SlottedPage {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Default for SlottedPage {
    fn default() -> Self {
        Self::new()
    }
}

impl SlottedPage {
    /// A fresh, empty page.
    pub fn new() -> Self {
        let mut p = SlottedPage {
            data: vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().expect("size"), // lint: allow(panic, vec of exactly PAGE_SIZE bytes; fixed-size conversion is infallible)
        };
        p.set_slot_count(0);
        p.set_free_end(PAGE_SIZE as u16);
        p
    }

    /// Wrap raw page bytes read from disk.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() != PAGE_SIZE {
            return Err(Error::Storage(format!(
                "page must be {PAGE_SIZE} bytes, got {}",
                bytes.len()
            )));
        }
        let mut data = vec![0u8; PAGE_SIZE].into_boxed_slice();
        data.copy_from_slice(bytes);
        let p = SlottedPage { data: data.try_into().expect("size") }; // lint: allow(panic, boxed slice of exactly PAGE_SIZE bytes; fixed-size conversion is infallible)
        // Sanity-check the header so corrupt pages fail fast.
        let slots = p.slot_count() as usize;
        let free_end = p.free_end() as usize;
        if HEADER_SIZE + slots * SLOT_SIZE > free_end || free_end > PAGE_SIZE {
            return Err(Error::Corruption("corrupt page header".into()));
        }
        Ok(p)
    }

    /// The raw bytes (for writing back to disk).
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    fn slot_count(&self) -> u16 {
        u16::from_le_bytes([self.data[0], self.data[1]])
    }

    fn set_slot_count(&mut self, n: u16) {
        self.data[0..2].copy_from_slice(&n.to_le_bytes());
    }

    fn free_end(&self) -> u16 {
        u16::from_le_bytes([self.data[2], self.data[3]])
    }

    fn set_free_end(&mut self, v: u16) {
        self.data[2..4].copy_from_slice(&v.to_le_bytes());
    }

    fn slot(&self, idx: u16) -> (u16, u16) {
        let base = HEADER_SIZE + idx as usize * SLOT_SIZE;
        (
            u16::from_le_bytes([self.data[base], self.data[base + 1]]),
            u16::from_le_bytes([self.data[base + 2], self.data[base + 3]]),
        )
    }

    fn set_slot(&mut self, idx: u16, offset: u16, len: u16) {
        let base = HEADER_SIZE + idx as usize * SLOT_SIZE;
        self.data[base..base + 2].copy_from_slice(&offset.to_le_bytes());
        self.data[base + 2..base + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Contiguous free bytes between the slot array and the payload area.
    pub fn contiguous_free(&self) -> usize {
        self.free_end() as usize - (HEADER_SIZE + self.slot_count() as usize * SLOT_SIZE)
    }

    /// Total reclaimable free bytes (contiguous + holes from deletes).
    pub fn total_free(&self) -> usize {
        let live: usize = (0..self.slot_count())
            .map(|i| self.slot(i).1 as usize)
            .sum();
        PAGE_SIZE - HEADER_SIZE - self.slot_count() as usize * SLOT_SIZE - live
    }

    /// Number of slots (live + dead).
    pub fn slots(&self) -> u16 {
        self.slot_count()
    }

    /// Whether `len` more bytes fit, possibly after compaction, possibly
    /// reusing a dead slot.
    pub fn fits(&self, len: usize) -> bool {
        let slot_cost = if self.find_dead_slot().is_some() { 0 } else { SLOT_SIZE };
        self.total_free() >= len + slot_cost
    }

    fn find_dead_slot(&self) -> Option<u16> {
        (0..self.slot_count()).find(|&i| {
            let (off, len) = self.slot(i);
            off == 0 && len == 0
        })
    }

    /// Insert a record, returning its slot number.
    pub fn insert(&mut self, record: &[u8]) -> Result<u16> {
        if record.len() > MAX_RECORD_SIZE {
            return Err(Error::Storage(format!(
                "record of {} bytes exceeds page capacity",
                record.len()
            )));
        }
        if record.is_empty() {
            return Err(Error::Storage("empty records are not storable".into()));
        }
        if !self.fits(record.len()) {
            return Err(Error::Storage("page full".into()));
        }
        let reuse = self.find_dead_slot();
        let slot_cost = if reuse.is_some() { 0 } else { SLOT_SIZE };
        if self.contiguous_free() < record.len() + slot_cost {
            self.compact();
        }
        let new_end = self.free_end() as usize - record.len();
        self.data[new_end..new_end + record.len()].copy_from_slice(record);
        self.set_free_end(new_end as u16);
        let slot = match reuse {
            Some(s) => s,
            None => {
                let s = self.slot_count();
                self.set_slot_count(s + 1);
                s
            }
        };
        self.set_slot(slot, new_end as u16, record.len() as u16);
        Ok(slot)
    }

    /// Read a record by slot.
    pub fn get(&self, slot: u16) -> Result<&[u8]> {
        if slot >= self.slot_count() {
            return Err(Error::Storage(format!("slot {slot} out of range")));
        }
        let (off, len) = self.slot(slot);
        if len == 0 {
            return Err(Error::NotFound(format!("slot {slot} is deleted")));
        }
        Ok(&self.data[off as usize..off as usize + len as usize])
    }

    /// Delete a record; the slot is reusable and its space reclaimable.
    pub fn delete(&mut self, slot: u16) -> Result<()> {
        self.get(slot)?; // range & liveness check
        self.set_slot(slot, 0, 0);
        Ok(())
    }

    /// Update in place. Shrinking/equal updates reuse the old location;
    /// growing updates need page space (caller must relocate when this
    /// returns `Err(Storage("page full"))`).
    pub fn update(&mut self, slot: u16, record: &[u8]) -> Result<()> {
        let (off, len) = {
            self.get(slot)?;
            self.slot(slot)
        };
        if record.len() <= len as usize {
            let off = off as usize;
            self.data[off..off + record.len()].copy_from_slice(record);
            self.set_slot(slot, off as u16, record.len() as u16);
            return Ok(());
        }
        // Grow: free the old space, then place like an insert into this slot.
        self.set_slot(slot, 0, 0);
        if self.total_free() < record.len() {
            // Restore the old record's slot before failing.
            self.set_slot(slot, off, len);
            return Err(Error::Storage("page full".into()));
        }
        if self.contiguous_free() < record.len() {
            self.compact();
        }
        let new_end = self.free_end() as usize - record.len();
        self.data[new_end..new_end + record.len()].copy_from_slice(record);
        self.set_free_end(new_end as u16);
        self.set_slot(slot, new_end as u16, record.len() as u16);
        Ok(())
    }

    /// Iterate live `(slot, record)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &[u8])> {
        (0..self.slot_count()).filter_map(move |i| {
            let (off, len) = self.slot(i);
            if len == 0 {
                None
            } else {
                Some((i, &self.data[off as usize..off as usize + len as usize]))
            }
        })
    }

    /// Rewrite all live records contiguously at the page end, eliminating
    /// holes. Slot numbers are stable (they are external identifiers).
    pub fn compact(&mut self) {
        let live: Vec<(u16, Vec<u8>)> = self
            .iter()
            .map(|(slot, rec)| (slot, rec.to_vec()))
            .collect();
        let mut end = PAGE_SIZE;
        for (slot, rec) in &live {
            end -= rec.len();
            self.data[end..end + rec.len()].copy_from_slice(rec);
            self.set_slot(*slot, end as u16, rec.len() as u16);
        }
        self.set_free_end(end as u16);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut p = SlottedPage::new();
        let a = p.insert(b"hello").unwrap();
        let b = p.insert(b"world!").unwrap();
        assert_eq!(p.get(a).unwrap(), b"hello");
        assert_eq!(p.get(b).unwrap(), b"world!");
        assert_ne!(a, b);
    }

    #[test]
    fn delete_frees_slot_for_reuse() {
        let mut p = SlottedPage::new();
        let a = p.insert(b"aaa").unwrap();
        let _b = p.insert(b"bbb").unwrap();
        p.delete(a).unwrap();
        assert!(p.get(a).is_err());
        let c = p.insert(b"ccc").unwrap();
        assert_eq!(c, a, "dead slot should be reused");
        assert_eq!(p.get(c).unwrap(), b"ccc");
    }

    #[test]
    fn update_shrink_and_grow() {
        let mut p = SlottedPage::new();
        let s = p.insert(b"0123456789").unwrap();
        p.update(s, b"abc").unwrap();
        assert_eq!(p.get(s).unwrap(), b"abc");
        p.update(s, b"a longer record than before").unwrap();
        assert_eq!(p.get(s).unwrap(), b"a longer record than before");
    }

    #[test]
    fn fill_page_then_overflow() {
        let mut p = SlottedPage::new();
        let rec = vec![7u8; 100];
        let mut n = 0;
        while p.fits(rec.len()) {
            p.insert(&rec).unwrap();
            n += 1;
        }
        assert!(n >= 70, "should fit ~78 x 104-byte entries, got {n}");
        assert!(matches!(p.insert(&rec), Err(Error::Storage(_))));
    }

    #[test]
    fn compaction_reclaims_holes() {
        let mut p = SlottedPage::new();
        let rec = vec![1u8; 1000];
        let mut slots = Vec::new();
        while p.fits(rec.len()) {
            slots.push(p.insert(&rec).unwrap());
        }
        // Delete every other record: total free grows but contiguous
        // space stays small until compaction.
        for s in slots.iter().step_by(2) {
            p.delete(*s).unwrap();
        }
        let big = vec![2u8; 2500];
        assert!(p.fits(big.len()));
        let s = p.insert(&big).unwrap(); // triggers internal compaction
        assert_eq!(p.get(s).unwrap(), &big[..]);
        // Survivors are intact after compaction.
        for s in slots.iter().skip(1).step_by(2) {
            assert_eq!(p.get(*s).unwrap(), &rec[..]);
        }
    }

    #[test]
    fn disk_roundtrip_via_bytes() {
        let mut p = SlottedPage::new();
        let s = p.insert(b"persist me").unwrap();
        let copy = SlottedPage::from_bytes(p.bytes().as_slice()).unwrap();
        assert_eq!(copy.get(s).unwrap(), b"persist me");
    }

    #[test]
    fn corrupt_header_rejected() {
        let mut bytes = vec![0u8; PAGE_SIZE];
        bytes[0] = 0xFF; // absurd slot count
        bytes[1] = 0xFF;
        assert!(SlottedPage::from_bytes(&bytes).is_err());
        assert!(SlottedPage::from_bytes(&[0u8; 7]).is_err());
    }

    #[test]
    fn oversized_and_empty_records_rejected() {
        let mut p = SlottedPage::new();
        assert!(p.insert(&vec![0u8; PAGE_SIZE]).is_err());
        assert!(p.insert(b"").is_err());
    }

    #[test]
    fn failed_grow_update_preserves_old_record() {
        let mut p = SlottedPage::new();
        let s = p.insert(b"small").unwrap();
        // Fill the page so growth cannot succeed.
        while p.fits(64) {
            p.insert(&[9u8; 64]).unwrap();
        }
        let huge = vec![3u8; 7000];
        assert!(p.update(s, &huge).is_err());
        assert_eq!(p.get(s).unwrap(), b"small", "old record must survive a failed update");
    }

    #[test]
    fn iter_skips_deleted() {
        let mut p = SlottedPage::new();
        let a = p.insert(b"a").unwrap();
        let b = p.insert(b"b").unwrap();
        let c = p.insert(b"c").unwrap();
        p.delete(b).unwrap();
        let live: Vec<u16> = p.iter().map(|(s, _)| s).collect();
        assert_eq!(live, vec![a, c]);
    }
}
