//! # mmdb-storage — the storage substrate
//!
//! Every storage strategy the EDBT 2017 tutorial surveys lives here:
//!
//! * [`page`] / [`disk`] / [`buffer`] / [`heap`] — the classical
//!   relational-style stack: 8 KiB slotted pages in files, a CLOCK buffer
//!   pool, heap record files addressed by [`heap::RecordId`]. PostgreSQL,
//!   Oracle and DB2 store their relational *and* their JSON/XML payloads
//!   this way, so every mmdb model can too.
//! * [`wal`] — a redo-only write-ahead log with CRC-checked records and
//!   crash recovery, shared by all models (the tutorial's "one system
//!   implements fault tolerance" argument for multi-model databases).
//! * [`lsm`] — a memtable + SSTable log-structured merge engine in the
//!   style of Cassandra/Bigtable ("SSTables — proposed in Google system
//!   Bigtable"), used by the key/value model.
//! * [`logstore`] — OctopusDB's "one size fits all" architecture: a single
//!   central log of all writes, with optional *storage views* (row, column,
//!   index) materialized from it, and a view advisor that turns query
//!   optimization + index selection into one storage-view-selection
//!   problem. Benchmarked as ablation E7.

pub mod buffer;
pub mod disk;
pub mod heap;
pub mod logstore;
pub mod lsm;
pub mod page;
pub mod snapshot;
pub mod wal;

pub use buffer::BufferPool;
pub use disk::{DiskManager, PageId, PAGE_SIZE};
pub use heap::{HeapFile, RecordId};
pub use snapshot::SnapshotEntry;
pub use wal::{Lsn, TailedRecord, Wal, WalRecord};

/// Every failpoint site this crate declares (see `mmdb-fault`). The
/// crash-recovery torture suite iterates this roster, so adding a
/// `fail_point!` here without extending the list fails that suite.
pub const FAILPOINT_SITES: &[&str] = &[
    "wal.append",
    "wal.sync",
    "disk.write_page",
    "buffer.flush",
    "lsm.flush",
    "lsm.compact",
    "ckpt.snapshot_write",
    "ckpt.snapshot_rename",
    "ckpt.marker_append",
    "ckpt.wal_truncate",
];
