//! Heap record files: an unordered collection of variable-length records
//! spread over slotted pages, addressed by stable [`RecordId`]s.
//!
//! This is the storage shape under every PostgreSQL table — and, per the
//! tutorial's survey, under the JSON/XML columns those tables carry. The
//! heap keeps a simple free-space map (pages with room) so inserts don't
//! rescan the file.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::buffer::BufferPool;
use crate::disk::PageId;
use mmdb_types::{Error, Result};

/// Stable address of a record: page number plus slot within the page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId {
    /// Page the record lives on.
    pub page: PageId,
    /// Slot within that page.
    pub slot: u16,
}

impl std::fmt::Display for RecordId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.page, self.slot)
    }
}

/// A heap file of records.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    state: Mutex<HeapState>,
}

struct HeapState {
    /// All pages of this heap, in allocation order.
    pages: Vec<PageId>,
    /// Pages believed to have free space (approximate; validated on use).
    free_pages: Vec<PageId>,
    /// Live record count.
    len: usize,
}

impl HeapFile {
    /// Create an empty heap over the given pool.
    pub fn create(pool: Arc<BufferPool>) -> Result<Self> {
        Ok(HeapFile {
            pool,
            state: Mutex::new(HeapState { pages: Vec::new(), free_pages: Vec::new(), len: 0 }),
        })
    }

    /// Rebuild heap bookkeeping from an explicit page list (used when a
    /// catalog re-opens a persisted heap).
    pub fn open(pool: Arc<BufferPool>, pages: Vec<PageId>) -> Result<Self> {
        let mut len = 0usize;
        let mut free_pages = Vec::new();
        for &pid in &pages {
            let (live, has_room) =
                pool.with_page(pid, |p| (p.iter().count(), p.fits(64)))?;
            len += live;
            if has_room {
                free_pages.push(pid);
            }
        }
        Ok(HeapFile { pool, state: Mutex::new(HeapState { pages, free_pages, len }) })
    }

    /// Pages owned by this heap (for catalog persistence).
    pub fn pages(&self) -> Vec<PageId> {
        self.state.lock().pages.clone()
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.state.lock().len
    }

    /// True when no live records exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert a record, returning its id.
    pub fn insert(&self, record: &[u8]) -> Result<RecordId> {
        let mut state = self.state.lock();
        // Try pages from the free list, last first (most recently added).
        while let Some(&pid) = state.free_pages.last() {
            let slot = self.pool.with_page_mut(pid, |p| {
                if p.fits(record.len()) {
                    p.insert(record).map(Some)
                } else {
                    Ok(None)
                }
            })??;
            match slot {
                Some(slot) => {
                    state.len += 1;
                    return Ok(RecordId { page: pid, slot });
                }
                None => {
                    state.free_pages.pop();
                }
            }
        }
        // No page had room: allocate a new one.
        let pid = self.pool.allocate_page()?;
        let slot = self.pool.with_page_mut(pid, |p| p.insert(record))??;
        state.pages.push(pid);
        state.free_pages.push(pid);
        state.len += 1;
        Ok(RecordId { page: pid, slot })
    }

    /// Fetch a record by id.
    pub fn get(&self, id: RecordId) -> Result<Vec<u8>> {
        self.pool
            .with_page(id.page, |p| p.get(id.slot).map(<[u8]>::to_vec))?
    }

    /// Delete a record by id.
    pub fn delete(&self, id: RecordId) -> Result<()> {
        self.pool.with_page_mut(id.page, |p| p.delete(id.slot))??;
        let mut state = self.state.lock();
        state.len -= 1;
        if !state.free_pages.contains(&id.page) {
            state.free_pages.push(id.page);
        }
        Ok(())
    }

    /// Update a record in place when possible; relocates to another page
    /// when the new payload no longer fits, returning the (possibly new) id.
    pub fn update(&self, id: RecordId, record: &[u8]) -> Result<RecordId> {
        let in_place = self.pool.with_page_mut(id.page, |p| match p.update(id.slot, record) {
            Ok(()) => Ok(true),
            Err(Error::Storage(msg)) if msg == "page full" => Ok(false),
            Err(e) => Err(e),
        })??;
        if in_place {
            return Ok(id);
        }
        self.delete(id)?;
        self.insert(record)
    }

    /// Full scan, materializing `(id, record)` pairs page by page.
    pub fn scan(&self) -> Result<Vec<(RecordId, Vec<u8>)>> {
        let pages = self.state.lock().pages.clone();
        let mut out = Vec::new();
        for pid in pages {
            self.pool.with_page(pid, |p| {
                for (slot, rec) in p.iter() {
                    out.push((RecordId { page: pid, slot }, rec.to_vec()));
                }
            })?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskManager;

    fn heap() -> HeapFile {
        let pool = Arc::new(BufferPool::new(Arc::new(DiskManager::in_memory()), 8));
        HeapFile::create(pool).unwrap()
    }

    #[test]
    fn insert_get_delete() {
        let h = heap();
        let id = h.insert(b"record one").unwrap();
        assert_eq!(h.get(id).unwrap(), b"record one");
        assert_eq!(h.len(), 1);
        h.delete(id).unwrap();
        assert!(h.get(id).is_err());
        assert!(h.is_empty());
    }

    #[test]
    fn spans_many_pages() {
        let h = heap();
        let big = vec![5u8; 3000]; // ~2 per page
        let ids: Vec<_> = (0..20).map(|_| h.insert(&big).unwrap()).collect();
        assert!(h.pages().len() >= 8, "3000B records should spread over pages");
        for id in &ids {
            assert_eq!(h.get(*id).unwrap().len(), 3000);
        }
        assert_eq!(h.len(), 20);
    }

    #[test]
    fn scan_returns_all_live_records() {
        let h = heap();
        let a = h.insert(b"a").unwrap();
        let b = h.insert(b"b").unwrap();
        let c = h.insert(b"c").unwrap();
        h.delete(b).unwrap();
        let got = h.scan().unwrap();
        let ids: Vec<_> = got.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![a, c]);
    }

    #[test]
    fn update_in_place_and_relocating() {
        let h = heap();
        let id = h.insert(&vec![1u8; 4000]).unwrap();
        // Fill the id's page so a grow must relocate.
        while h
            .pool
            .with_page(id.page, |p| p.fits(1000))
            .unwrap()
        {
            h.insert(&vec![2u8; 1000]).unwrap();
        }
        let shrunk = h.update(id, b"tiny").unwrap();
        assert_eq!(shrunk, id, "shrinking update stays in place");
        let grown = h.update(shrunk, &vec![3u8; 7000]).unwrap();
        assert_ne!(grown.page, id.page, "growing update must relocate");
        assert_eq!(h.get(grown).unwrap(), vec![3u8; 7000]);
    }

    #[test]
    fn deleted_space_is_reused() {
        let h = heap();
        let ids: Vec<_> = (0..10).map(|_| h.insert(&vec![9u8; 700]).unwrap()).collect();
        let pages_before = h.pages().len();
        for id in ids {
            h.delete(id).unwrap();
        }
        for _ in 0..10 {
            h.insert(&vec![8u8; 700]).unwrap();
        }
        assert_eq!(h.pages().len(), pages_before, "reinserts should reuse freed pages");
    }

    #[test]
    fn open_rebuilds_state() {
        let pool = Arc::new(BufferPool::new(Arc::new(DiskManager::in_memory()), 8));
        let h = HeapFile::create(Arc::clone(&pool)).unwrap();
        let id = h.insert(b"persisted").unwrap();
        h.insert(b"two").unwrap();
        let pages = h.pages();
        drop(h);
        let h2 = HeapFile::open(pool, pages).unwrap();
        assert_eq!(h2.len(), 2);
        assert_eq!(h2.get(id).unwrap(), b"persisted");
        // New inserts land in existing free space.
        h2.insert(b"three").unwrap();
        assert_eq!(h2.len(), 3);
    }
}
