//! A CLOCK buffer pool over a [`DiskManager`].
//!
//! The pool caches a fixed number of pages. Callers access pages through
//! [`BufferPool::with_page`] / [`BufferPool::with_page_mut`], which pin the
//! frame for the duration of the closure; eviction (second-chance CLOCK)
//! only considers unpinned frames and writes dirty victims back first.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::disk::{DiskManager, PageId, PAGE_SIZE};
use crate::page::SlottedPage;
use mmdb_types::{Error, Result};

struct Frame {
    page_id: PageId,
    page: SlottedPage,
    dirty: bool,
    pins: u32,
    referenced: bool,
}

struct PoolInner {
    frames: Vec<Option<Frame>>,
    map: HashMap<PageId, usize>,
    clock_hand: usize,
    hits: u64,
    misses: u64,
}

/// Shared, thread-safe buffer pool of slotted pages.
pub struct BufferPool {
    disk: Arc<DiskManager>,
    inner: Mutex<PoolInner>,
    capacity: usize,
}

/// Cache statistics for observability and the storage benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Lookups served from memory.
    pub hits: u64,
    /// Lookups that had to read from the backend.
    pub misses: u64,
}

impl BufferPool {
    /// Create a pool of `capacity` frames over `disk`.
    pub fn new(disk: Arc<DiskManager>, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            disk,
            inner: Mutex::new(PoolInner {
                frames: (0..capacity).map(|_| None).collect(),
                map: HashMap::new(),
                clock_hand: 0,
                hits: 0,
                misses: 0,
            }),
            capacity,
        }
    }

    /// The underlying disk manager (for page allocation).
    pub fn disk(&self) -> &Arc<DiskManager> {
        &self.disk
    }

    /// Allocate a fresh page and format it as an empty slotted page.
    pub fn allocate_page(&self) -> Result<PageId> {
        let id = self.disk.allocate();
        // Materialize the empty page so later reads of it succeed.
        self.disk.write_page(id, SlottedPage::new().bytes().as_slice())?;
        Ok(id)
    }

    /// Read access to a page. The frame is pinned for the closure's
    /// duration (the pool mutex is held, keeping the implementation simple;
    /// closures must not re-enter the pool for the *same* pool instance).
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&SlottedPage) -> R) -> Result<R> {
        let mut inner = self.inner.lock();
        let idx = self.load(&mut inner, id)?;
        let frame = inner.frames[idx].as_mut().expect("loaded"); // lint: allow(panic, load() just pinned this frame index, so the slot is occupied)
        frame.referenced = true;
        Ok(f(&frame.page))
    }

    /// Write access to a page; marks the frame dirty.
    pub fn with_page_mut<R>(
        &self,
        id: PageId,
        f: impl FnOnce(&mut SlottedPage) -> R,
    ) -> Result<R> {
        let mut inner = self.inner.lock();
        let idx = self.load(&mut inner, id)?;
        let frame = inner.frames[idx].as_mut().expect("loaded"); // lint: allow(panic, load() just pinned this frame index, so the slot is occupied)
        frame.referenced = true;
        frame.dirty = true;
        Ok(f(&mut frame.page))
    }

    fn load(&self, inner: &mut PoolInner, id: PageId) -> Result<usize> {
        if let Some(&idx) = inner.map.get(&id) {
            inner.hits += 1;
            return Ok(idx);
        }
        inner.misses += 1;
        let idx = self.find_victim(inner)?;
        if let Some(old) = inner.frames[idx].take() {
            if old.dirty {
                self.disk.write_page(old.page_id, old.page.bytes().as_slice())?;
            }
            inner.map.remove(&old.page_id);
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        self.disk.read_page(id, &mut buf)?;
        let page = SlottedPage::from_bytes(&buf)?;
        inner.frames[idx] = Some(Frame {
            page_id: id,
            page,
            dirty: false,
            pins: 0,
            referenced: true,
        });
        inner.map.insert(id, idx);
        Ok(idx)
    }

    fn find_victim(&self, inner: &mut PoolInner) -> Result<usize> {
        // First pass: any empty frame.
        if let Some(idx) = inner.frames.iter().position(Option::is_none) {
            return Ok(idx);
        }
        // CLOCK: sweep until a frame with referenced == false and no pins.
        // Two full sweeps guarantee termination when nothing is pinned.
        for _ in 0..self.capacity * 2 {
            let idx = inner.clock_hand;
            inner.clock_hand = (inner.clock_hand + 1) % self.capacity;
            let frame = inner.frames[idx].as_mut().expect("full"); // lint: allow(panic, eviction only runs once every frame slot is occupied)
            if frame.pins > 0 {
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
            } else {
                return Ok(idx);
            }
        }
        Err(Error::Storage("buffer pool exhausted: all frames pinned".into()))
    }

    /// Write all dirty frames back and fsync.
    pub fn flush_all(&self) -> Result<()> {
        mmdb_fault::fail_point!("buffer.flush", |msg| Error::Storage(format!(
            "buffer flush: {msg}"
        )));
        let mut inner = self.inner.lock();
        for frame in inner.frames.iter_mut().flatten() {
            if frame.dirty {
                self.disk.write_page(frame.page_id, frame.page.bytes().as_slice())?;
                frame.dirty = false;
            }
        }
        self.disk.sync()
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> PoolStats {
        let inner = self.inner.lock();
        PoolStats { hits: inner.hits, misses: inner.misses }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(frames: usize) -> BufferPool {
        BufferPool::new(Arc::new(DiskManager::in_memory()), frames)
    }

    #[test]
    fn read_your_writes_through_cache() {
        let bp = pool(4);
        let id = bp.allocate_page().unwrap();
        let slot = bp.with_page_mut(id, |p| p.insert(b"cached")).unwrap().unwrap();
        let data = bp.with_page(id, |p| p.get(slot).map(<[u8]>::to_vec)).unwrap().unwrap();
        assert_eq!(data, b"cached");
    }

    #[test]
    fn eviction_writes_dirty_pages_back() {
        let bp = pool(2);
        let ids: Vec<_> = (0..6).map(|_| bp.allocate_page().unwrap()).collect();
        let mut slots = Vec::new();
        for (i, &id) in ids.iter().enumerate() {
            let rec = format!("record-{i}");
            slots.push(bp.with_page_mut(id, |p| p.insert(rec.as_bytes())).unwrap().unwrap());
        }
        // With 2 frames and 6 pages, most pages were evicted; re-read all.
        for (i, &id) in ids.iter().enumerate() {
            let rec = bp
                .with_page(id, |p| p.get(slots[i]).map(<[u8]>::to_vec))
                .unwrap()
                .unwrap();
            assert_eq!(rec, format!("record-{i}").as_bytes());
        }
        let s = bp.stats();
        assert!(s.misses >= 6, "evictions should force re-reads: {s:?}");
    }

    #[test]
    fn hits_counted_for_resident_pages() {
        let bp = pool(4);
        let id = bp.allocate_page().unwrap();
        bp.with_page_mut(id, |p| p.insert(b"x")).unwrap().unwrap();
        for _ in 0..10 {
            bp.with_page(id, |_| ()).unwrap();
        }
        let s = bp.stats();
        assert!(s.hits >= 10);
    }

    #[test]
    fn concurrent_access_is_safe_and_consistent() {
        use std::sync::Arc as A;
        let bp = A::new(pool(4));
        let ids: Vec<_> = (0..8).map(|_| bp.allocate_page().unwrap()).collect();
        // Seed one record per page.
        let slots: Vec<u16> = ids
            .iter()
            .map(|&id| bp.with_page_mut(id, |p| p.insert(b"seed")).unwrap().unwrap())
            .collect();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let bp = A::clone(&bp);
                let ids = ids.clone();
                let slots = slots.clone();
                std::thread::spawn(move || {
                    for i in 0..200 {
                        let k = (t * 31 + i) % ids.len();
                        let data = bp
                            .with_page(ids[k], |p| p.get(slots[k]).map(<[u8]>::to_vec))
                            .unwrap()
                            .unwrap();
                        assert_eq!(data, b"seed");
                        // Interleave writes to other slots.
                        bp.with_page_mut(ids[k], |p| {
                            let s = p.insert(b"tmp").unwrap();
                            p.delete(s).unwrap();
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        for (id, slot) in ids.iter().zip(&slots) {
            let data = bp.with_page(*id, |p| p.get(*slot).map(<[u8]>::to_vec)).unwrap().unwrap();
            assert_eq!(data, b"seed");
        }
    }

    #[test]
    fn flush_all_persists_to_disk() {
        let disk = Arc::new(DiskManager::in_memory());
        let bp = BufferPool::new(Arc::clone(&disk), 2);
        let id = bp.allocate_page().unwrap();
        let slot = bp.with_page_mut(id, |p| p.insert(b"durable")).unwrap().unwrap();
        bp.flush_all().unwrap();
        // Bypass the pool and read the raw page.
        let mut buf = vec![0u8; PAGE_SIZE];
        disk.read_page(id, &mut buf).unwrap();
        let page = SlottedPage::from_bytes(&buf).unwrap();
        assert_eq!(page.get(slot).unwrap(), b"durable");
    }
}
