//! # mmdb-repl — log-shipping replication
//!
//! Streams the primary's WAL to read replicas and to `SUBSCRIBE`d
//! change-feed clients over the ordinary `mmdb-protocol` connection.
//! Three pieces:
//!
//! * [`feed`] — the wire shapes of the stream: raw WAL record frames
//!   (for replicas), heartbeats carrying the primary's tail LSN, and
//!   decoded committed-write CDC events (for `SUBSCRIBE` clients),
//!   plus [`feed::CdcBuffer`] which turns a record stream into
//!   committed-only events.
//! * [`status`] — [`ReplStatus`], the lock-free lag/health snapshot a
//!   replica exposes through `ADMIN HEALTH` and `ADMIN REPL`.
//! * [`replica`] — [`ReplicaRunner`], the background thread that
//!   connects to a primary with `REPLICA HELLO <lsn>`, applies
//!   streamed transactions through [`mmdb_txn::MvccStore::apply_replicated`]
//!   (the same install path crash recovery uses, so replica state is
//!   byte-identical to a reopened primary), and reconnects with
//!   backoff when the primary goes away. A replica that loses its
//!   primary keeps serving reads — the store is latched read-only for
//!   the life of the process — and reports growing staleness.
//!
//! Resume correctness: a replica's `applied_lsn` only ever advances
//! past *complete* transactions (the primary serializes each
//! `Begin..Write*..Commit` block under its commit mutex, so blocks
//! never interleave in the log; only single `Abort` records can), so
//! reconnecting with `REPLICA HELLO <applied_lsn>` never re-applies a
//! half-seen transaction and never skips one.

pub mod feed;
pub mod replica;
pub mod status;

pub use feed::{heartbeat_frame, parse_frame, record_frame, CdcBuffer, Frame};
pub use replica::{ReplicaOptions, ReplicaRunner};
pub use status::ReplStatus;

/// Failpoint sites registered by this crate (active with the
/// `failpoints` feature; see `mmdb-fault`).
///
/// * `repl.apply` — evaluated on the replica just before a streamed
///   transaction is installed. `error` makes the replica drop the
///   connection and retry from its last applied LSN.
pub const FAILPOINT_SITES: &[&str] = &["repl.apply"];
