//! Wire shapes of the replication stream.
//!
//! After `REPLICA HELLO` or `SUBSCRIBE`, the server pushes framed
//! `Response::Change(Value)` messages. The payload `Value` is an
//! object discriminated by its `"type"` field:
//!
//! * `"record"` — one raw WAL record with its LSN bounds (replica
//!   stream). Keys and values travel as [`Value::Bytes`] so replay is
//!   byte-exact.
//! * `"heartbeat"` — the primary's current WAL tail LSN; sent when
//!   the stream is idle so replicas can measure staleness and confirm
//!   they are caught up.
//! * `"write"` — one committed write, decoded for human consumption
//!   (`SUBSCRIBE` change feed). Aborted transactions never produce
//!   `"write"` events; [`CdcBuffer`] holds writes back until their
//!   commit record arrives.

use std::collections::HashMap;

use mmdb_storage::wal::{Lsn, TailedRecord, TxId, WalRecord};
use mmdb_types::codec::value_from_bytes;
use mmdb_types::{Error, Result, Value};

/// One parsed frame of the replica stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A raw WAL record and its LSN bounds.
    Record(TailedRecord),
    /// Idle keep-alive carrying the primary's WAL tail.
    Heartbeat {
        /// The primary's `Wal::tail_lsn()` at send time.
        tail_lsn: Lsn,
    },
}

/// Encode one tailed WAL record as a stream frame.
pub fn record_frame(t: &TailedRecord) -> Value {
    let mut fields = vec![
        ("type", Value::str("record")),
        ("lsn", Value::int(t.lsn as i64)),
        ("next_lsn", Value::int(t.next_lsn as i64)),
    ];
    match &t.record {
        WalRecord::Begin { txid } => {
            fields.push(("kind", Value::str("begin")));
            fields.push(("txid", Value::int(*txid as i64)));
        }
        WalRecord::Write { txid, domain, key, value } => {
            fields.push(("kind", Value::str("write")));
            fields.push(("txid", Value::int(*txid as i64)));
            fields.push(("domain", Value::str(domain.clone())));
            fields.push(("key", Value::Bytes(key.clone())));
            fields.push((
                "value",
                match value {
                    Some(v) => Value::Bytes(v.clone()),
                    None => Value::Null,
                },
            ));
        }
        WalRecord::Commit { txid } => {
            fields.push(("kind", Value::str("commit")));
            fields.push(("txid", Value::int(*txid as i64)));
        }
        WalRecord::Abort { txid } => {
            fields.push(("kind", Value::str("abort")));
            fields.push(("txid", Value::int(*txid as i64)));
        }
        WalRecord::Checkpoint { snapshot_lsn } => {
            fields.push(("kind", Value::str("checkpoint")));
            fields.push(("snapshot_lsn", Value::int(*snapshot_lsn as i64)));
        }
    }
    Value::object(fields)
}

/// Frames for a snapshot bootstrap: the primary's live state at
/// `snapshot_lsn`, shipped as one synthetic transaction (txid 0) over
/// the ordinary record framing. A replica whose `REPLICA HELLO` LSN
/// fell below the primary's truncation horizon receives these instead
/// of the vanished log prefix: its normal apply path installs them like
/// any replicated transaction, and the commit frame's `next_lsn`
/// (`snapshot_lsn`) positions its resume cursor at the live tail.
///
/// `writes` are `(domain, key, encoded live value)` triples — snapshots
/// carry no deletes, so the replica applies txid 0 as a full state
/// *replace* (`MvccStore::apply_snapshot_replace`): keys it still holds
/// that are absent from the snapshot get synthesized tombstones, which
/// is how deletes that happened inside the truncated gap reach a stale
/// non-empty replica.
pub fn bootstrap_frames(snapshot_lsn: Lsn, writes: &[(String, Vec<u8>, Vec<u8>)]) -> Vec<Value> {
    let at = |record: WalRecord| {
        record_frame(&TailedRecord { lsn: snapshot_lsn, next_lsn: snapshot_lsn, record })
    };
    let mut frames = Vec::with_capacity(writes.len() + 2);
    frames.push(at(WalRecord::Begin { txid: 0 }));
    for (domain, key, value) in writes {
        frames.push(at(WalRecord::Write {
            txid: 0,
            domain: domain.clone(),
            key: key.clone(),
            value: Some(value.clone()),
        }));
    }
    frames.push(at(WalRecord::Commit { txid: 0 }));
    frames
}

/// Encode an idle heartbeat carrying the primary's WAL tail.
pub fn heartbeat_frame(tail_lsn: Lsn) -> Value {
    Value::object([
        ("type", Value::str("heartbeat")),
        ("tail_lsn", Value::int(tail_lsn as i64)),
    ])
}

fn field_u64(v: &Value, name: &str) -> Result<u64> {
    let i = v.get_field(name).as_int().map_err(|_| bad_frame(name, v))?;
    u64::try_from(i).map_err(|_| bad_frame(name, v))
}

fn field_str(v: &Value, name: &str) -> Result<String> {
    Ok(v.get_field(name).as_str().map_err(|_| bad_frame(name, v))?.to_string())
}

fn field_bytes(v: &Value, name: &str) -> Result<Vec<u8>> {
    match v.get_field(name) {
        Value::Bytes(b) => Ok(b.clone()),
        _ => Err(bad_frame(name, v)),
    }
}

fn bad_frame(field: &str, v: &Value) -> Error {
    Error::Protocol(format!("replication frame missing or malformed field {field:?}: {v:?}"))
}

/// Decode a stream frame back into a [`Frame`].
///
/// CDC `"write"` events are a client-facing projection, not part of
/// the replica protocol, and are rejected here.
pub fn parse_frame(v: &Value) -> Result<Frame> {
    match v.get_field("type").as_str().unwrap_or("") {
        "heartbeat" => Ok(Frame::Heartbeat { tail_lsn: field_u64(v, "tail_lsn")? }),
        "record" => {
            let lsn = field_u64(v, "lsn")?;
            let next_lsn = field_u64(v, "next_lsn")?;
            let record = match v.get_field("kind").as_str().unwrap_or("") {
                "begin" => WalRecord::Begin { txid: field_u64(v, "txid")? },
                "write" => WalRecord::Write {
                    txid: field_u64(v, "txid")?,
                    domain: field_str(v, "domain")?,
                    key: field_bytes(v, "key")?,
                    value: match v.get_field("value") {
                        Value::Null => None,
                        Value::Bytes(b) => Some(b.clone()),
                        _ => return Err(bad_frame("value", v)),
                    },
                },
                "commit" => WalRecord::Commit { txid: field_u64(v, "txid")? },
                "abort" => WalRecord::Abort { txid: field_u64(v, "txid")? },
                // Older primaries omit snapshot_lsn; treat as 0.
                "checkpoint" => WalRecord::Checkpoint {
                    snapshot_lsn: field_u64(v, "snapshot_lsn").unwrap_or(0),
                },
                other => {
                    return Err(Error::Protocol(format!(
                        "unknown replication record kind {other:?}"
                    )))
                }
            };
            Ok(Frame::Record(TailedRecord { lsn, next_lsn, record }))
        }
        other => Err(Error::Protocol(format!("unknown replication frame type {other:?}"))),
    }
}

/// Turns the raw record stream into committed-only CDC events.
///
/// Writes are buffered per transaction and released as `"write"`
/// event values only when that transaction's commit record arrives;
/// aborted transactions are dropped. Each released event carries the
/// commit record's `next_lsn` as its resume cursor — resubscribing
/// from an event's `lsn` replays nothing of the transaction that
/// produced it and everything after.
#[derive(Debug, Default)]
pub struct CdcBuffer {
    pending: HashMap<TxId, Vec<BufferedWrite>>,
}

/// One buffered `Write` record: `(domain, key, encoded value)`.
type BufferedWrite = (String, Vec<u8>, Option<Vec<u8>>);

impl CdcBuffer {
    /// A buffer with no in-flight transactions.
    pub fn new() -> CdcBuffer {
        CdcBuffer::default()
    }

    /// Number of transactions seen but not yet committed or aborted.
    pub fn pending_txns(&self) -> usize {
        self.pending.len()
    }

    /// Feed one record; returns the CDC events it releases (empty for
    /// everything except a commit of a transaction with writes).
    pub fn push(&mut self, t: &TailedRecord) -> Result<Vec<Value>> {
        match &t.record {
            WalRecord::Begin { txid } => {
                // Blocks are contiguous in the log (written whole under
                // the primary's commit mutex): a fresh Begin means any
                // still-open block is a crash artifact whose Commit can
                // never arrive. Drop it instead of buffering it forever.
                self.pending.retain(|t, _| t == txid);
                self.pending.entry(*txid).or_default();
                Ok(Vec::new())
            }
            WalRecord::Write { txid, domain, key, value } => {
                self.pending
                    .entry(*txid)
                    .or_default()
                    .push((domain.clone(), key.clone(), value.clone()));
                Ok(Vec::new())
            }
            WalRecord::Abort { txid } => {
                self.pending.remove(txid);
                Ok(Vec::new())
            }
            WalRecord::Checkpoint { .. } => Ok(Vec::new()),
            WalRecord::Commit { txid } => {
                let writes = self.pending.remove(txid).unwrap_or_default();
                let mut events = Vec::with_capacity(writes.len());
                for (domain, key, value) in writes {
                    let value = match value {
                        Some(bytes) => value_from_bytes(&bytes)?,
                        None => Value::Null,
                    };
                    events.push(Value::object([
                        ("type", Value::str("write")),
                        ("lsn", Value::int(t.next_lsn as i64)),
                        ("txid", Value::int(*txid as i64)),
                        ("domain", Value::str(domain)),
                        ("key", Value::str(String::from_utf8_lossy(&key).into_owned())),
                        ("deleted", Value::Bool(value.is_null())),
                        ("value", value),
                    ]));
                }
                Ok(events)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_types::codec::value_to_bytes;

    fn rec(lsn: Lsn, next: Lsn, record: WalRecord) -> TailedRecord {
        TailedRecord { lsn, next_lsn: next, record }
    }

    #[test]
    fn frames_round_trip_through_values() {
        let records = vec![
            rec(0, 17, WalRecord::Begin { txid: 7 }),
            rec(
                17,
                60,
                WalRecord::Write {
                    txid: 7,
                    domain: "kv/cart".into(),
                    key: vec![0, 159, 255],
                    value: Some(vec![1, 2, 3]),
                },
            ),
            rec(
                60,
                90,
                WalRecord::Write {
                    txid: 7,
                    domain: "doc/orders".into(),
                    key: b"o1".to_vec(),
                    value: None,
                },
            ),
            rec(90, 107, WalRecord::Commit { txid: 7 }),
            rec(107, 124, WalRecord::Abort { txid: 8 }),
            rec(124, 133, WalRecord::Checkpoint { snapshot_lsn: 124 }),
        ];
        for r in records {
            let frame = record_frame(&r);
            assert_eq!(parse_frame(&frame).unwrap(), Frame::Record(r));
        }
        let hb = heartbeat_frame(424242);
        assert_eq!(parse_frame(&hb).unwrap(), Frame::Heartbeat { tail_lsn: 424242 });
    }

    #[test]
    fn malformed_frames_are_rejected() {
        assert!(parse_frame(&Value::str("nope")).is_err());
        assert!(parse_frame(&Value::object([("type", Value::str("mystery"))])).is_err());
        assert!(parse_frame(&Value::object([
            ("type", Value::str("record")),
            ("lsn", Value::int(0)),
            ("next_lsn", Value::int(9)),
            ("kind", Value::str("begin")),
            ("txid", Value::int(-1)),
        ]))
        .is_err());
    }

    #[test]
    fn cdc_buffer_releases_only_committed_writes() {
        let mut buf = CdcBuffer::new();
        let payload = value_to_bytes(&Value::int(42)).to_vec();

        // An aborted transaction never surfaces.
        assert!(buf.push(&rec(0, 10, WalRecord::Begin { txid: 1 })).unwrap().is_empty());
        assert!(buf
            .push(&rec(
                10,
                40,
                WalRecord::Write {
                    txid: 1,
                    domain: "kv/cart".into(),
                    key: b"ghost".to_vec(),
                    value: Some(payload.clone()),
                }
            ))
            .unwrap()
            .is_empty());
        assert_eq!(buf.pending_txns(), 1);
        assert!(buf.push(&rec(40, 50, WalRecord::Abort { txid: 1 })).unwrap().is_empty());
        assert_eq!(buf.pending_txns(), 0);

        // A committed one surfaces decoded, stamped with the commit's
        // next_lsn as the resume cursor.
        buf.push(&rec(50, 60, WalRecord::Begin { txid: 2 })).unwrap();
        buf.push(&rec(
            60,
            90,
            WalRecord::Write {
                txid: 2,
                domain: "kv/cart".into(),
                key: b"real".to_vec(),
                value: Some(payload),
            },
        ))
        .unwrap();
        buf.push(&rec(
            90,
            120,
            WalRecord::Write {
                txid: 2,
                domain: "kv/cart".into(),
                key: b"gone".to_vec(),
                value: None,
            },
        ))
        .unwrap();
        let events = buf.push(&rec(120, 130, WalRecord::Commit { txid: 2 })).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get_field("type").as_str().unwrap(), "write");
        assert_eq!(events[0].get_field("lsn").as_int().unwrap(), 130);
        assert_eq!(events[0].get_field("domain").as_str().unwrap(), "kv/cart");
        assert_eq!(events[0].get_field("key").as_str().unwrap(), "real");
        assert_eq!(events[0].get_field("value"), &Value::int(42));
        assert_eq!(events[0].get_field("deleted"), &Value::Bool(false));
        assert_eq!(events[1].get_field("key").as_str().unwrap(), "gone");
        assert_eq!(events[1].get_field("deleted"), &Value::Bool(true));
    }
}
