//! The replica side: connect, catch up, tail, reconnect.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use mmdb_client::{Client, ClientConfig};
use mmdb_core::Database;
use mmdb_storage::wal::{TxId, WalRecord};
use mmdb_txn::CommittedWrite;
use mmdb_types::codec::value_from_bytes;
use mmdb_types::{Error, Result, Value};
use parking_lot::Mutex;

use crate::feed::{parse_frame, Frame};
use crate::status::ReplStatus;

/// Tunables for a [`ReplicaRunner`].
#[derive(Debug, Clone)]
pub struct ReplicaOptions {
    /// Pause between reconnect attempts after the primary goes away.
    pub reconnect_delay: Duration,
    /// Connection settings for the stream. The read timeout doubles as
    /// the liveness bound: the primary heartbeats a few times per
    /// second, so a timed-out read means the primary is gone and the
    /// runner reconnects.
    pub client: ClientConfig,
}

impl Default for ReplicaOptions {
    fn default() -> Self {
        // Heartbeats arrive every ~200ms; 5s of silence is a dead primary.
        let client =
            ClientConfig { read_timeout: Some(Duration::from_secs(5)), ..ClientConfig::default() };
        ReplicaOptions { reconnect_delay: Duration::from_millis(300), client }
    }
}

/// Drives one replica database from a primary's WAL stream.
///
/// On `start` the local store is latched read-only and a background
/// thread loops: connect, `REPLICA HELLO <applied_lsn>`, apply streamed
/// transactions via [`mmdb_txn::MvccStore::apply_replicated`], and on
/// any failure reconnect after [`ReplicaOptions::reconnect_delay`],
/// resuming from the last fully-applied transaction boundary. While
/// disconnected the replica keeps serving reads from its latest
/// applied state.
pub struct ReplicaRunner {
    status: Arc<ReplStatus>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ReplicaRunner {
    /// Latch `db` read-only and start replicating from `primary_addr`.
    ///
    /// Fails with a typed `startup` error when the OS refuses the
    /// replica thread. The read-only latch has no unlatch by design, so
    /// on failure `db` stays read-only — reopen it to write locally, or
    /// retry `start` to keep it a replica.
    pub fn start(
        db: Arc<Database>,
        primary_addr: impl Into<String>,
        opts: ReplicaOptions,
    ) -> Result<ReplicaRunner> {
        let primary_addr = primary_addr.into();
        db.mvcc()
            .latch_read_only(&format!("read-only replica of {primary_addr}"));
        let status = Arc::new(ReplStatus::new(primary_addr.clone()));
        // Resume from the database's own replication watermark, not LSN 0:
        // a runner restarted over an already-fed replica must not replay
        // (and double-apply) transactions the store has already absorbed.
        status.advance_applied(db.last_commit_lsn());
        let stop = Arc::new(AtomicBool::new(false));
        let worker = Worker {
            db,
            addr: primary_addr,
            opts,
            status: Arc::clone(&status),
            stop: Arc::clone(&stop),
            last_error: Arc::new(Mutex::new(None)),
        };
        let handle = std::thread::Builder::new()
            .name("mmdb-replica".into())
            .spawn(move || worker.run())
            .map_err(|e| {
                Error::Startup(format!("could not spawn replica thread: {e}"))
            })?;
        Ok(ReplicaRunner { status, stop, handle: Some(handle) })
    }

    /// The shared status handle (clone it into server admin handlers).
    pub fn status(&self) -> Arc<ReplStatus> {
        Arc::clone(&self.status)
    }

    /// Signal the thread and wait for it to exit. Returns promptly when
    /// idle; bounded by the stream read timeout when mid-read.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ReplicaRunner {
    fn drop(&mut self) {
        self.shutdown();
    }
}

struct Worker {
    db: Arc<Database>,
    addr: String,
    opts: ReplicaOptions,
    status: Arc<ReplStatus>,
    stop: Arc<AtomicBool>,
    last_error: Arc<Mutex<Option<String>>>,
}

impl Worker {
    fn stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    fn run(&self) {
        while !self.stopped() {
            if let Err(e) = self.stream_once() {
                *self.last_error.lock() = Some(e.to_string());
            }
            self.status.set_connected(false);
            if self.stopped() {
                break;
            }
            std::thread::sleep(self.opts.reconnect_delay);
        }
    }

    /// One connection lifetime: hello, then apply frames until an error
    /// or shutdown. Returns `Ok(())` only on shutdown.
    fn stream_once(&self) -> Result<()> {
        let mut client = Client::connect_with(&*self.addr, self.opts.client.clone())?;
        client.replica_hello(self.status.applied_lsn())?;
        self.status.set_connected(true);

        // Writes of transactions whose commit record hasn't arrived yet.
        // The primary serializes Begin..Write*..Commit blocks in its log
        // (only lone Aborts interleave), so at most a handful are open.
        let mut pending: HashMap<TxId, Vec<CommittedWrite>> = HashMap::new();

        while !self.stopped() {
            let frame = client.next_change()?;
            self.status.note_contact();
            match parse_frame(&frame)? {
                Frame::Heartbeat { tail_lsn } => self.status.observe_tail(tail_lsn),
                Frame::Record(rec) => {
                    self.status.observe_tail(rec.next_lsn);
                    match &rec.record {
                        WalRecord::Begin { txid } => {
                            // The primary logs whole Begin..Write*..Commit
                            // blocks under its commit mutex, so a fresh
                            // Begin means any earlier open block is a
                            // crash artifact whose Commit can never
                            // arrive. Drop it — primary recovery ignores
                            // such blocks too — or it would pin
                            // `pending` non-empty and freeze the resume
                            // watermark forever.
                            pending.retain(|t, _| t == txid);
                            pending.entry(*txid).or_default();
                        }
                        WalRecord::Write { txid, domain, key, value } => {
                            let value = match value {
                                Some(bytes) => Some(value_from_bytes(bytes)?),
                                None => None,
                            };
                            pending.entry(*txid).or_default().push(CommittedWrite {
                                domain: domain.clone(),
                                key: key.clone(),
                                value,
                            });
                        }
                        WalRecord::Commit { txid } => {
                            let writes = pending.remove(txid).unwrap_or_default();
                            // Dropping the connection here (error/crash)
                            // is safe: applied_lsn hasn't advanced, so the
                            // reconnect replays the block and the apply
                            // repeats idempotently onto newer versions.
                            mmdb_fault::fail_point!("repl.apply", |msg| {
                                mmdb_types::Error::Storage(format!("replica apply: {msg}"))
                            });
                            if *txid == 0 {
                                // Txid 0 is the synthetic snapshot-bootstrap
                                // transaction: the primary's complete live
                                // state. Apply it as a full replace so keys
                                // this replica still holds from before the
                                // truncation horizon — including ones the
                                // primary deleted inside the gap — don't
                                // survive as ghosts.
                                self.db.mvcc().apply_snapshot_replace(&writes)?;
                            } else {
                                self.db.mvcc().apply_replicated(&writes)?;
                            }
                            self.status.note_txn_applied();
                        }
                        WalRecord::Abort { txid } => {
                            pending.remove(txid);
                        }
                        WalRecord::Checkpoint { .. } => {
                            // The primary checkpointed and truncated its
                            // log; do the same locally so replica logs
                            // stay bounded too. A checkpoint is not a
                            // commit, so the read-only latch doesn't
                            // apply; failure is non-fatal (worst case the
                            // local log keeps growing until the next
                            // marker) but worth surfacing in status.
                            if let Err(e) = self.db.checkpoint() {
                                *self.last_error.lock() =
                                    Some(format!("local checkpoint: {e}"));
                            }
                        }
                    }
                    // Only a transaction boundary is a safe resume point:
                    // `REPLICA HELLO` replays whole records, and a Begin or
                    // Write we've buffered but not applied must be streamed
                    // again if this connection dies.
                    if pending.is_empty() {
                        self.status.advance_applied(rec.next_lsn);
                        // Mirror the watermark into the store so
                        // `Database::last_commit_lsn` answers "how far
                        // along is this node" on a replica too — and a
                        // future runner on this database resumes here.
                        self.db.mvcc().note_commit_lsn(rec.next_lsn);
                    }
                }
            }
        }
        Ok(())
    }

    #[allow(dead_code)]
    fn last_error(&self) -> Option<String> {
        self.last_error.lock().clone()
    }
}

/// Convenience for tests and tools: dump a database's current change
/// feed cursor, i.e. the LSN a fresh `SUBSCRIBE` should start from to
/// see only future commits. Uses the *durable* watermark — with group
/// commit, bytes past it are appended but not yet fsynced, and the
/// stream never ships them.
pub fn current_cursor(db: &Database) -> Value {
    Value::int(db.wal().map(|w| w.durable_lsn()).unwrap_or(0) as i64)
}
