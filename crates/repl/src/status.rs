//! Replica lag and health accounting.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

use mmdb_storage::wal::Lsn;
use mmdb_types::Value;

fn epoch_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

/// Shared, lock-free view of a replica's replication state.
///
/// Written by the [`crate::ReplicaRunner`] thread, read by `ADMIN
/// HEALTH` / `ADMIN REPL` handlers and by pool freshness checks. Lag
/// is reported two ways:
///
/// * `lag_bytes` — how far `applied_lsn` trails the primary's last
///   advertised WAL tail. Exact while connected; a lower bound after
///   the primary goes away (the tail stops advancing in our view).
/// * `staleness_ms` — wall-clock time since the replica last *knew*
///   it was caught up (applied LSN == advertised tail). This keeps
///   growing after a disconnect even though `lag_bytes` freezes,
///   which is what bounded-staleness reads need.
#[derive(Debug)]
pub struct ReplStatus {
    primary_addr: String,
    connected: AtomicBool,
    /// Everything below `applied_lsn` (in the *primary's* LSN space)
    /// has been applied locally as complete transactions.
    applied_lsn: AtomicU64,
    /// The primary's WAL tail as of the last frame we saw.
    primary_tail_lsn: AtomicU64,
    /// Epoch ms of the last frame received from the primary; 0 = never.
    last_contact_ms: AtomicU64,
    /// Epoch ms when `applied_lsn == primary_tail_lsn` last held; 0 = never.
    caught_up_at_ms: AtomicU64,
    txns_applied: AtomicU64,
    connects: AtomicU64,
}

impl ReplStatus {
    /// A fresh status for a replica of `primary_addr`, starting at LSN 0.
    pub fn new(primary_addr: impl Into<String>) -> ReplStatus {
        ReplStatus {
            primary_addr: primary_addr.into(),
            connected: AtomicBool::new(false),
            applied_lsn: AtomicU64::new(0),
            primary_tail_lsn: AtomicU64::new(0),
            last_contact_ms: AtomicU64::new(0),
            caught_up_at_ms: AtomicU64::new(0),
            txns_applied: AtomicU64::new(0),
            connects: AtomicU64::new(0),
        }
    }

    /// Address of the primary this replica follows.
    pub fn primary_addr(&self) -> &str {
        &self.primary_addr
    }

    /// Whether the streaming connection is currently up.
    pub fn is_connected(&self) -> bool {
        self.connected.load(Ordering::SeqCst)
    }

    /// Primary-space LSN below which all transactions are applied.
    pub fn applied_lsn(&self) -> Lsn {
        self.applied_lsn.load(Ordering::SeqCst)
    }

    /// The primary's WAL tail as last advertised.
    pub fn primary_tail_lsn(&self) -> Lsn {
        self.primary_tail_lsn.load(Ordering::SeqCst)
    }

    /// Complete transactions applied since this process started.
    pub fn txns_applied(&self) -> u64 {
        self.txns_applied.load(Ordering::SeqCst)
    }

    /// Successful stream connections (1 = never had to reconnect).
    pub fn connects(&self) -> u64 {
        self.connects.load(Ordering::SeqCst)
    }

    /// Bytes of primary WAL known but not yet applied.
    pub fn lag_bytes(&self) -> u64 {
        self.primary_tail_lsn().saturating_sub(self.applied_lsn())
    }

    /// Milliseconds since the replica last knew it was caught up, or
    /// `None` if it never has been.
    pub fn staleness_ms(&self) -> Option<u64> {
        let at = self.caught_up_at_ms.load(Ordering::SeqCst);
        if at == 0 {
            return None;
        }
        Some(epoch_ms().saturating_sub(at))
    }

    // ---- runner-side updates ----------------------------------------------

    pub(crate) fn set_connected(&self, up: bool) {
        if up {
            self.connects.fetch_add(1, Ordering::SeqCst);
        }
        self.connected.store(up, Ordering::SeqCst);
    }

    pub(crate) fn note_contact(&self) {
        self.last_contact_ms.store(epoch_ms(), Ordering::SeqCst);
    }

    pub(crate) fn observe_tail(&self, tail: Lsn) {
        self.primary_tail_lsn.fetch_max(tail, Ordering::SeqCst);
        self.refresh_caught_up();
    }

    pub(crate) fn advance_applied(&self, lsn: Lsn) {
        self.applied_lsn.fetch_max(lsn, Ordering::SeqCst);
        self.refresh_caught_up();
    }

    pub(crate) fn note_txn_applied(&self) {
        self.txns_applied.fetch_add(1, Ordering::SeqCst);
    }

    fn refresh_caught_up(&self) {
        if self.applied_lsn() >= self.primary_tail_lsn() {
            self.caught_up_at_ms.store(epoch_ms(), Ordering::SeqCst);
        }
    }

    /// The `ADMIN REPL` payload for a replica.
    pub fn to_value(&self) -> Value {
        Value::object([
            ("role", Value::str("replica")),
            ("primary", Value::str(self.primary_addr.clone())),
            ("connected", Value::Bool(self.is_connected())),
            ("applied_lsn", Value::int(self.applied_lsn() as i64)),
            ("primary_tail_lsn", Value::int(self.primary_tail_lsn() as i64)),
            ("lag_bytes", Value::int(self.lag_bytes() as i64)),
            (
                "staleness_ms",
                match self.staleness_ms() {
                    Some(ms) => Value::int(ms as i64),
                    None => Value::Null,
                },
            ),
            ("txns_applied", Value::int(self.txns_applied() as i64)),
            ("connects", Value::int(self.connects() as i64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lag_and_staleness_track_the_stream() {
        let s = ReplStatus::new("127.0.0.1:7777");
        assert_eq!(s.lag_bytes(), 0);
        assert_eq!(s.staleness_ms(), None);

        s.set_connected(true);
        s.observe_tail(100);
        assert_eq!(s.lag_bytes(), 100);
        // Not caught up yet, so still never-fresh.
        assert_eq!(s.staleness_ms(), None);

        s.advance_applied(100);
        s.note_txn_applied();
        assert_eq!(s.lag_bytes(), 0);
        assert!(s.staleness_ms().is_some());

        // A disconnect freezes lag_bytes but staleness keeps counting.
        s.set_connected(false);
        assert_eq!(s.lag_bytes(), 0);
        assert!(s.staleness_ms().is_some());

        let v = s.to_value();
        assert_eq!(v.get_field("role").as_str().unwrap(), "replica");
        assert_eq!(v.get_field("applied_lsn").as_int().unwrap(), 100);
        assert_eq!(v.get_field("connected"), &Value::Bool(false));
        assert_eq!(v.get_field("txns_applied").as_int().unwrap(), 1);
    }

    #[test]
    fn applied_and_tail_only_move_forward() {
        let s = ReplStatus::new("p");
        s.observe_tail(50);
        s.observe_tail(20);
        assert_eq!(s.primary_tail_lsn(), 50);
        s.advance_applied(40);
        s.advance_applied(10);
        assert_eq!(s.applied_lsn(), 40);
    }
}
