//! Sinew's universal relation over multi-structured data.
//!
//! Sinew (Tahara, Diamond & Abadi, SIGMOD 2014 — tutorial slide 36) layers
//! SQL over schemaless data by exposing a *logical* universal relation —
//! "one column for each unique key in the data set; nested data is
//! flattened into separate columns" — while *physically* materializing only
//! some columns; the rest live in a serialized catch-all column per row.
//!
//! Queries on materialized columns read a dense vector; queries on virtual
//! columns must deserialize the catch-all of every row. Promoting a hot
//! column is [`UniversalRelation::materialize`]; the same idea is HPE
//! Vertica's flex-table "promoting virtual columns to real columns
//! improves query performance" — ablation E6 measures it.

use std::collections::{BTreeMap, HashMap};

use mmdb_types::{Path, Result, Value};

/// The universal relation.
pub struct UniversalRelation {
    /// Logical column set: flattened dotted paths seen so far, with counts.
    logical: BTreeMap<String, u64>,
    /// Physically materialized columns: dense vectors aligned with rows.
    materialized: HashMap<String, Vec<Value>>,
    /// Catch-all: the full original object per row (Sinew keeps unpromoted
    /// attributes serialized; we keep the decoded object — the *access
    /// asymmetry* is preserved because virtual reads must navigate it).
    rows: Vec<Value>,
}

impl Default for UniversalRelation {
    fn default() -> Self {
        Self::new()
    }
}

/// Flatten an object's nested keys into dotted paths (arrays are treated
/// as opaque values, following Sinew's column model).
fn flatten_into(prefix: &str, v: &Value, out: &mut Vec<(String, Value)>) {
    match v {
        Value::Object(obj) => {
            for (k, val) in obj.iter() {
                let path = if prefix.is_empty() { k.to_string() } else { format!("{prefix}.{k}") };
                flatten_into(&path, val, out);
            }
        }
        other => out.push((prefix.to_string(), other.clone())),
    }
}

impl UniversalRelation {
    /// Empty relation.
    pub fn new() -> Self {
        UniversalRelation {
            logical: BTreeMap::new(),
            materialized: HashMap::new(),
            rows: Vec::new(),
        }
    }

    /// Ingest one object (any shape). Returns its row id.
    pub fn insert(&mut self, object: Value) -> u64 {
        let mut flat = Vec::new();
        flatten_into("", &object, &mut flat);
        for (path, _) in &flat {
            *self.logical.entry(path.clone()).or_insert(0) += 1;
        }
        // Extend materialized columns (missing → Null).
        for (col, vec) in self.materialized.iter_mut() {
            let v = flat
                .iter()
                .find(|(p, _)| p == col)
                .map(|(_, v)| v.clone())
                .unwrap_or(Value::Null);
            vec.push(v);
        }
        self.rows.push(object);
        (self.rows.len() - 1) as u64
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were ingested.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The logical schema: every column (dotted path) with its occurrence
    /// count — this is Sinew's "column for each unique key".
    pub fn logical_columns(&self) -> Vec<(&str, u64)> {
        self.logical.iter().map(|(k, v)| (k.as_str(), *v)).collect()
    }

    /// Columns currently materialized.
    pub fn materialized_columns(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.materialized.keys().map(String::as_str).collect();
        v.sort();
        v
    }

    /// Promote a column to a physical vector (idempotent).
    pub fn materialize(&mut self, column: &str) -> Result<()> {
        if self.materialized.contains_key(column) {
            return Ok(());
        }
        let path = Path::parse(column)?;
        let vec: Vec<Value> = self
            .rows
            .iter()
            .map(|row| path.eval_point(row).cloned())
            .collect::<Result<_>>()?;
        self.materialized.insert(column.to_string(), vec);
        Ok(())
    }

    /// Demote a column back to virtual.
    pub fn dematerialize(&mut self, column: &str) {
        self.materialized.remove(column);
    }

    /// Read one column of one row (materialized fast path, else navigate).
    pub fn value_at(&self, row: u64, column: &str) -> Result<Value> {
        if let Some(vec) = self.materialized.get(column) {
            return Ok(vec.get(row as usize).cloned().unwrap_or(Value::Null));
        }
        let path = Path::parse(column)?;
        Ok(self
            .rows
            .get(row as usize)
            .map(|r| path.eval_point(r).cloned())
            .transpose()?
            .unwrap_or(Value::Null))
    }

    /// Select rows where `column op value` holds, returning `(row ids,
    /// used_materialized)` — the bool feeds ablation E6.
    pub fn select_eq(&self, column: &str, value: &Value) -> Result<(Vec<u64>, bool)> {
        if let Some(vec) = self.materialized.get(column) {
            let hits = vec
                .iter()
                .enumerate()
                .filter(|(_, v)| *v == value)
                .map(|(i, _)| i as u64)
                .collect();
            return Ok((hits, true));
        }
        let path = Path::parse(column)?;
        let mut hits = Vec::new();
        for (i, row) in self.rows.iter().enumerate() {
            if path.eval_point(row)? == value {
                hits.push(i as u64);
            }
        }
        Ok((hits, false))
    }

    /// The full original object of a row.
    pub fn row(&self, row: u64) -> Option<&Value> {
        self.rows.get(row as usize)
    }

    /// Advisor: columns appearing in at least `fraction` of rows — Sinew
    /// materializes "popular" keys.
    pub fn popular_columns(&self, fraction: f64) -> Vec<&str> {
        let n = self.rows.len().max(1) as f64;
        self.logical
            .iter()
            .filter(|(_, &c)| c as f64 / n >= fraction)
            .map(|(k, _)| k.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_types::from_json;

    fn relation() -> UniversalRelation {
        let mut u = UniversalRelation::new();
        u.insert(from_json(r#"{"id":1,"name":"Mary","meta":{"city":"Prague"}}"#).unwrap());
        u.insert(from_json(r#"{"id":2,"name":"John","meta":{"city":"Helsinki","zip":"00100"}}"#).unwrap());
        u.insert(from_json(r#"{"id":3,"extra":true}"#).unwrap());
        u
    }

    #[test]
    fn logical_schema_is_union_of_flattened_keys() {
        let u = relation();
        let cols: Vec<&str> = u.logical_columns().iter().map(|(c, _)| *c).collect();
        assert_eq!(cols, vec!["extra", "id", "meta.city", "meta.zip", "name"]);
        let counts: std::collections::HashMap<&str, u64> =
            u.logical_columns().into_iter().collect();
        assert_eq!(counts["id"], 3);
        assert_eq!(counts["meta.zip"], 1);
    }

    #[test]
    fn virtual_and_materialized_reads_agree() {
        let mut u = relation();
        let (virt, used) = u.select_eq("meta.city", &Value::str("Prague")).unwrap();
        assert!(!used);
        u.materialize("meta.city").unwrap();
        let (mat, used) = u.select_eq("meta.city", &Value::str("Prague")).unwrap();
        assert!(used);
        assert_eq!(virt, mat);
        assert_eq!(virt, vec![0]);
        assert_eq!(u.value_at(0, "meta.city").unwrap(), Value::str("Prague"));
        assert_eq!(u.value_at(2, "meta.city").unwrap(), Value::Null);
    }

    #[test]
    fn materialized_columns_track_new_inserts() {
        let mut u = relation();
        u.materialize("name").unwrap();
        u.insert(from_json(r#"{"id":4,"name":"Petra"}"#).unwrap());
        let (hits, used) = u.select_eq("name", &Value::str("Petra")).unwrap();
        assert!(used);
        assert_eq!(hits, vec![3]);
    }

    #[test]
    fn dematerialize_falls_back_to_navigation() {
        let mut u = relation();
        u.materialize("id").unwrap();
        u.dematerialize("id");
        let (hits, used) = u.select_eq("id", &Value::int(2)).unwrap();
        assert!(!used);
        assert_eq!(hits, vec![1]);
        assert!(u.materialized_columns().is_empty());
    }

    #[test]
    fn popularity_advisor() {
        let u = relation();
        let popular = u.popular_columns(0.6);
        assert!(popular.contains(&"id"));
        assert!(!popular.contains(&"meta.zip"));
        let all = u.popular_columns(0.0);
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn row_access_and_len() {
        let u = relation();
        assert_eq!(u.len(), 3);
        assert!(!u.is_empty());
        assert_eq!(u.row(2).unwrap().get_field("extra"), &Value::Bool(true));
        assert!(u.row(99).is_none());
    }
}
