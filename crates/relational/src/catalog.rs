//! The table catalog: named tables sharing one buffer pool.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use mmdb_storage::{BufferPool, DiskManager};
use mmdb_types::{Error, Result};

use crate::schema::Schema;
use crate::table::Table;

/// A catalog of relational tables.
pub struct Catalog {
    pool: Arc<BufferPool>,
    tables: RwLock<HashMap<String, Arc<Table>>>,
}

impl Catalog {
    /// Catalog over an existing buffer pool.
    pub fn new(pool: Arc<BufferPool>) -> Self {
        Catalog { pool, tables: RwLock::new(HashMap::new()) }
    }

    /// In-memory catalog (own pool, RAM pages).
    pub fn in_memory() -> Self {
        Self::new(Arc::new(BufferPool::new(Arc::new(DiskManager::in_memory()), 1024)))
    }

    /// The shared buffer pool.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Create a table.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<Arc<Table>> {
        let mut tables = self.tables.write();
        if tables.contains_key(name) {
            return Err(Error::AlreadyExists(format!("table '{name}'")));
        }
        let t = Arc::new(Table::create(name, schema, Arc::clone(&self.pool))?);
        tables.insert(name.to_string(), Arc::clone(&t));
        Ok(t)
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("table '{name}'")))
    }

    /// Drop a table.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        self.tables
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| Error::NotFound(format!("table '{name}'")))
    }

    /// Sorted table names.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, DataType};

    fn schema() -> Schema {
        Schema::new(vec![ColumnDef::new("id", DataType::Int)], "id").unwrap()
    }

    #[test]
    fn create_lookup_drop() {
        let c = Catalog::in_memory();
        c.create_table("a", schema()).unwrap();
        c.create_table("b", schema()).unwrap();
        assert!(c.create_table("a", schema()).is_err());
        assert_eq!(c.table_names(), vec!["a", "b"]);
        assert_eq!(c.table("a").unwrap().name(), "a");
        c.drop_table("a").unwrap();
        assert!(c.table("a").is_err());
        assert!(c.drop_table("a").is_err());
    }

    #[test]
    fn tables_share_the_pool() {
        let c = Catalog::in_memory();
        let a = c.create_table("a", schema()).unwrap();
        let b = c.create_table("b", schema()).unwrap();
        for i in 0..100 {
            a.insert(vec![mmdb_types::Value::int(i)]).unwrap();
            b.insert(vec![mmdb_types::Value::int(i)]).unwrap();
        }
        assert_eq!(a.len(), 100);
        assert_eq!(b.len(), 100);
    }
}
