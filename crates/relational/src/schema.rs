//! Table schemas: column definitions, type checking and coercion.

use mmdb_types::{Error, Result, Value};

/// Column data types. `Json` is the multi-model bridge: a typed relational
/// column holding an arbitrary document, exactly PostgreSQL's `JSONB`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Text,
    /// Arbitrary JSON document (object, array or scalar).
    Json,
    /// Raw bytes.
    Bytes,
}

impl DataType {
    /// Does `v` inhabit this type? `Null` inhabits every nullable column;
    /// nullability is checked separately.
    pub fn admits(&self, v: &Value) -> bool {
        match (self, v) {
            (_, Value::Null) => true,
            (DataType::Bool, Value::Bool(_)) => true,
            (DataType::Int, Value::Number(n)) => n.as_i64().is_some(),
            (DataType::Float, Value::Number(_)) => true,
            (DataType::Text, Value::String(_)) => true,
            (DataType::Bytes, Value::Bytes(_)) => true,
            (DataType::Json, _) => true,
            _ => false,
        }
    }
}

impl DataType {
    /// Parse the SQL spelling produced by `Display` (case-insensitive).
    pub fn from_sql(s: &str) -> Result<DataType> {
        Ok(match s.to_ascii_uppercase().as_str() {
            "BOOL" => DataType::Bool,
            "INT" => DataType::Int,
            "FLOAT" => DataType::Float,
            "TEXT" => DataType::Text,
            "JSON" => DataType::Json,
            "BYTES" => DataType::Bytes,
            other => return Err(Error::Schema(format!("unknown column type '{other}'"))),
        })
    }
}

impl std::fmt::Display for DataType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Json => "JSON",
            DataType::Bytes => "BYTES",
        };
        write!(f, "{s}")
    }
}

/// One column of a schema.
#[derive(Debug, Clone)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub data_type: DataType,
    /// Whether NULL is allowed.
    pub nullable: bool,
}

impl ColumnDef {
    /// A nullable column.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        ColumnDef { name: name.into(), data_type, nullable: true }
    }

    /// Mark NOT NULL.
    pub fn not_null(mut self) -> Self {
        self.nullable = false;
        self
    }
}

/// A table schema: ordered columns plus the primary-key column index.
#[derive(Debug, Clone)]
pub struct Schema {
    columns: Vec<ColumnDef>,
    primary_key: usize,
}

impl Schema {
    /// Build a schema; `primary_key` names one of the columns. The key
    /// column is implicitly NOT NULL.
    pub fn new(columns: Vec<ColumnDef>, primary_key: &str) -> Result<Schema> {
        if columns.is_empty() {
            return Err(Error::Schema("a table needs at least one column".into()));
        }
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            if !seen.insert(c.name.clone()) {
                return Err(Error::Schema(format!("duplicate column '{}'", c.name)));
            }
        }
        let pk = columns
            .iter()
            .position(|c| c.name == primary_key)
            .ok_or_else(|| Error::Schema(format!("primary key '{primary_key}' is not a column")))?;
        let mut columns = columns;
        columns[pk].nullable = false;
        Ok(Schema { columns, primary_key: pk })
    }

    /// The columns in order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Index of a named column.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| Error::NotFound(format!("column '{name}'")))
    }

    /// The primary-key column index.
    pub fn primary_key(&self) -> usize {
        self.primary_key
    }

    /// The primary-key column name.
    pub fn primary_key_name(&self) -> &str {
        &self.columns[self.primary_key].name
    }

    /// Validate a row against the schema: arity, types, nullability.
    /// Integral floats are coerced into INT columns in place.
    pub fn validate(&self, row: &mut [Value]) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(Error::Schema(format!(
                "row has {} values, table has {} columns",
                row.len(),
                self.columns.len()
            )));
        }
        for (v, c) in row.iter_mut().zip(&self.columns) {
            if v.is_null() {
                if !c.nullable {
                    return Err(Error::Schema(format!("column '{}' is NOT NULL", c.name)));
                }
                continue;
            }
            // Coerce integral floats into INT columns (JSON inputs often
            // arrive as floats).
            if c.data_type == DataType::Int {
                if let Value::Number(n) = v {
                    if let Some(i) = n.as_i64() {
                        *v = Value::int(i);
                    }
                }
            }
            if !c.data_type.admits(v) {
                return Err(Error::Schema(format!(
                    "column '{}' ({}) cannot hold {} value {v}",
                    c.name,
                    c.data_type,
                    v.type_name()
                )));
            }
        }
        Ok(())
    }

    /// Build an ordered row from an object keyed by column names; missing
    /// columns become NULL, unknown keys are an error.
    pub fn row_from_object(&self, obj: &Value) -> Result<Vec<Value>> {
        let map = obj.as_object()?;
        for (k, _) in map.iter() {
            if self.column_index(k).is_err() {
                return Err(Error::Schema(format!("unknown column '{k}'")));
            }
        }
        let mut row = Vec::with_capacity(self.columns.len());
        for c in &self.columns {
            row.push(map.get(&c.name).cloned().unwrap_or(Value::Null));
        }
        Ok(row)
    }

    /// Turn an ordered row back into an object.
    pub fn object_from_row(&self, row: &[Value]) -> Value {
        Value::object(
            self.columns
                .iter()
                .zip(row)
                .map(|(c, v)| (c.name.clone(), v.clone())),
        )
    }

    /// Encode the schema as a `Value` object:
    /// `{"columns": [{"name", "type", "nullable"}, ...], "primary_key"}`,
    /// with types in their SQL spelling. This is the shape shared by the
    /// wire protocol's `CREATE TABLE` and the WAL's `ddl/table` records.
    pub fn to_value(&self) -> Value {
        let columns: Vec<Value> = self
            .columns
            .iter()
            .map(|c| {
                Value::object([
                    ("name", Value::str(&c.name)),
                    ("type", Value::str(c.data_type.to_string())),
                    ("nullable", Value::Bool(c.nullable)),
                ])
            })
            .collect();
        Value::object([
            ("columns", Value::Array(columns)),
            ("primary_key", Value::str(self.primary_key_name())),
        ])
    }

    /// Decode [`Schema::to_value`] output back into a schema.
    pub fn from_value(v: &Value) -> Result<Schema> {
        let columns = v
            .get_field("columns")
            .as_array()
            .map_err(|_| Error::Schema("schema needs a 'columns' array".into()))?;
        let mut defs = Vec::with_capacity(columns.len());
        for c in columns {
            let name = c
                .get_field("name")
                .as_str()
                .map_err(|_| Error::Schema("schema column needs a string 'name'".into()))?;
            let ty = DataType::from_sql(
                c.get_field("type")
                    .as_str()
                    .map_err(|_| Error::Schema("schema column needs a string 'type'".into()))?,
            )?;
            let mut def = ColumnDef::new(name, ty);
            if let Value::Bool(false) = c.get_field("nullable") {
                def = def.not_null();
            }
            defs.push(def);
        }
        let pk = v
            .get_field("primary_key")
            .as_str()
            .map_err(|_| Error::Schema("schema needs a string 'primary_key'".into()))?;
        Schema::new(defs, pk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn customers() -> Schema {
        Schema::new(
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("name", DataType::Text).not_null(),
                ColumnDef::new("credit_limit", DataType::Int),
                ColumnDef::new("orders", DataType::Json),
            ],
            "id",
        )
        .unwrap()
    }

    #[test]
    fn construction_rules() {
        assert!(Schema::new(vec![], "id").is_err());
        assert!(Schema::new(vec![ColumnDef::new("a", DataType::Int)], "b").is_err());
        let dup = Schema::new(
            vec![ColumnDef::new("a", DataType::Int), ColumnDef::new("a", DataType::Text)],
            "a",
        );
        assert!(dup.is_err());
        let s = customers();
        assert_eq!(s.primary_key_name(), "id");
        assert!(!s.columns()[0].nullable, "pk is implicitly NOT NULL");
    }

    #[test]
    fn validation_and_coercion() {
        let s = customers();
        let mut row = vec![
            Value::float(1.0), // coerces to INT
            Value::str("Mary"),
            Value::int(5000),
            mmdb_types::from_json(r#"{"Order_no":"0c6df508"}"#).unwrap(),
        ];
        s.validate(&mut row).unwrap();
        assert_eq!(row[0], Value::int(1));
        assert!(matches!(row[0], Value::Number(mmdb_types::Number::Int(_))));
    }

    #[test]
    fn validation_failures() {
        let s = customers();
        // Wrong arity.
        assert!(s.validate(&mut [Value::int(1)]).is_err());
        // NOT NULL violation.
        let mut row = vec![Value::int(1), Value::Null, Value::Null, Value::Null];
        assert!(s.validate(&mut row).is_err());
        // Type mismatch.
        let mut row = vec![Value::str("x"), Value::str("Mary"), Value::Null, Value::Null];
        assert!(s.validate(&mut row).is_err());
        // Non-integral float into INT.
        let mut row = vec![Value::float(1.5), Value::str("Mary"), Value::Null, Value::Null];
        assert!(s.validate(&mut row).is_err());
    }

    #[test]
    fn object_row_roundtrip() {
        let s = customers();
        let obj = mmdb_types::from_json(r#"{"id":2,"name":"John","credit_limit":3000}"#).unwrap();
        let row = s.row_from_object(&obj).unwrap();
        assert_eq!(row[3], Value::Null, "missing column becomes NULL");
        let back = s.object_from_row(&row);
        assert_eq!(back.get_field("name"), &Value::str("John"));
        // Unknown key rejected.
        let bad = mmdb_types::from_json(r#"{"id":2,"oops":1}"#).unwrap();
        assert!(s.row_from_object(&bad).is_err());
    }

    #[test]
    fn value_encoding_round_trips() {
        let s = customers();
        let back = Schema::from_value(&s.to_value()).unwrap();
        assert_eq!(back.primary_key_name(), "id");
        assert_eq!(back.columns().len(), s.columns().len());
        for (a, b) in back.columns().iter().zip(s.columns()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.data_type, b.data_type);
            assert_eq!(a.nullable, b.nullable);
        }
        assert_eq!(Schema::from_value(&Value::int(3)).unwrap_err().kind(), "schema");
        assert!(DataType::from_sql("text").is_ok(), "case-insensitive");
        assert!(DataType::from_sql("DECIMAL").is_err());
    }

    #[test]
    fn json_column_admits_anything() {
        assert!(DataType::Json.admits(&Value::int(1)));
        assert!(DataType::Json.admits(&mmdb_types::from_json("[1,2]").unwrap()));
        assert!(!DataType::Int.admits(&Value::str("x")));
        assert!(DataType::Int.admits(&Value::Null));
    }
}
