//! Heap-backed tables with a primary-key index and optional secondary
//! B+-tree indexes.

use std::collections::HashMap;
use std::ops::Bound;
use std::sync::Arc;

use parking_lot::RwLock;

use mmdb_index::BPlusTree;
use mmdb_storage::{BufferPool, HeapFile, RecordId};
use mmdb_types::codec::{key_of, value_from_bytes, value_to_bytes};
use mmdb_types::{Error, Result, Value};

use crate::schema::Schema;

/// A simple predicate language for table scans; the full expression
/// language lives in `mmdb-query`, which compiles down to these where an
/// index can serve them.
#[derive(Debug, Clone)]
pub enum Predicate {
    /// Column = value.
    Eq(String, Value),
    /// lo <= column <= hi.
    Between(String, Value, Value),
    /// Column < value.
    Lt(String, Value),
    /// Column > value.
    Gt(String, Value),
    /// Both hold.
    And(Box<Predicate>, Box<Predicate>),
    /// Either holds.
    Or(Box<Predicate>, Box<Predicate>),
    /// Always true (full scan).
    True,
}

impl Predicate {
    /// Evaluate against a row.
    pub fn matches(&self, schema: &Schema, row: &[Value]) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Eq(c, v) => schema
                .column_index(c)
                .map(|i| &row[i] == v)
                .unwrap_or(false),
            Predicate::Between(c, lo, hi) => schema
                .column_index(c)
                .map(|i| &row[i] >= lo && &row[i] <= hi)
                .unwrap_or(false),
            Predicate::Lt(c, v) => schema
                .column_index(c)
                .map(|i| !row[i].is_null() && &row[i] < v)
                .unwrap_or(false),
            Predicate::Gt(c, v) => schema
                .column_index(c)
                .map(|i| !row[i].is_null() && &row[i] > v)
                .unwrap_or(false),
            Predicate::And(a, b) => a.matches(schema, row) && b.matches(schema, row),
            Predicate::Or(a, b) => a.matches(schema, row) || b.matches(schema, row),
        }
    }
}

struct Indexes {
    /// Primary key → record id.
    primary: BPlusTree<Vec<u8>, RecordId>,
    /// Secondary: column name → (encoded value ++ encoded pk) → record id.
    /// Including the pk in the key makes duplicate column values unique.
    secondary: HashMap<String, BPlusTree<Vec<u8>, RecordId>>,
}

/// A relational table.
pub struct Table {
    name: String,
    schema: Schema,
    heap: HeapFile,
    indexes: RwLock<Indexes>,
}

fn sec_key(value: &Value, pk: &Value) -> Vec<u8> {
    let mut k = key_of(value);
    k.push(0);
    k.extend(key_of(pk));
    k
}

impl Table {
    /// Create an empty table on the given buffer pool.
    pub fn create(name: &str, schema: Schema, pool: Arc<BufferPool>) -> Result<Table> {
        Ok(Table {
            name: name.to_string(),
            schema,
            heap: HeapFile::create(pool)?,
            indexes: RwLock::new(Indexes { primary: BPlusTree::new(), secondary: HashMap::new() }),
        })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Live row count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no rows exist.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Insert an ordered row. Fails on duplicate primary key.
    pub fn insert(&self, mut row: Vec<Value>) -> Result<()> {
        self.schema.validate(&mut row)?;
        let pk_value = row[self.schema.primary_key()].clone();
        let pk_key = key_of(&pk_value);
        {
            let idx = self.indexes.read();
            if idx.primary.contains_key(&pk_key) {
                return Err(Error::AlreadyExists(format!(
                    "primary key {pk_value} in table '{}'",
                    self.name
                )));
            }
        }
        let rid = self.heap.insert(&value_to_bytes(&Value::Array(row.clone())))?;
        let mut idx = self.indexes.write();
        idx.primary.insert(pk_key, rid);
        for (col, tree) in idx.secondary.iter_mut() {
            let ci = self.schema.column_index(col)?;
            tree.insert(sec_key(&row[ci], &pk_value), rid);
        }
        Ok(())
    }

    /// Insert from an object keyed by column names.
    pub fn insert_object(&self, obj: &Value) -> Result<()> {
        self.insert(self.schema.row_from_object(obj)?)
    }

    fn fetch(&self, rid: RecordId) -> Result<Vec<Value>> {
        match value_from_bytes(&self.heap.get(rid)?)? {
            Value::Array(row) => Ok(row),
            _ => Err(Error::Internal("table record is not a row".into())),
        }
    }

    /// Point lookup by primary key.
    pub fn get(&self, pk: &Value) -> Result<Option<Vec<Value>>> {
        let rid = { self.indexes.read().primary.get(&key_of(pk)).copied() };
        rid.map(|r| self.fetch(r)).transpose()
    }

    /// Delete by primary key; returns whether a row was removed.
    pub fn delete(&self, pk: &Value) -> Result<bool> {
        let pk_key = key_of(pk);
        let rid = { self.indexes.read().primary.get(&pk_key).copied() };
        let Some(rid) = rid else { return Ok(false) };
        let row = self.fetch(rid)?;
        self.heap.delete(rid)?;
        let mut idx = self.indexes.write();
        idx.primary.remove(&pk_key);
        for (col, tree) in idx.secondary.iter_mut() {
            let ci = self.schema.column_index(col)?;
            tree.remove(&sec_key(&row[ci], pk));
        }
        Ok(true)
    }

    /// Update the row with the given primary key to a new full row (same pk).
    pub fn update(&self, pk: &Value, mut new_row: Vec<Value>) -> Result<()> {
        self.schema.validate(&mut new_row)?;
        if &new_row[self.schema.primary_key()] != pk {
            return Err(Error::Schema("update must not change the primary key".into()));
        }
        let pk_key = key_of(pk);
        let rid = {
            self.indexes
                .read()
                .primary
                .get(&pk_key)
                .copied()
                .ok_or_else(|| Error::NotFound(format!("primary key {pk} in '{}'", self.name)))?
        };
        let old_row = self.fetch(rid)?;
        let new_rid = self.heap.update(rid, &value_to_bytes(&Value::Array(new_row.clone())))?;
        let mut idx = self.indexes.write();
        if new_rid != rid {
            idx.primary.insert(pk_key, new_rid);
        }
        for (col, tree) in idx.secondary.iter_mut() {
            let ci = self.schema.column_index(col)?;
            if old_row[ci] != new_row[ci] || new_rid != rid {
                tree.remove(&sec_key(&old_row[ci], pk));
                tree.insert(sec_key(&new_row[ci], pk), new_rid);
            }
        }
        Ok(())
    }

    /// Create a secondary B+-tree index on a column, backfilling it.
    pub fn create_index(&self, column: &str) -> Result<()> {
        self.schema.column_index(column)?;
        let mut idx = self.indexes.write();
        if idx.secondary.contains_key(column) {
            return Err(Error::AlreadyExists(format!("index on '{column}'")));
        }
        let mut tree = BPlusTree::new();
        let ci = self.schema.column_index(column)?;
        let pk_i = self.schema.primary_key();
        for (rid, bytes) in self.heap.scan()? {
            if let Value::Array(row) = value_from_bytes(&bytes)? {
                tree.insert(sec_key(&row[ci], &row[pk_i]), rid);
            }
        }
        idx.secondary.insert(column.to_string(), tree);
        Ok(())
    }

    /// Which columns have secondary indexes.
    pub fn indexed_columns(&self) -> Vec<String> {
        let mut cols: Vec<String> = self.indexes.read().secondary.keys().cloned().collect();
        cols.sort();
        cols
    }

    /// Scan with a predicate, using a secondary index when one matches the
    /// predicate's column (returns `(rows, used_index)` so callers/benches
    /// can observe plan choice).
    pub fn select(&self, pred: &Predicate) -> Result<(Vec<Vec<Value>>, bool)> {
        // Index-served cases.
        if let Some((column, lo, hi)) = index_range(pred) {
            let idx = self.indexes.read();
            if let Some(tree) = idx.secondary.get(column) {
                let lo_key = match &lo {
                    Bound::Included(v) => Bound::Included(key_of(v)),
                    Bound::Excluded(v) => {
                        // Excluded lower bound over composite keys: everything
                        // for this value sorts as value||0||pk, so exclude by
                        // appending 0xFF to skip all pks of the value.
                        let mut k = key_of(v);
                        k.push(0xFF);
                        Bound::Included(k)
                    }
                    Bound::Unbounded => Bound::Unbounded,
                };
                let hi_key = match &hi {
                    Bound::Included(v) => {
                        let mut k = key_of(v);
                        k.push(0xFF);
                        Bound::Included(k)
                    }
                    Bound::Excluded(v) => Bound::Excluded(key_of(v)),
                    Bound::Unbounded => Bound::Unbounded,
                };
                let rids: Vec<RecordId> = tree
                    .range(
                        match &lo_key {
                            Bound::Included(k) => Bound::Included(k),
                            Bound::Excluded(k) => Bound::Excluded(k),
                            Bound::Unbounded => Bound::Unbounded,
                        },
                        match &hi_key {
                            Bound::Included(k) => Bound::Included(k),
                            Bound::Excluded(k) => Bound::Excluded(k),
                            Bound::Unbounded => Bound::Unbounded,
                        },
                    )
                    .map(|(_, rid)| *rid)
                    .collect();
                drop(idx);
                let mut rows = Vec::with_capacity(rids.len());
                for rid in rids {
                    let row = self.fetch(rid)?;
                    // Recheck (cheap) to keep semantics exact.
                    if pred.matches(&self.schema, &row) {
                        rows.push(row);
                    }
                }
                return Ok((rows, true));
            }
        }
        // Fallback: full scan.
        let mut rows = Vec::new();
        for (_, bytes) in self.heap.scan()? {
            if let Value::Array(row) = value_from_bytes(&bytes)? {
                if pred.matches(&self.schema, &row) {
                    rows.push(row);
                }
            }
        }
        Ok((rows, false))
    }

    /// All rows.
    pub fn scan(&self) -> Result<Vec<Vec<Value>>> {
        Ok(self.select(&Predicate::True)?.0)
    }

    /// Range select with explicit per-side bounds on one column, using the
    /// column's secondary index when present. Returns `(rows, used_index)`.
    pub fn select_range(
        &self,
        column: &str,
        lo: Bound<&Value>,
        hi: Bound<&Value>,
    ) -> Result<(Vec<Vec<Value>>, bool)> {
        let ci = self.schema.column_index(column)?;
        {
            let idx = self.indexes.read();
            if let Some(tree) = idx.secondary.get(column) {
                // See `select`: composite keys are value ++ 0 ++ pk, so the
                // 0xFF suffix covers all pks of a value.
                let lo_key = match lo {
                    Bound::Included(v) => Bound::Included(key_of(v)),
                    Bound::Excluded(v) => {
                        let mut k = key_of(v);
                        k.push(0xFF);
                        Bound::Included(k)
                    }
                    Bound::Unbounded => Bound::Unbounded,
                };
                let hi_key = match hi {
                    Bound::Included(v) => {
                        let mut k = key_of(v);
                        k.push(0xFF);
                        Bound::Included(k)
                    }
                    Bound::Excluded(v) => Bound::Excluded(key_of(v)),
                    Bound::Unbounded => Bound::Unbounded,
                };
                fn reb(b: &Bound<Vec<u8>>) -> Bound<&Vec<u8>> {
                    match b {
                        Bound::Included(k) => Bound::Included(k),
                        Bound::Excluded(k) => Bound::Excluded(k),
                        Bound::Unbounded => Bound::Unbounded,
                    }
                }
                let rids: Vec<RecordId> =
                    tree.range(reb(&lo_key), reb(&hi_key)).map(|(_, rid)| *rid).collect();
                drop(idx);
                let mut rows = Vec::with_capacity(rids.len());
                for rid in rids {
                    rows.push(self.fetch(rid)?);
                }
                return Ok((rows, true));
            }
        }
        let mut rows = Vec::new();
        for (_, bytes) in self.heap.scan()? {
            if let Value::Array(row) = value_from_bytes(&bytes)? {
                let v = &row[ci];
                let above = match lo {
                    Bound::Included(l) => v >= l,
                    Bound::Excluded(l) => v > l,
                    Bound::Unbounded => true,
                };
                let below = match hi {
                    Bound::Included(h) => v <= h,
                    Bound::Excluded(h) => v < h,
                    Bound::Unbounded => true,
                };
                if above && below {
                    rows.push(row);
                }
            }
        }
        Ok((rows, false))
    }
}

/// If the predicate is a single-column range/eq, return its bounds.
fn index_range(pred: &Predicate) -> Option<(&str, Bound<&Value>, Bound<&Value>)> {
    match pred {
        Predicate::Eq(c, v) => Some((c, Bound::Included(v), Bound::Included(v))),
        Predicate::Between(c, lo, hi) => Some((c, Bound::Included(lo), Bound::Included(hi))),
        Predicate::Lt(c, v) => Some((c, Bound::Unbounded, Bound::Excluded(v))),
        Predicate::Gt(c, v) => Some((c, Bound::Excluded(v), Bound::Unbounded)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, DataType};
    use mmdb_storage::DiskManager;

    fn customers_table() -> Table {
        let pool = Arc::new(BufferPool::new(Arc::new(DiskManager::in_memory()), 64));
        let schema = Schema::new(
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("name", DataType::Text).not_null(),
                ColumnDef::new("credit_limit", DataType::Int),
            ],
            "id",
        )
        .unwrap();
        let t = Table::create("customers", schema, pool).unwrap();
        // The paper's running example (slide 27).
        for (id, name, limit) in [(1, "Mary", 5000), (2, "John", 3000), (3, "Anne", 2000)] {
            t.insert(vec![Value::int(id), Value::str(name), Value::int(limit)]).unwrap();
        }
        t
    }

    #[test]
    fn insert_get_by_pk() {
        let t = customers_table();
        let row = t.get(&Value::int(1)).unwrap().unwrap();
        assert_eq!(row[1], Value::str("Mary"));
        assert!(t.get(&Value::int(9)).unwrap().is_none());
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn duplicate_pk_rejected() {
        let t = customers_table();
        let e = t.insert(vec![Value::int(1), Value::str("Dup"), Value::Null]).unwrap_err();
        assert_eq!(e.kind(), "already_exists");
    }

    #[test]
    fn paper_filter_credit_limit_gt_3000() {
        let t = customers_table();
        let (rows, used_index) = t.select(&Predicate::Gt("credit_limit".into(), Value::int(3000))).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][1], Value::str("Mary"));
        assert!(!used_index);
        // Same query through an index.
        t.create_index("credit_limit").unwrap();
        let (rows, used_index) = t.select(&Predicate::Gt("credit_limit".into(), Value::int(3000))).unwrap();
        assert_eq!(rows.len(), 1);
        assert!(used_index);
    }

    #[test]
    fn index_handles_duplicates_and_ranges() {
        let pool = Arc::new(BufferPool::new(Arc::new(DiskManager::in_memory()), 64));
        let schema = Schema::new(
            vec![ColumnDef::new("id", DataType::Int), ColumnDef::new("grp", DataType::Int)],
            "id",
        )
        .unwrap();
        let t = Table::create("t", schema, pool).unwrap();
        for i in 0..100 {
            t.insert(vec![Value::int(i), Value::int(i % 5)]).unwrap();
        }
        t.create_index("grp").unwrap();
        let (rows, used) = t.select(&Predicate::Eq("grp".into(), Value::int(3))).unwrap();
        assert!(used);
        assert_eq!(rows.len(), 20);
        let (rows, _) = t
            .select(&Predicate::Between("grp".into(), Value::int(1), Value::int(2)))
            .unwrap();
        assert_eq!(rows.len(), 40);
        let (rows, _) = t.select(&Predicate::Lt("grp".into(), Value::int(1))).unwrap();
        assert_eq!(rows.len(), 20);
    }

    #[test]
    fn update_maintains_indexes() {
        let t = customers_table();
        t.create_index("credit_limit").unwrap();
        t.update(&Value::int(3), vec![Value::int(3), Value::str("Anne"), Value::int(9000)]).unwrap();
        let (rows, used) = t.select(&Predicate::Gt("credit_limit".into(), Value::int(3000))).unwrap();
        assert!(used);
        assert_eq!(rows.len(), 2);
        // The old index entry is gone.
        let (rows, _) = t.select(&Predicate::Eq("credit_limit".into(), Value::int(2000))).unwrap();
        assert!(rows.is_empty());
        // PK change is rejected.
        let e = t.update(&Value::int(3), vec![Value::int(4), Value::str("A"), Value::Null]);
        assert!(e.is_err());
        // Updating a missing row errors.
        assert!(t.update(&Value::int(77), vec![Value::int(77), Value::str("x"), Value::Null]).is_err());
    }

    #[test]
    fn delete_maintains_indexes() {
        let t = customers_table();
        t.create_index("name").unwrap();
        assert!(t.delete(&Value::int(2)).unwrap());
        assert!(!t.delete(&Value::int(2)).unwrap());
        assert_eq!(t.len(), 2);
        let (rows, used) = t.select(&Predicate::Eq("name".into(), Value::str("John"))).unwrap();
        assert!(used);
        assert!(rows.is_empty());
    }

    #[test]
    fn insert_object_and_scan() {
        let t = customers_table();
        t.insert_object(&mmdb_types::from_json(r#"{"id":4,"name":"Petra"}"#).unwrap()).unwrap();
        let all = t.scan().unwrap();
        assert_eq!(all.len(), 4);
        let petra = t.get(&Value::int(4)).unwrap().unwrap();
        assert_eq!(petra[2], Value::Null);
    }

    #[test]
    fn compound_predicates() {
        let t = customers_table();
        let p = Predicate::And(
            Box::new(Predicate::Gt("credit_limit".into(), Value::int(1000))),
            Box::new(Predicate::Lt("credit_limit".into(), Value::int(4000))),
        );
        let (rows, _) = t.select(&p).unwrap();
        assert_eq!(rows.len(), 2); // John 3000, Anne 2000
        let p = Predicate::Or(
            Box::new(Predicate::Eq("name".into(), Value::str("Mary"))),
            Box::new(Predicate::Eq("name".into(), Value::str("Anne"))),
        );
        let (rows, _) = t.select(&p).unwrap();
        assert_eq!(rows.len(), 2);
    }
}
