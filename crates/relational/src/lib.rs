//! # mmdb-relational — the relational model
//!
//! Schema-ful tables over heap files, in the PostgreSQL mould the tutorial
//! leads its storage survey with: typed columns (including `Json` — the
//! `orders JSONB` column of the slide example), heap storage, B+-tree
//! secondary indexes, and a catalog.
//!
//! [`universal`] adds Sinew's alternative: a *universal relation* over
//! multi-structured data — "one column for each unique key in the data
//! set; nested data is flattened into separate columns" — with physical
//! columns only *partially materialized* (ablation E6 measures the
//! materialization effect).

pub mod catalog;
pub mod schema;
pub mod table;
pub mod universal;

pub use catalog::Catalog;
pub use schema::{ColumnDef, DataType, Schema};
pub use table::{Predicate, Table};
pub use universal::UniversalRelation;
