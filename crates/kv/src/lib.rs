//! # mmdb-kv — the key/value model
//!
//! Riak-style buckets of key/value pairs ("key/value pairs in buckets"),
//! stored on the Cassandra-style LSM engine from `mmdb_storage::lsm`.
//! Values are arbitrary [`Value`]s, so a "simple" key/value pair can carry
//! a whole document — the tutorial's observation that the document model
//! is "key/value where the value is complex" runs in the other direction
//! too.
//!
//! The store is the home of UniBench's shopping-cart data
//! (`customer_id → order_no`).

use std::collections::HashMap;

use parking_lot::RwLock;

use mmdb_storage::lsm::{LsmConfig, LsmStats, LsmTree};
use mmdb_types::codec::{value_from_bytes, value_to_bytes};
use mmdb_types::{Error, Result, Value};

/// A key/value store of named buckets.
pub struct KvStore {
    buckets: RwLock<HashMap<String, RwLock<LsmTree>>>,
    config: LsmConfig,
}

impl Default for KvStore {
    fn default() -> Self {
        Self::new(LsmConfig::default())
    }
}

impl KvStore {
    /// New store; each bucket gets its own LSM tree with this config.
    pub fn new(config: LsmConfig) -> Self {
        KvStore { buckets: RwLock::new(HashMap::new()), config }
    }

    /// Create a bucket. Errors if it already exists.
    pub fn create_bucket(&self, name: &str) -> Result<()> {
        let mut buckets = self.buckets.write();
        if buckets.contains_key(name) {
            return Err(Error::AlreadyExists(format!("bucket '{name}'")));
        }
        buckets.insert(name.to_string(), RwLock::new(LsmTree::new(self.config.clone())));
        Ok(())
    }

    /// Drop a bucket and its contents.
    pub fn drop_bucket(&self, name: &str) -> Result<()> {
        self.buckets
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| Error::NotFound(format!("bucket '{name}'")))
    }

    /// List bucket names (sorted).
    pub fn buckets(&self) -> Vec<String> {
        let mut names: Vec<String> = self.buckets.read().keys().cloned().collect();
        names.sort();
        names
    }

    fn with_bucket<R>(&self, name: &str, f: impl FnOnce(&RwLock<LsmTree>) -> R) -> Result<R> {
        let buckets = self.buckets.read();
        let b = buckets
            .get(name)
            .ok_or_else(|| Error::NotFound(format!("bucket '{name}'")))?;
        Ok(f(b))
    }

    /// Store a value under a key.
    pub fn put(&self, bucket: &str, key: &str, value: Value) -> Result<()> {
        self.with_bucket(bucket, |b| {
            b.write().put(key.as_bytes().to_vec(), value_to_bytes(&value).to_vec())
        })?
    }

    /// Fetch a value.
    pub fn get(&self, bucket: &str, key: &str) -> Result<Option<Value>> {
        self.with_bucket(bucket, |b| {
            b.write()
                .get(key.as_bytes())
                .map(|bytes| value_from_bytes(&bytes))
                .transpose()
        })?
    }

    /// Delete a key. Returns whether the key existed.
    pub fn delete(&self, bucket: &str, key: &str) -> Result<bool> {
        self.with_bucket(bucket, |b| {
            let mut tree = b.write();
            let existed = tree.get(key.as_bytes()).is_some();
            tree.delete(key.as_bytes().to_vec())?;
            Ok(existed)
        })?
    }

    /// Apply several writes to one bucket at once (single lock hold — the
    /// "simple API" batch operation of DynamoDB's flavour).
    pub fn put_batch(&self, bucket: &str, entries: Vec<(String, Value)>) -> Result<()> {
        self.with_bucket(bucket, |b| {
            let mut tree = b.write();
            for (k, v) in entries {
                tree.put(k.into_bytes(), value_to_bytes(&v).to_vec())?;
            }
            Ok(())
        })?
    }

    /// All `(key, value)` pairs whose key starts with `prefix`, sorted.
    pub fn scan_prefix(&self, bucket: &str, prefix: &str) -> Result<Vec<(String, Value)>> {
        // Prefix scan = range [prefix, prefix+1).
        let start = prefix.as_bytes().to_vec();
        let mut end = start.clone();
        // Increment the last byte that isn't 0xFF to form the exclusive bound.
        while let Some(&last) = end.last() {
            if last == 0xFF {
                end.pop();
            } else {
                *end.last_mut().expect("nonempty") += 1; // lint: allow(panic, while-let just matched Some, so end is nonempty)
                break;
            }
        }
        self.with_bucket(bucket, |b| {
            let tree = b.read();
            let raw = if end.is_empty() {
                tree.scan(Some(&start), None)
            } else {
                tree.scan(Some(&start), Some(&end))
            };
            raw.into_iter()
                .map(|(k, v)| {
                    let key = String::from_utf8(k)
                        .map_err(|_| Error::Storage("non-utf8 key".into()))?;
                    Ok((key, value_from_bytes(&v)?))
                })
                .collect::<Result<Vec<_>>>()
        })?
    }

    /// Every pair in the bucket, sorted by key.
    pub fn scan_all(&self, bucket: &str) -> Result<Vec<(String, Value)>> {
        self.scan_prefix(bucket, "")
    }

    /// Number of live keys in a bucket.
    pub fn len(&self, bucket: &str) -> Result<usize> {
        self.with_bucket(bucket, |b| b.read().live_len())
    }

    /// LSM engine counters for a bucket.
    pub fn stats(&self, bucket: &str) -> Result<LsmStats> {
        self.with_bucket(bucket, |b| b.read().stats())
    }

    /// Force-compact a bucket.
    pub fn compact(&self, bucket: &str) -> Result<()> {
        self.with_bucket(bucket, |b| b.write().compact_full())?
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> KvStore {
        let s = KvStore::new(LsmConfig { memtable_bytes: 512, tier_fanout: 3 });
        s.create_bucket("cart").unwrap();
        s
    }

    #[test]
    fn the_paper_shopping_cart() {
        // Slide 26: "1" → "34e5e759", "2" → "0c6df508".
        let s = store();
        s.put("cart", "1", Value::str("34e5e759")).unwrap();
        s.put("cart", "2", Value::str("0c6df508")).unwrap();
        assert_eq!(s.get("cart", "2").unwrap(), Some(Value::str("0c6df508")));
        assert_eq!(s.get("cart", "3").unwrap(), None);
    }

    #[test]
    fn bucket_lifecycle() {
        let s = store();
        assert!(s.create_bucket("cart").is_err());
        s.create_bucket("sessions").unwrap();
        assert_eq!(s.buckets(), vec!["cart", "sessions"]);
        s.drop_bucket("sessions").unwrap();
        assert!(s.drop_bucket("sessions").is_err());
        assert!(s.put("sessions", "k", Value::Null).is_err());
        assert!(matches!(s.get("nope", "k"), Err(Error::NotFound(_))));
    }

    #[test]
    fn complex_values_roundtrip() {
        let s = store();
        let doc = mmdb_types::from_json(r#"{"items":[1,2,3],"total":66.5}"#).unwrap();
        s.put("cart", "rich", doc.clone()).unwrap();
        assert_eq!(s.get("cart", "rich").unwrap(), Some(doc));
    }

    #[test]
    fn delete_reports_existence() {
        let s = store();
        s.put("cart", "k", Value::int(1)).unwrap();
        assert!(s.delete("cart", "k").unwrap());
        assert!(!s.delete("cart", "k").unwrap());
        assert_eq!(s.get("cart", "k").unwrap(), None);
    }

    #[test]
    fn many_keys_cross_lsm_flushes() {
        let s = store();
        for i in 0..500 {
            s.put("cart", &format!("user:{i:04}"), Value::int(i)).unwrap();
        }
        assert!(s.stats("cart").unwrap().flushes > 0);
        assert_eq!(s.len("cart").unwrap(), 500);
        for i in (0..500).step_by(37) {
            assert_eq!(s.get("cart", &format!("user:{i:04}")).unwrap(), Some(Value::int(i)));
        }
    }

    #[test]
    fn prefix_scans() {
        let s = store();
        s.put_batch(
            "cart",
            vec![
                ("user:1".into(), Value::int(1)),
                ("user:2".into(), Value::int(2)),
                ("order:9".into(), Value::int(9)),
            ],
        )
        .unwrap();
        let users = s.scan_prefix("cart", "user:").unwrap();
        assert_eq!(users.len(), 2);
        assert_eq!(users[0].0, "user:1");
        assert_eq!(s.scan_all("cart").unwrap().len(), 3);
        assert!(s.scan_prefix("cart", "zzz").unwrap().is_empty());
    }

    #[test]
    fn compact_preserves_data() {
        let s = store();
        for i in 0..300 {
            s.put("cart", &format!("k{i}"), Value::int(i)).unwrap();
        }
        for i in 0..150 {
            s.delete("cart", &format!("k{i}")).unwrap();
        }
        s.compact("cart").unwrap();
        assert_eq!(s.len("cart").unwrap(), 150);
        assert_eq!(s.get("cart", "k200").unwrap(), Some(Value::int(200)));
        assert_eq!(s.get("cart", "k100").unwrap(), None);
    }
}
