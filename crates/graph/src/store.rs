//! The graph store: vertex/edge documents plus the edge (adjacency) index.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use mmdb_document::Collection;
use mmdb_storage::BufferPool;
use mmdb_types::{Error, Result, Value};

/// Reserved edge attribute naming the source vertex (`coll/key`).
pub const FROM_FIELD: &str = "_from";
/// Reserved edge attribute naming the target vertex (`coll/key`).
pub const TO_FIELD: &str = "_to";

/// Traversal direction, as in AQL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow edges from `_from` to `_to`.
    Outbound,
    /// Follow edges from `_to` to `_from`.
    Inbound,
    /// Both directions.
    Any,
}

/// A vertex handle `collection/key`.
pub type VertexHandle = String;
/// An edge handle `collection/key`.
pub type EdgeHandle = String;

/// Compose a handle.
pub fn handle(collection: &str, key: &str) -> String {
    format!("{collection}/{key}")
}

/// Split a handle into `(collection, key)`.
pub fn split_handle(h: &str) -> Result<(&str, &str)> {
    h.split_once('/')
        .ok_or_else(|| Error::Schema(format!("'{h}' is not a 'collection/key' handle")))
}

/// ArangoDB's edge index: two hash multimaps, `_from → edges` and
/// `_to → edges`.
#[derive(Default)]
struct EdgeIndex {
    out: HashMap<String, Vec<EdgeHandle>>,
    inn: HashMap<String, Vec<EdgeHandle>>,
}

/// A named property graph.
pub struct Graph {
    name: String,
    pool: Arc<BufferPool>,
    vertices: RwLock<HashMap<String, Arc<Collection>>>,
    edges: RwLock<HashMap<String, Arc<Collection>>>,
    edge_index: RwLock<EdgeIndex>,
}

impl Graph {
    /// New empty graph on a buffer pool.
    pub fn create(name: &str, pool: Arc<BufferPool>) -> Graph {
        Graph {
            name: name.to_string(),
            pool,
            vertices: RwLock::new(HashMap::new()),
            edges: RwLock::new(HashMap::new()),
            edge_index: RwLock::new(EdgeIndex::default()),
        }
    }

    /// Graph name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add a vertex collection.
    pub fn create_vertex_collection(&self, name: &str) -> Result<()> {
        let mut vs = self.vertices.write();
        if vs.contains_key(name) || self.edges.read().contains_key(name) {
            return Err(Error::AlreadyExists(format!("collection '{name}'")));
        }
        vs.insert(name.to_string(), Arc::new(Collection::create(name, Arc::clone(&self.pool))?));
        Ok(())
    }

    /// Add an edge collection.
    pub fn create_edge_collection(&self, name: &str) -> Result<()> {
        // Check `vertices` with a temporary guard before taking `edges`:
        // holding `edges` while reading `vertices` would nest opposite
        // to `create_vertex_collection` (declared order: vertices before
        // edges) and risk an AB/BA deadlock.
        if self.vertices.read().contains_key(name) {
            return Err(Error::AlreadyExists(format!("collection '{name}'")));
        }
        let mut es = self.edges.write();
        if es.contains_key(name) {
            return Err(Error::AlreadyExists(format!("collection '{name}'")));
        }
        es.insert(name.to_string(), Arc::new(Collection::create(name, Arc::clone(&self.pool))?));
        Ok(())
    }

    fn vertex_collection(&self, name: &str) -> Result<Arc<Collection>> {
        self.vertices
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("vertex collection '{name}'")))
    }

    fn edge_collection(&self, name: &str) -> Result<Arc<Collection>> {
        self.edges
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("edge collection '{name}'")))
    }

    /// Insert a vertex document; returns its handle.
    pub fn add_vertex(&self, collection: &str, doc: Value) -> Result<VertexHandle> {
        let coll = self.vertex_collection(collection)?;
        let key = coll.insert(doc)?;
        Ok(handle(collection, &key))
    }

    /// Fetch a vertex by handle.
    pub fn vertex(&self, h: &str) -> Result<Option<Value>> {
        let (coll, key) = split_handle(h)?;
        self.vertex_collection(coll)?.get(key)
    }

    /// Replace a vertex document wholesale (edges are untouched).
    pub fn update_vertex(&self, h: &str, doc: Value) -> Result<()> {
        let (coll, key) = split_handle(h)?;
        self.vertex_collection(coll)?.update(key, doc)
    }

    /// Insert an edge `from → to` with properties; returns its handle.
    /// Both endpoints must exist.
    pub fn add_edge(
        &self,
        collection: &str,
        from: &str,
        to: &str,
        mut properties: Value,
    ) -> Result<EdgeHandle> {
        if self.vertex(from)?.is_none() {
            return Err(Error::NotFound(format!("vertex '{from}'")));
        }
        if self.vertex(to)?.is_none() {
            return Err(Error::NotFound(format!("vertex '{to}'")));
        }
        let coll = self.edge_collection(collection)?;
        {
            let obj = properties.as_object_mut()?;
            obj.insert(FROM_FIELD, Value::str(from));
            obj.insert(TO_FIELD, Value::str(to));
        }
        let key = coll.insert(properties)?;
        let eh = handle(collection, &key);
        let mut idx = self.edge_index.write();
        idx.out.entry(from.to_string()).or_default().push(eh.clone());
        idx.inn.entry(to.to_string()).or_default().push(eh.clone());
        Ok(eh)
    }

    /// Fetch an edge document by handle.
    pub fn edge(&self, h: &str) -> Result<Option<Value>> {
        let (coll, key) = split_handle(h)?;
        self.edge_collection(coll)?.get(key)
    }

    /// Remove an edge.
    pub fn remove_edge(&self, h: &str) -> Result<bool> {
        let Some(doc) = self.edge(h)? else { return Ok(false) };
        let (coll, key) = split_handle(h)?;
        self.edge_collection(coll)?.remove(key)?;
        let mut idx = self.edge_index.write();
        if let Ok(from) = doc.get_field(FROM_FIELD).as_str() {
            if let Some(v) = idx.out.get_mut(from) {
                v.retain(|e| e != h);
            }
        }
        if let Ok(to) = doc.get_field(TO_FIELD).as_str() {
            if let Some(v) = idx.inn.get_mut(to) {
                v.retain(|e| e != h);
            }
        }
        Ok(true)
    }

    /// Remove a vertex and all its incident edges (cascading, as graph
    /// modules do).
    pub fn remove_vertex(&self, h: &str) -> Result<bool> {
        let (coll, key) = split_handle(h)?;
        let existed = self.vertex_collection(coll)?.remove(key)?;
        if existed {
            let incident: Vec<EdgeHandle> = {
                let idx = self.edge_index.read();
                idx.out
                    .get(h)
                    .into_iter()
                    .chain(idx.inn.get(h))
                    .flatten()
                    .cloned()
                    .collect()
            };
            for e in incident {
                self.remove_edge(&e)?;
            }
        }
        Ok(existed)
    }

    /// Edges incident to `vertex` in `dir`, restricted to one edge
    /// collection (`None` = all edge collections). Returns edge documents.
    pub fn edges_of(
        &self,
        vertex: &str,
        dir: Direction,
        edge_collection: Option<&str>,
    ) -> Result<Vec<Value>> {
        let idx = self.edge_index.read();
        let mut handles: Vec<EdgeHandle> = Vec::new();
        if matches!(dir, Direction::Outbound | Direction::Any) {
            handles.extend(idx.out.get(vertex).into_iter().flatten().cloned());
        }
        if matches!(dir, Direction::Inbound | Direction::Any) {
            handles.extend(idx.inn.get(vertex).into_iter().flatten().cloned());
        }
        drop(idx);
        let mut out = Vec::with_capacity(handles.len());
        for h in handles {
            let (coll, _) = split_handle(&h)?;
            if edge_collection.is_some_and(|ec| ec != coll) {
                continue;
            }
            if let Some(doc) = self.edge(&h)? {
                out.push(doc);
            }
        }
        Ok(out)
    }

    /// Neighbouring vertex handles of `vertex` in `dir` via one edge
    /// collection (`None` = all).
    pub fn neighbors(
        &self,
        vertex: &str,
        dir: Direction,
        edge_collection: Option<&str>,
    ) -> Result<Vec<VertexHandle>> {
        let mut out = Vec::new();
        for edge in self.edges_of(vertex, dir, edge_collection)? {
            let from = edge.get_field(FROM_FIELD).as_str()?.to_string();
            let to = edge.get_field(TO_FIELD).as_str()?.to_string();
            match dir {
                Direction::Outbound => out.push(to),
                Direction::Inbound => out.push(from),
                Direction::Any => out.push(if from == vertex { to } else { from }),
            }
        }
        out.sort();
        out.dedup();
        Ok(out)
    }

    /// Whether an edge collection with this name exists.
    pub fn edge_collection_exists(&self, name: &str) -> bool {
        self.edges.read().contains_key(name)
    }

    /// Count vertices across all vertex collections.
    pub fn vertex_count(&self) -> usize {
        self.vertices.read().values().map(|c| c.len()).sum()
    }

    /// Count edges across all edge collections.
    pub fn edge_count(&self) -> usize {
        self.edges.read().values().map(|c| c.len()).sum()
    }

    /// All vertex handles (sorted) — small graphs/tests only.
    pub fn all_vertices(&self) -> Result<Vec<VertexHandle>> {
        let mut out = Vec::new();
        for (name, coll) in self.vertices.read().iter() {
            for doc in coll.all()? {
                out.push(handle(name, doc.get_field("_key").as_str()?));
            }
        }
        out.sort();
        Ok(out)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use mmdb_storage::DiskManager;
    use mmdb_types::from_json;

    pub(crate) fn paper_graph() -> Graph {
        // Slide 27: Mary knows John, Anne knows Mary.
        let pool = Arc::new(BufferPool::new(Arc::new(DiskManager::in_memory()), 64));
        let g = Graph::create("social", pool);
        g.create_vertex_collection("customers").unwrap();
        g.create_edge_collection("knows").unwrap();
        for (key, name) in [("1", "Mary"), ("2", "John"), ("3", "Anne")] {
            g.add_vertex(
                "customers",
                from_json(&format!(r#"{{"_key":"{key}","name":"{name}"}}"#)).unwrap(),
            )
            .unwrap();
        }
        g.add_edge("knows", "customers/1", "customers/2", from_json("{}").unwrap()).unwrap();
        g.add_edge("knows", "customers/3", "customers/1", from_json("{}").unwrap()).unwrap();
        g
    }

    #[test]
    fn vertices_and_edges_are_documents() {
        let g = paper_graph();
        let mary = g.vertex("customers/1").unwrap().unwrap();
        assert_eq!(mary.get_field("name"), &Value::str("Mary"));
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        let edges = g.edges_of("customers/1", Direction::Outbound, Some("knows")).unwrap();
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].get_field("_to"), &Value::str("customers/2"));
    }

    #[test]
    fn adjacency_in_all_directions() {
        let g = paper_graph();
        assert_eq!(g.neighbors("customers/1", Direction::Outbound, Some("knows")).unwrap(), vec!["customers/2"]);
        assert_eq!(g.neighbors("customers/1", Direction::Inbound, Some("knows")).unwrap(), vec!["customers/3"]);
        assert_eq!(
            g.neighbors("customers/1", Direction::Any, Some("knows")).unwrap(),
            vec!["customers/2", "customers/3"]
        );
        assert!(g.neighbors("customers/2", Direction::Outbound, None).unwrap().is_empty());
    }

    #[test]
    fn dangling_edges_rejected() {
        let g = paper_graph();
        let e = g.add_edge("knows", "customers/1", "customers/99", from_json("{}").unwrap());
        assert!(matches!(e, Err(Error::NotFound(_))));
        let e = g.add_edge("knows", "nope/1", "customers/1", from_json("{}").unwrap());
        assert!(e.is_err());
    }

    #[test]
    fn edge_properties() {
        let g = paper_graph();
        let eh = g
            .add_edge(
                "knows",
                "customers/2",
                "customers/3",
                from_json(r#"{"since":2015,"weight":0.9}"#).unwrap(),
            )
            .unwrap();
        let edge = g.edge(&eh).unwrap().unwrap();
        assert_eq!(edge.get_field("since"), &Value::int(2015));
        assert_eq!(edge.get_field("_from"), &Value::str("customers/2"));
    }

    #[test]
    fn remove_edge_updates_index() {
        let g = paper_graph();
        let edges = g.edges_of("customers/1", Direction::Outbound, None).unwrap();
        let eh = handle("knows", edges[0].get_field("_key").as_str().unwrap());
        assert!(g.remove_edge(&eh).unwrap());
        assert!(!g.remove_edge(&eh).unwrap());
        assert!(g.neighbors("customers/1", Direction::Outbound, None).unwrap().is_empty());
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn remove_vertex_cascades() {
        let g = paper_graph();
        assert!(g.remove_vertex("customers/1").unwrap());
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 0, "both incident edges removed");
        assert!(g.neighbors("customers/3", Direction::Outbound, None).unwrap().is_empty());
    }

    #[test]
    fn collection_name_collisions() {
        let g = paper_graph();
        assert!(g.create_vertex_collection("knows").is_err());
        assert!(g.create_edge_collection("customers").is_err());
        assert!(split_handle("nohandle").is_err());
    }

    #[test]
    fn all_vertices_sorted() {
        let g = paper_graph();
        assert_eq!(
            g.all_vertices().unwrap(),
            vec!["customers/1", "customers/2", "customers/3"]
        );
    }
}
