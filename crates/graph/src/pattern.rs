//! Subgraph pattern matching: bind variables over vertices so that every
//! edge pattern is realized — the graph-side ancestor of the "inter-model
//! joins" the tutorial's challenge list calls for.

use std::collections::HashMap;

use mmdb_types::{Result, Value};

use crate::store::{Direction, Graph, VertexHandle};

/// One edge constraint in a pattern: `from_var —edge_collection→ to_var`,
/// optionally requiring the edge document to contain `edge_filter`.
#[derive(Debug, Clone)]
pub struct EdgePattern {
    /// Variable bound to the source vertex.
    pub from_var: String,
    /// Edge collection to match (`None` = any).
    pub edge_collection: Option<String>,
    /// Variable bound to the target vertex.
    pub to_var: String,
    /// Containment filter on the edge document.
    pub edge_filter: Option<Value>,
}

/// A full pattern: edge constraints plus per-variable vertex filters
/// (containment patterns on the vertex document).
#[derive(Debug, Clone, Default)]
pub struct GraphPattern {
    /// Edge constraints.
    pub edges: Vec<EdgePattern>,
    /// Vertex filters: variable → containment pattern.
    pub vertex_filters: HashMap<String, Value>,
}

impl GraphPattern {
    /// New empty pattern.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an edge constraint, builder-style.
    pub fn edge(mut self, from_var: &str, collection: &str, to_var: &str) -> Self {
        self.edges.push(EdgePattern {
            from_var: from_var.to_string(),
            edge_collection: Some(collection.to_string()),
            to_var: to_var.to_string(),
            edge_filter: None,
        });
        self
    }

    /// Add a vertex containment filter, builder-style.
    pub fn filter(mut self, var: &str, pattern: Value) -> Self {
        self.vertex_filters.insert(var.to_string(), pattern);
        self
    }

    /// Find all bindings of variables to vertex handles satisfying the
    /// pattern. Distinct variables may bind to the same vertex (no
    /// isomorphism constraint), matching SPARQL/Cypher-`MATCH` semantics.
    pub fn matches(&self, graph: &Graph) -> Result<Vec<HashMap<String, VertexHandle>>> {
        let mut results = Vec::new();
        let mut binding: HashMap<String, VertexHandle> = HashMap::new();
        self.search(graph, 0, &mut binding, &mut results)?;
        Ok(results)
    }

    fn vertex_ok(&self, graph: &Graph, var: &str, handle: &str) -> Result<bool> {
        if let Some(pattern) = self.vertex_filters.get(var) {
            let Some(doc) = graph.vertex(handle)? else { return Ok(false) };
            return Ok(doc.contains(pattern));
        }
        Ok(true)
    }

    fn search(
        &self,
        graph: &Graph,
        edge_idx: usize,
        binding: &mut HashMap<String, VertexHandle>,
        results: &mut Vec<HashMap<String, VertexHandle>>,
    ) -> Result<()> {
        if edge_idx == self.edges.len() {
            results.push(binding.clone());
            return Ok(());
        }
        let ep = &self.edges[edge_idx];
        // Candidate source vertices: bound value or all vertices.
        let from_candidates: Vec<VertexHandle> = match binding.get(&ep.from_var) {
            Some(v) => vec![v.clone()],
            None => graph.all_vertices()?,
        };
        for from in from_candidates {
            if !self.vertex_ok(graph, &ep.from_var, &from)? {
                continue;
            }
            let from_was_bound = binding.contains_key(&ep.from_var);
            binding.insert(ep.from_var.clone(), from.clone());
            for edge in graph.edges_of(&from, Direction::Outbound, ep.edge_collection.as_deref())? {
                if let Some(f) = &ep.edge_filter {
                    if !edge.contains(f) {
                        continue;
                    }
                }
                let to = edge.get_field(crate::store::TO_FIELD).as_str()?.to_string();
                match binding.get(&ep.to_var) {
                    Some(bound) if bound != &to => continue,
                    _ => {}
                }
                if !self.vertex_ok(graph, &ep.to_var, &to)? {
                    continue;
                }
                let to_was_bound = binding.contains_key(&ep.to_var);
                binding.insert(ep.to_var.clone(), to);
                self.search(graph, edge_idx + 1, binding, results)?;
                if !to_was_bound {
                    binding.remove(&ep.to_var);
                }
            }
            if !from_was_bound {
                binding.remove(&ep.from_var);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_storage::{BufferPool, DiskManager};
    use mmdb_types::from_json;
    use std::sync::Arc;

    /// Mary —knows→ John —knows→ Anne; Mary —knows→ Anne.
    fn triangle() -> Graph {
        let pool = Arc::new(BufferPool::new(Arc::new(DiskManager::in_memory()), 64));
        let g = Graph::create("g", pool);
        g.create_vertex_collection("c").unwrap();
        g.create_edge_collection("knows").unwrap();
        for (k, n, limit) in [("1", "Mary", 5000), ("2", "John", 3000), ("3", "Anne", 2000)] {
            g.add_vertex("c", from_json(&format!(r#"{{"_key":"{k}","name":"{n}","credit_limit":{limit}}}"#)).unwrap()).unwrap();
        }
        g.add_edge("knows", "c/1", "c/2", from_json(r#"{"since":2010}"#).unwrap()).unwrap();
        g.add_edge("knows", "c/2", "c/3", from_json(r#"{"since":2020}"#).unwrap()).unwrap();
        g.add_edge("knows", "c/1", "c/3", from_json(r#"{"since":2021}"#).unwrap()).unwrap();
        g
    }

    #[test]
    fn single_edge_pattern_finds_all_edges() {
        let g = triangle();
        let m = GraphPattern::new().edge("x", "knows", "y").matches(&g).unwrap();
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn vertex_filters_restrict() {
        let g = triangle();
        let m = GraphPattern::new()
            .edge("x", "knows", "y")
            .filter("x", from_json(r#"{"name":"Mary"}"#).unwrap())
            .matches(&g)
            .unwrap();
        assert_eq!(m.len(), 2);
        assert!(m.iter().all(|b| b["x"] == "c/1"));
    }

    #[test]
    fn two_hop_chain() {
        let g = triangle();
        let m = GraphPattern::new()
            .edge("a", "knows", "b")
            .edge("b", "knows", "c")
            .matches(&g)
            .unwrap();
        // Only Mary→John→Anne chains (c/1→c/2→c/3).
        assert_eq!(m.len(), 1);
        assert_eq!(m[0]["a"], "c/1");
        assert_eq!(m[0]["b"], "c/2");
        assert_eq!(m[0]["c"], "c/3");
    }

    #[test]
    fn edge_filters() {
        let g = triangle();
        let mut p = GraphPattern::new().edge("x", "knows", "y");
        p.edges[0].edge_filter = Some(from_json(r#"{"since":2021}"#).unwrap());
        let m = p.matches(&g).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m[0]["y"], "c/3");
    }

    #[test]
    fn shared_variable_joins() {
        let g = triangle();
        // Who do both Mary and John know? x=Mary-ish var... pattern:
        // m —knows→ t, j —knows→ t with filters on m and j.
        let m = GraphPattern::new()
            .edge("m", "knows", "t")
            .edge("j", "knows", "t")
            .filter("m", from_json(r#"{"name":"Mary"}"#).unwrap())
            .filter("j", from_json(r#"{"name":"John"}"#).unwrap())
            .matches(&g)
            .unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m[0]["t"], "c/3", "Anne is known by both");
    }

    #[test]
    fn empty_when_no_match() {
        let g = triangle();
        let m = GraphPattern::new()
            .edge("x", "likes", "y")
            .matches(&g);
        // Unknown edge collection: edges_of returns empty, so no matches.
        assert!(m.unwrap().is_empty());
        let m = GraphPattern::new()
            .edge("x", "knows", "y")
            .filter("x", from_json(r#"{"name":"Zeus"}"#).unwrap())
            .matches(&g)
            .unwrap();
        assert!(m.is_empty());
    }
}
