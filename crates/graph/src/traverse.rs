//! Graph traversals: bounded-depth BFS (AQL `FOR v IN min..max DIR start
//! edges`), unweighted and weighted shortest paths.

use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};

use mmdb_types::{Result, Value};

use crate::store::{Direction, Graph, VertexHandle};

/// Specification of a bounded traversal.
#[derive(Debug, Clone)]
pub struct TraversalSpec {
    /// Minimum depth (AQL's `min..`); vertices closer than this are visited
    /// but not emitted.
    pub min_depth: usize,
    /// Maximum depth (AQL's `..max`).
    pub max_depth: usize,
    /// Direction of travel.
    pub direction: Direction,
    /// Edge collection to follow (`None` = all).
    pub edge_collection: Option<String>,
}

impl TraversalSpec {
    /// AQL's common `1..1 OUTBOUND … <edges>` form.
    pub fn out_one(edge_collection: &str) -> Self {
        TraversalSpec {
            min_depth: 1,
            max_depth: 1,
            direction: Direction::Outbound,
            edge_collection: Some(edge_collection.to_string()),
        }
    }
}

/// One emitted traversal result.
#[derive(Debug, Clone, PartialEq)]
pub struct Visited {
    /// Vertex handle.
    pub vertex: VertexHandle,
    /// Depth at which it was first reached.
    pub depth: usize,
}

/// Breadth-first bounded traversal from `start`, emitting each reachable
/// vertex once, at its minimal depth, for depths in `min..=max`.
pub fn traverse(graph: &Graph, start: &str, spec: &TraversalSpec) -> Result<Vec<Visited>> {
    let mut out = Vec::new();
    let mut seen: HashSet<String> = HashSet::new();
    let mut queue: VecDeque<(String, usize)> = VecDeque::new();
    seen.insert(start.to_string());
    queue.push_back((start.to_string(), 0));
    while let Some((v, depth)) = queue.pop_front() {
        if depth >= spec.min_depth && depth <= spec.max_depth && depth > 0 {
            out.push(Visited { vertex: v.clone(), depth });
        }
        if depth == 0 && spec.min_depth == 0 {
            out.push(Visited { vertex: v.clone(), depth });
        }
        if depth == spec.max_depth {
            continue;
        }
        for n in graph.neighbors(&v, spec.direction, spec.edge_collection.as_deref())? {
            if seen.insert(n.clone()) {
                queue.push_back((n, depth + 1));
            }
        }
    }
    Ok(out)
}

/// Result of a shortest-path search.
#[derive(Debug, Clone, PartialEq)]
pub struct PathResult {
    /// Vertices from start to goal inclusive.
    pub vertices: Vec<VertexHandle>,
    /// Total cost (hop count when unweighted).
    pub cost: f64,
}

/// Shortest path from `start` to `goal`. With `weight_field: None` every
/// edge costs 1 (BFS); otherwise Dijkstra over the numeric edge attribute
/// (missing/invalid weights cost 1).
pub fn shortest_path(
    graph: &Graph,
    start: &str,
    goal: &str,
    direction: Direction,
    edge_collection: Option<&str>,
    weight_field: Option<&str>,
) -> Result<Option<PathResult>> {
    #[derive(PartialEq)]
    struct State {
        cost: f64,
        vertex: String,
    }
    impl Eq for State {}
    impl PartialOrd for State {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }
    impl Ord for State {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            // Reverse for a min-heap.
            o.cost
                .partial_cmp(&self.cost)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| o.vertex.cmp(&self.vertex))
        }
    }

    let mut dist: HashMap<String, f64> = HashMap::new();
    let mut prev: HashMap<String, String> = HashMap::new();
    let mut heap = BinaryHeap::new();
    dist.insert(start.to_string(), 0.0);
    heap.push(State { cost: 0.0, vertex: start.to_string() });
    while let Some(State { cost, vertex }) = heap.pop() {
        if vertex == goal {
            let mut vertices = vec![goal.to_string()];
            let mut cur = goal.to_string();
            while let Some(p) = prev.get(&cur) {
                vertices.push(p.clone());
                cur = p.clone();
            }
            vertices.reverse();
            return Ok(Some(PathResult { vertices, cost }));
        }
        if cost > dist.get(&vertex).copied().unwrap_or(f64::INFINITY) {
            continue;
        }
        for edge in graph.edges_of(&vertex, direction, edge_collection)? {
            let from = edge.get_field(crate::store::FROM_FIELD).as_str()?.to_string();
            let to = edge.get_field(crate::store::TO_FIELD).as_str()?.to_string();
            let next = match direction {
                Direction::Outbound => to,
                Direction::Inbound => from,
                Direction::Any => {
                    if from == vertex {
                        to
                    } else {
                        from
                    }
                }
            };
            let w = weight_field
                .map(|f| edge.get_field(f))
                .and_then(|v| if let Value::Number(n) = v { Some(n.as_f64()) } else { None })
                .unwrap_or(1.0)
                .max(0.0);
            let nd = cost + w;
            if nd < dist.get(&next).copied().unwrap_or(f64::INFINITY) {
                dist.insert(next.clone(), nd);
                prev.insert(next.clone(), vertex.clone());
                heap.push(State { cost: nd, vertex: next });
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_storage::{BufferPool, DiskManager};
    use mmdb_types::from_json;
    use std::sync::Arc;

    /// A small weighted road network:
    ///   a →1→ b →1→ c →1→ d,  a →10→ d (direct but heavy)
    fn roads() -> Graph {
        let pool = Arc::new(BufferPool::new(Arc::new(DiskManager::in_memory()), 64));
        let g = Graph::create("roads", pool);
        g.create_vertex_collection("city").unwrap();
        g.create_edge_collection("road").unwrap();
        for k in ["a", "b", "c", "d"] {
            g.add_vertex("city", from_json(&format!(r#"{{"_key":"{k}"}}"#)).unwrap()).unwrap();
        }
        for (f, t, w) in [("a", "b", 1), ("b", "c", 1), ("c", "d", 1), ("a", "d", 10)] {
            g.add_edge(
                "road",
                &format!("city/{f}"),
                &format!("city/{t}"),
                from_json(&format!(r#"{{"km":{w}}}"#)).unwrap(),
            )
            .unwrap();
        }
        g
    }

    #[test]
    fn one_hop_outbound_like_the_paper() {
        let g = crate::store::tests::paper_graph();
        // FOR f IN 1..1 OUTBOUND customers/1 knows
        let friends = traverse(&g, "customers/1", &TraversalSpec::out_one("knows")).unwrap();
        assert_eq!(friends.len(), 1);
        assert_eq!(friends[0].vertex, "customers/2");
        assert_eq!(friends[0].depth, 1);
    }

    #[test]
    fn depth_windows() {
        let g = roads();
        let spec = TraversalSpec {
            min_depth: 2,
            max_depth: 3,
            direction: Direction::Outbound,
            edge_collection: Some("road".into()),
        };
        let got = traverse(&g, "city/a", &spec).unwrap();
        let names: Vec<&str> = got.iter().map(|v| v.vertex.as_str()).collect();
        // Depth 1 vertices (b, direct-d) are excluded; c at 2, d at... d is
        // reached at depth 1 via the direct edge, so BFS sees it first and
        // it is *not* re-emitted at depth 3 — matching AQL's default
        // unique-vertices behaviour.
        assert_eq!(names, vec!["city/c"]);
        // min 0 includes the start.
        let spec0 = TraversalSpec { min_depth: 0, max_depth: 1, ..spec };
        let got = traverse(&g, "city/a", &spec0).unwrap();
        assert!(got.iter().any(|v| v.vertex == "city/a" && v.depth == 0));
        assert_eq!(got.len(), 3); // a, b, d
    }

    #[test]
    fn unweighted_shortest_path_prefers_fewer_hops() {
        let g = roads();
        let p = shortest_path(&g, "city/a", "city/d", Direction::Outbound, Some("road"), None)
            .unwrap()
            .unwrap();
        assert_eq!(p.vertices, vec!["city/a", "city/d"]);
        assert_eq!(p.cost, 1.0);
    }

    #[test]
    fn weighted_shortest_path_prefers_light_edges() {
        let g = roads();
        let p = shortest_path(&g, "city/a", "city/d", Direction::Outbound, Some("road"), Some("km"))
            .unwrap()
            .unwrap();
        assert_eq!(p.vertices, vec!["city/a", "city/b", "city/c", "city/d"]);
        assert_eq!(p.cost, 3.0);
    }

    #[test]
    fn unreachable_and_trivial_paths() {
        let g = roads();
        assert!(shortest_path(&g, "city/d", "city/a", Direction::Outbound, None, None)
            .unwrap()
            .is_none());
        // Inbound direction reverses reachability.
        let p = shortest_path(&g, "city/d", "city/a", Direction::Inbound, None, None)
            .unwrap()
            .unwrap();
        assert_eq!(p.vertices.first().map(String::as_str), Some("city/d"));
        let p = shortest_path(&g, "city/a", "city/a", Direction::Outbound, None, None)
            .unwrap()
            .unwrap();
        assert_eq!(p.cost, 0.0);
        assert_eq!(p.vertices, vec!["city/a"]);
    }

    #[test]
    fn any_direction_traversal() {
        let g = crate::store::tests::paper_graph();
        let spec = TraversalSpec {
            min_depth: 1,
            max_depth: 2,
            direction: Direction::Any,
            edge_collection: Some("knows".into()),
        };
        let got = traverse(&g, "customers/2", &spec).unwrap();
        let mut names: Vec<&str> = got.iter().map(|v| v.vertex.as_str()).collect();
        names.sort();
        assert_eq!(names, vec!["customers/1", "customers/3"]);
    }
}
