//! # mmdb-graph — the property-graph model
//!
//! ArangoDB's graph design, as the tutorial describes it: "since vertices
//! and edges of graphs are documents, this allows to mix all three data
//! models". A [`Graph`] is a set of vertex collections and edge
//! collections; edge documents carry the reserved `_from` / `_to`
//! attributes; an **edge index** ("hash index for `_from` and `_to`
//! attributes") serves adjacency in O(1).
//!
//! [`mod@traverse`] implements the AQL traversal the paper's recommendation
//! query uses (`FOR v IN 1..1 OUTBOUND c knows`): bounded-depth BFS in
//! either or both directions, plus unweighted and weighted shortest paths.
//! [`pattern`] adds a small subgraph pattern matcher.

pub mod pattern;
pub mod store;
pub mod traverse;

pub use store::{Direction, Graph};
pub use traverse::{shortest_path, traverse, TraversalSpec};
