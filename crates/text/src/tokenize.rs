//! Tokenization: text → lowercase terms with positions.

/// A token with its position (term index, not byte offset) in the field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Normalized (lowercased) term.
    pub term: String,
    /// 0-based position among the document's tokens.
    pub position: u32,
}

/// Default English stopword list (small, matching typical search defaults).
pub const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "if", "in",
    "into", "is", "it", "no", "not", "of", "on", "or", "such", "that", "the",
    "their", "then", "there", "these", "they", "this", "to", "was", "will",
    "with",
];

/// Tokenizer configuration.
#[derive(Debug, Clone)]
pub struct Tokenizer {
    /// Drop stopwords (positions still advance so phrases stay aligned).
    pub remove_stopwords: bool,
    /// Minimum term length kept.
    pub min_len: usize,
}

impl Default for Tokenizer {
    fn default() -> Self {
        Tokenizer { remove_stopwords: false, min_len: 1 }
    }
}

impl Tokenizer {
    /// Split on non-alphanumeric boundaries, lowercase, filter.
    pub fn tokenize(&self, text: &str) -> Vec<Token> {
        let mut out = Vec::new();
        let mut position = 0u32;
        for word in text.split(|c: char| !c.is_alphanumeric()) {
            if word.is_empty() {
                continue;
            }
            let term = word.to_lowercase();
            let keep = term.len() >= self.min_len
                && !(self.remove_stopwords && STOPWORDS.contains(&term.as_str()));
            if keep {
                out.push(Token { term, position });
            }
            // Positions count every word (even filtered ones) so that
            // phrase offsets survive stopword removal.
            position += 1;
        }
        out
    }

    /// Just the terms, for callers that don't need positions.
    pub fn terms(&self, text: &str) -> Vec<String> {
        self.tokenize(text).into_iter().map(|t| t.term).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_and_lowercases() {
        let t = Tokenizer::default();
        let toks = t.terms("The King's Speech, by Mark Logue!");
        assert_eq!(toks, vec!["the", "king", "s", "speech", "by", "mark", "logue"]);
    }

    #[test]
    fn positions_are_sequential() {
        let t = Tokenizer::default();
        let toks = t.tokenize("one two  three");
        assert_eq!(toks[0].position, 0);
        assert_eq!(toks[1].position, 1);
        assert_eq!(toks[2].position, 2);
    }

    #[test]
    fn stopwords_removed_but_positions_preserved() {
        let t = Tokenizer { remove_stopwords: true, min_len: 1 };
        let toks = t.tokenize("the quick fox");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].term, "quick");
        assert_eq!(toks[0].position, 1, "position counts the removed stopword");
        assert_eq!(toks[1].position, 2);
    }

    #[test]
    fn min_len_filter() {
        let t = Tokenizer { remove_stopwords: false, min_len: 3 };
        assert_eq!(t.terms("a an ant antler"), vec!["ant", "antler"]);
    }

    #[test]
    fn unicode_words() {
        let t = Tokenizer::default();
        assert_eq!(t.terms("Přílíš žluťoučký kůň"), vec!["přílíš", "žluťoučký", "kůň"]);
    }

    #[test]
    fn empty_and_punctuation_only() {
        let t = Tokenizer::default();
        assert!(t.terms("").is_empty());
        assert!(t.terms("!!! ... ---").is_empty());
    }
}
