//! BM25 ranking over the inverted index.

use crate::inverted::{DocId, TextIndex};

/// BM25 parameters (standard defaults).
#[derive(Debug, Clone, Copy)]
pub struct Bm25Params {
    /// Term-frequency saturation.
    pub k1: f64,
    /// Length-normalization strength.
    pub b: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Bm25Params { k1: 1.2, b: 0.75 }
    }
}

/// A scored search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// Matching document.
    pub doc: DocId,
    /// BM25 score (higher is better).
    pub score: f64,
}

/// Rank documents for a bag of query terms; returns hits sorted by
/// descending score (stable by doc id), truncated to `limit`.
pub fn bm25_search(index: &TextIndex, query: &str, limit: usize) -> Vec<Hit> {
    bm25_search_with(index, query, limit, Bm25Params::default())
}

/// As [`bm25_search`] with explicit parameters.
pub fn bm25_search_with(
    index: &TextIndex,
    query: &str,
    limit: usize,
    params: Bm25Params,
) -> Vec<Hit> {
    let terms = index.tokenizer().terms(query);
    let n = index.doc_count() as f64;
    let avg_len = index.avg_doc_len().max(1.0);
    let mut scores: std::collections::BTreeMap<DocId, f64> = std::collections::BTreeMap::new();
    for term in &terms {
        let Some(postings) = index.postings(term) else { continue };
        let df = postings.len() as f64;
        // BM25+-style idf floor keeps very common terms non-negative.
        let idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
        for (doc, posting) in postings {
            let tf = posting.positions.len() as f64;
            let len_norm =
                1.0 - params.b + params.b * index.doc_len(*doc) as f64 / avg_len;
            let s = idf * (tf * (params.k1 + 1.0)) / (tf + params.k1 * len_norm);
            *scores.entry(*doc).or_insert(0.0) += s;
        }
    }
    let mut hits: Vec<Hit> = scores.into_iter().map(|(doc, score)| Hit { doc, score }).collect();
    hits.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal).then(a.doc.cmp(&b.doc)));
    hits.truncate(limit);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx() -> TextIndex {
        let mut i = TextIndex::default();
        i.index(1, "rust database engine");
        i.index(2, "database database database systems and other systems of databases");
        i.index(3, "a short note about gardening");
        i.index(4, "rust");
        i
    }

    #[test]
    fn matches_are_ranked() {
        let i = idx();
        let hits = bm25_search(&i, "database", 10);
        let docs: Vec<DocId> = hits.iter().map(|h| h.doc).collect();
        assert!(docs.contains(&1) && docs.contains(&2));
        assert!(!docs.contains(&3));
        // Scores are positive and sorted descending.
        assert!(hits.iter().all(|h| h.score > 0.0));
        assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn rare_terms_outrank_common_ones() {
        let i = idx();
        // "engine" is rarer than "database": a doc matching only "engine"
        // should beat a doc matching only "database" for query "engine database".
        let hits = bm25_search(&i, "rust engine", 10);
        assert_eq!(hits[0].doc, 1, "doc 1 matches both query terms");
    }

    #[test]
    fn length_normalization_favours_short_docs() {
        let i = idx();
        let hits = bm25_search(&i, "rust", 10);
        assert_eq!(hits[0].doc, 4, "the one-word doc is maximally on-topic");
    }

    #[test]
    fn limit_truncates() {
        let i = idx();
        assert_eq!(bm25_search(&i, "database rust gardening", 2).len(), 2);
        assert!(bm25_search(&i, "absent-term", 5).is_empty());
        assert!(bm25_search(&i, "", 5).is_empty());
    }
}
