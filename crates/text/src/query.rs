//! Full-text query evaluation: boolean operators, phrases, prefixes.
//!
//! Matches the feature list the tutorial credits to Riak/Solr: "wildcards,
//! proximity search, range search, Boolean operators, grouping".

use crate::inverted::{DocId, TextIndex};

/// A text query tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TextQuery {
    /// A single term (normalized at evaluation time).
    Term(String),
    /// Exact phrase: terms at consecutive positions.
    Phrase(Vec<String>),
    /// Terms within `slop` positions of each other, in order.
    Proximity(Vec<String>, u32),
    /// Prefix match (trailing-wildcard search, `king*`).
    Prefix(String),
    /// All subqueries match.
    And(Vec<TextQuery>),
    /// Any subquery matches.
    Or(Vec<TextQuery>),
    /// First matches, second does not.
    Not(Box<TextQuery>, Box<TextQuery>),
}

impl TextQuery {
    /// Convenience: parse a simple query string. Space-separated terms are
    /// AND-ed; `"quoted strings"` are phrases; `term*` is a prefix.
    pub fn parse(text: &str) -> TextQuery {
        let mut clauses = Vec::new();
        let mut rest = text.trim();
        while !rest.is_empty() {
            if let Some(inner) = rest.strip_prefix('"') {
                match inner.find('"') {
                    Some(end) => {
                        let phrase: Vec<String> =
                            inner[..end].split_whitespace().map(|w| w.to_lowercase()).collect();
                        if !phrase.is_empty() {
                            clauses.push(TextQuery::Phrase(phrase));
                        }
                        rest = inner[end + 1..].trim_start();
                    }
                    None => {
                        // Unterminated quote: treat the remainder as terms.
                        for w in inner.split_whitespace() {
                            clauses.push(TextQuery::Term(w.to_lowercase()));
                        }
                        rest = "";
                    }
                }
            } else {
                let end = rest.find(char::is_whitespace).unwrap_or(rest.len());
                let word = &rest[..end];
                if let Some(prefix) = word.strip_suffix('*') {
                    if !prefix.is_empty() {
                        clauses.push(TextQuery::Prefix(prefix.to_lowercase()));
                    }
                } else if !word.is_empty() {
                    clauses.push(TextQuery::Term(word.to_lowercase()));
                }
                rest = rest[end..].trim_start();
            }
        }
        match clauses.len() {
            0 => TextQuery::And(Vec::new()),
            1 => clauses.pop().expect("one clause"), // lint: allow(panic, match arm guarantees clauses.len() == 1)
            _ => TextQuery::And(clauses),
        }
    }

    /// Evaluate against an index, returning matching doc ids (sorted).
    pub fn eval(&self, index: &TextIndex) -> Vec<DocId> {
        match self {
            TextQuery::Term(t) => {
                let norm = t.to_lowercase();
                index
                    .postings(&norm)
                    .map(|p| p.keys().copied().collect())
                    .unwrap_or_default()
            }
            TextQuery::Prefix(p) => index.prefix_docs(&p.to_lowercase()),
            TextQuery::Phrase(terms) => positional_match(index, terms, 0),
            TextQuery::Proximity(terms, slop) => positional_match(index, terms, *slop),
            TextQuery::And(subs) => {
                if subs.is_empty() {
                    return Vec::new();
                }
                let mut lists: Vec<Vec<DocId>> = subs.iter().map(|q| q.eval(index)).collect();
                lists.sort_by_key(Vec::len);
                let mut result = lists[0].clone();
                for l in &lists[1..] {
                    result.retain(|d| l.binary_search(d).is_ok());
                }
                result
            }
            TextQuery::Or(subs) => {
                let mut out: Vec<DocId> = subs.iter().flat_map(|q| q.eval(index)).collect();
                out.sort_unstable();
                out.dedup();
                out
            }
            TextQuery::Not(keep, exclude) => {
                let ex = exclude.eval(index);
                keep.eval(index)
                    .into_iter()
                    .filter(|d| ex.binary_search(d).is_err())
                    .collect()
            }
        }
    }
}

/// Documents where the terms occur in order, with gaps of at most `slop`
/// between consecutive terms (slop 0 = exact phrase).
fn positional_match(index: &TextIndex, terms: &[String], slop: u32) -> Vec<DocId> {
    if terms.is_empty() {
        return Vec::new();
    }
    let normalized: Vec<String> = terms.iter().map(|t| t.to_lowercase()).collect();
    let mut postings = Vec::with_capacity(normalized.len());
    for t in &normalized {
        match index.postings(t) {
            Some(p) => postings.push(p),
            None => return Vec::new(),
        }
    }
    // Candidate docs: those in all postings.
    let mut docs: Vec<DocId> = postings[0].keys().copied().collect();
    for p in &postings[1..] {
        docs.retain(|d| p.contains_key(d));
    }
    docs.retain(|d| {
        // Chain positions: for each start of term0, find term1 at
        // start+1..=start+1+slop, etc.
        fn chain(
            postings: &[&std::collections::BTreeMap<DocId, crate::inverted::Posting>],
            doc: DocId,
            term_idx: usize,
            prev_pos: u32,
            slop: u32,
        ) -> bool {
            if term_idx == postings.len() {
                return true;
            }
            postings[term_idx][&doc]
                .positions
                .iter()
                .filter(|&&p| p > prev_pos && p <= prev_pos + 1 + slop)
                .any(|&p| chain(postings, doc, term_idx + 1, p, slop))
        }
        postings[0][d]
            .positions
            .iter()
            .any(|&p0| chain(&postings, *d, 1, p0, slop))
    });
    docs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx() -> TextIndex {
        let mut i = TextIndex::default();
        i.index(1, "the king's speech is a film");
        i.index(2, "speech by the king");
        i.index(3, "the queen gave a speech");
        i.index(4, "kingfisher birds");
        i
    }

    #[test]
    fn term_and_case_insensitivity() {
        let i = idx();
        assert_eq!(TextQuery::Term("KING".into()).eval(&i), vec![1, 2]);
        assert_eq!(TextQuery::Term("speech".into()).eval(&i), vec![1, 2, 3]);
        assert!(TextQuery::Term("castle".into()).eval(&i).is_empty());
    }

    #[test]
    fn boolean_operators() {
        let i = idx();
        let q = TextQuery::And(vec![
            TextQuery::Term("king".into()),
            TextQuery::Term("speech".into()),
        ]);
        assert_eq!(q.eval(&i), vec![1, 2]);
        let q = TextQuery::Or(vec![
            TextQuery::Term("queen".into()),
            TextQuery::Term("birds".into()),
        ]);
        assert_eq!(q.eval(&i), vec![3, 4]);
        let q = TextQuery::Not(
            Box::new(TextQuery::Term("speech".into())),
            Box::new(TextQuery::Term("king".into())),
        );
        assert_eq!(q.eval(&i), vec![3]);
    }

    #[test]
    fn phrase_requires_adjacency() {
        let i = idx();
        let q = TextQuery::Phrase(vec!["king".into(), "s".into(), "speech".into()]);
        assert_eq!(q.eval(&i), vec![1]);
        // "speech king" never occurs in that order adjacently.
        let q = TextQuery::Phrase(vec!["speech".into(), "king".into()]);
        assert!(q.eval(&i).is_empty());
    }

    #[test]
    fn proximity_allows_gaps() {
        let i = idx();
        // doc 2: "speech by the king" — speech..king distance 3.
        let q = TextQuery::Proximity(vec!["speech".into(), "king".into()], 2);
        assert_eq!(q.eval(&i), vec![2]);
        let tight = TextQuery::Proximity(vec!["speech".into(), "king".into()], 1);
        assert!(tight.eval(&i).is_empty());
    }

    #[test]
    fn prefix_wildcard() {
        let i = idx();
        assert_eq!(TextQuery::Prefix("king".into()).eval(&i), vec![1, 2, 4]);
    }

    #[test]
    fn parser_builds_expected_trees() {
        assert_eq!(TextQuery::parse("king"), TextQuery::Term("king".into()));
        assert_eq!(
            TextQuery::parse("king speech"),
            TextQuery::And(vec![
                TextQuery::Term("king".into()),
                TextQuery::Term("speech".into())
            ])
        );
        assert_eq!(
            TextQuery::parse("\"the king\" film*"),
            TextQuery::And(vec![
                TextQuery::Phrase(vec!["the".into(), "king".into()]),
                TextQuery::Prefix("film".into()),
            ])
        );
        // Degenerate inputs don't panic.
        assert_eq!(TextQuery::parse(""), TextQuery::And(vec![]));
        let _ = TextQuery::parse("\"unterminated phrase");
        let _ = TextQuery::parse("*");
    }

    #[test]
    fn parsed_query_end_to_end() {
        let i = idx();
        // "the king" is adjacent in doc 1 ("the king's …") and doc 2.
        assert_eq!(TextQuery::parse("\"the king\"").eval(&i), vec![1, 2]);
        assert_eq!(TextQuery::parse("king* speech").eval(&i), vec![1, 2]);
    }
}
