//! # mmdb-text — the full-text substrate
//!
//! "Full-text search … in general quite common" is one of the tutorial's
//! query-approach classes (Riak ships Solr; MarkLogic's *universal index*
//! is "an inverted index for each word (or phrase)"). This crate provides
//! the text model: a [`tokenize`]r, a positional [`inverted`] index, a
//! boolean/phrase/prefix [`query`] language, and BM25 [`score`]-ranked
//! retrieval.

pub mod inverted;
pub mod query;
pub mod score;
pub mod tokenize;

pub use inverted::TextIndex;
pub use query::TextQuery;
