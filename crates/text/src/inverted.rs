//! The positional inverted index: term → document postings with positions.

use std::collections::BTreeMap;

use crate::tokenize::Tokenizer;

/// Document identifier within a text index.
pub type DocId = u64;

/// Postings of one term in one document.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Posting {
    /// Positions at which the term occurs (sorted).
    pub positions: Vec<u32>,
}

/// The index: term → (doc → positions), plus per-document lengths for
/// ranking.
pub struct TextIndex {
    tokenizer: Tokenizer,
    /// term → sorted map doc → posting.
    terms: BTreeMap<String, BTreeMap<DocId, Posting>>,
    /// doc → token count (for BM25 length normalization).
    doc_len: BTreeMap<DocId, u32>,
    total_len: u64,
}

impl Default for TextIndex {
    fn default() -> Self {
        Self::new(Tokenizer::default())
    }
}

impl TextIndex {
    /// New index with the given tokenizer.
    pub fn new(tokenizer: Tokenizer) -> Self {
        TextIndex {
            tokenizer,
            terms: BTreeMap::new(),
            doc_len: BTreeMap::new(),
            total_len: 0,
        }
    }

    /// The tokenizer (used by query parsing so both sides normalize alike).
    pub fn tokenizer(&self) -> &Tokenizer {
        &self.tokenizer
    }

    /// Index a document's text under `doc`. Re-indexing a doc id replaces
    /// its previous content.
    pub fn index(&mut self, doc: DocId, text: &str) {
        if self.doc_len.contains_key(&doc) {
            self.remove(doc);
        }
        let tokens = self.tokenizer.tokenize(text);
        for t in &tokens {
            self.terms
                .entry(t.term.clone())
                .or_default()
                .entry(doc)
                .or_default()
                .positions
                .push(t.position);
        }
        let n = tokens.len() as u32;
        self.doc_len.insert(doc, n);
        self.total_len += n as u64;
    }

    /// Remove a document from the index.
    pub fn remove(&mut self, doc: DocId) {
        if let Some(n) = self.doc_len.remove(&doc) {
            self.total_len -= n as u64;
        }
        self.terms.retain(|_, postings| {
            postings.remove(&doc);
            !postings.is_empty()
        });
    }

    /// Number of indexed documents.
    pub fn doc_count(&self) -> usize {
        self.doc_len.len()
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Average document length (tokens).
    pub fn avg_doc_len(&self) -> f64 {
        if self.doc_len.is_empty() {
            0.0
        } else {
            self.total_len as f64 / self.doc_len.len() as f64
        }
    }

    /// A document's token count.
    pub fn doc_len(&self, doc: DocId) -> u32 {
        self.doc_len.get(&doc).copied().unwrap_or(0)
    }

    /// Documents containing `term` (already-normalized), sorted.
    pub fn postings(&self, term: &str) -> Option<&BTreeMap<DocId, Posting>> {
        self.terms.get(term)
    }

    /// Documents containing a term with the given normalized prefix.
    pub fn prefix_docs(&self, prefix: &str) -> Vec<DocId> {
        let mut out: Vec<DocId> = self
            .terms
            .range(prefix.to_string()..)
            .take_while(|(t, _)| t.starts_with(prefix))
            .flat_map(|(_, p)| p.keys().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Document frequency of a term.
    pub fn doc_freq(&self, term: &str) -> usize {
        self.terms.get(term).map(BTreeMap::len).unwrap_or(0)
    }

    /// All doc ids (sorted).
    pub fn all_docs(&self) -> Vec<DocId> {
        self.doc_len.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx() -> TextIndex {
        let mut i = TextIndex::default();
        i.index(1, "the king's speech");
        i.index(2, "the queen's speech to the king");
        i.index(3, "cooking for kings");
        i
    }

    #[test]
    fn postings_and_positions() {
        let i = idx();
        let p = i.postings("king").unwrap();
        assert_eq!(p.keys().copied().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(p[&1].positions, vec![1]);
        // doc 2: the(0) queen(1) s(2) speech(3) to(4) the(5) king(6)
        assert_eq!(p[&2].positions, vec![6]);
        assert!(i.postings("nothing").is_none());
    }

    #[test]
    fn doc_stats() {
        let i = idx();
        assert_eq!(i.doc_count(), 3);
        assert_eq!(i.doc_len(1), 4); // the, king, s, speech
        assert!(i.avg_doc_len() > 3.0);
        assert_eq!(i.doc_freq("speech"), 2);
        assert_eq!(i.doc_freq("cooking"), 1);
    }

    #[test]
    fn reindex_replaces() {
        let mut i = idx();
        i.index(1, "entirely new words");
        assert!(i.postings("king").unwrap().get(&1).is_none());
        assert!(i.postings("entirely").unwrap().contains_key(&1));
        assert_eq!(i.doc_count(), 3);
    }

    #[test]
    fn remove_purges_terms() {
        let mut i = idx();
        i.remove(3);
        assert_eq!(i.doc_count(), 2);
        assert!(i.postings("cooking").is_none(), "orphan terms are dropped");
    }

    #[test]
    fn prefix_lookup() {
        let i = idx();
        let docs = i.prefix_docs("king");
        assert_eq!(docs, vec![1, 2, 3]); // king, king, kings
        assert_eq!(i.prefix_docs("queen"), vec![2]);
        assert!(i.prefix_docs("zzz").is_empty());
    }
}
