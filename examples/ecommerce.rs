//! The paper's running example, end to end.
//!
//! Reproduces slide 27 of *Lu & Holubová, EDBT 2017*: a customer
//! **relation**, a social-network **graph**, shopping-cart **key/value**
//! pairs and order **JSON documents** — then answers the tutorial's
//! recommendation query ("return all product_no which are ordered by a
//! friend of a customer whose credit_limit > 3000", expected result
//! `["2724f", "3424g"]`) three ways: in MMQL, through the SQL frontend,
//! and over an RDF projection of the same data. It finishes with the
//! MarkLogic XML⋈JSON join from the XML-extensions slide.

use mmdb::{Database, Result, Value};

fn main() -> Result<()> {
    let db = Database::in_memory();

    // ---- the four models of slide 27 -------------------------------------
    use mmdb::substrate::relational::{ColumnDef, DataType, Schema};
    db.create_table(
        "customers",
        Schema::new(
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("name", DataType::Text),
                ColumnDef::new("credit_limit", DataType::Int),
            ],
            "id",
        )?,
    )?;
    for (id, name, limit) in [(1, "Mary", 5000), (2, "John", 3000), (3, "Anne", 2000)] {
        db.insert_row(
            "customers",
            &mmdb::from_json(&format!(r#"{{"id":{id},"name":"{name}","credit_limit":{limit}}}"#))?,
        )?;
    }

    let g = db.create_graph("social")?;
    g.create_vertex_collection("persons")?;
    g.create_edge_collection("knows")?;
    for id in 1..=3 {
        g.add_vertex("persons", mmdb::from_json(&format!(r#"{{"_key":"{id}"}}"#))?)?;
    }
    // Mary knows John; Anne knows Mary.
    g.add_edge("knows", "persons/1", "persons/2", mmdb::from_json("{}")?)?;
    g.add_edge("knows", "persons/3", "persons/1", mmdb::from_json("{}")?)?;

    db.create_bucket("cart")?;
    db.kv_put("cart", "1", Value::str("34e5e759"))?;
    db.kv_put("cart", "2", Value::str("0c6df508"))?;

    db.create_collection("orders")?;
    db.insert_json(
        "orders",
        r#"{"_key":"0c6df508","orderlines":[
            {"product_no":"2724f","product_name":"Toy","price":66},
            {"product_no":"3424g","product_name":"Book","price":40}]}"#,
    )?;
    db.insert_json(
        "orders",
        r#"{"_key":"34e5e759","orderlines":[{"product_no":"1111a","product_name":"Pen","price":2}]}"#,
    )?;

    // ---- the recommendation query in MMQL --------------------------------
    let products = db.query(
        r#"
        FOR c IN customers
          FILTER c.credit_limit > 3000
          FOR friend IN 1..1 OUTBOUND CONCAT("persons/", c.id) knows
            LET order = DOC("orders", KV_GET("cart", friend._key))
            FILTER order != NULL
            FOR line IN order.orderlines
              RETURN line.product_no
        "#,
    )?;
    println!("MMQL recommendation result:  {products:?}");
    assert_eq!(products, vec![Value::str("2724f"), Value::str("3424g")]);

    // ---- the same filter through the SQL frontend -------------------------
    let rich = db.query_sql("SELECT name FROM customers WHERE credit_limit > 3000")?;
    println!("SQL frontend, rich customers: {rich:?}");
    assert_eq!(rich, vec![Value::str("Mary")]);

    // ---- model evolution: project the relation into RDF and re-ask ---------
    mmdb::core::evolution::table_to_rdf(&db, "customers")?;
    let rdf_names = db.query(r#"FOR t IN TRIPLES(NULL, "name", NULL) SORT t.o RETURN t.o"#)?;
    println!("RDF projection of names:     {rdf_names:?}");
    assert_eq!(rdf_names.len(), 3);

    // ---- the MarkLogic XML ⋈ JSON example (slide 76) -----------------------
    db.register_xml(
        "product_doc",
        r#"<product no="3424g"><name>The King's Speech</name><author>Mark Logue</author></product>"#,
    )?;
    db.register_json_tree(
        "order_doc",
        r#"{"Order_no":"0c6df508","Orderlines":[
            {"Product_no":"2724f","Price":66},{"Product_no":"3424g","Price":40}]}"#,
    )?;
    // let $order := doc(json)[Orderlines/Product_no = $product/@no] return $order/Order_no
    let joined = db.query(
        r#"
        LET no = XPATH("product_doc", "/product/@no")[0]
        LET products = XPATH("order_doc", "/Orderlines/Product_no")
        FILTER no IN products
        RETURN XPATH("order_doc", "/Order_no")[0]
        "#,
    )?;
    println!("XML⋈JSON join (slide 76):    {joined:?}");
    assert_eq!(joined, vec![Value::str("0c6df508")]);

    println!("\nAll four answers match the paper. ✔");
    Ok(())
}
