//! Quickstart: one database, five data models, one query language.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use mmdb::{Database, Result, Value};

fn main() -> Result<()> {
    let db = Database::in_memory();

    // A document collection...
    db.create_collection("customers")?;
    db.insert_json("customers", r#"{"_key":"1","name":"Mary","credit_limit":5000}"#)?;
    db.insert_json("customers", r#"{"_key":"2","name":"John","credit_limit":3000}"#)?;
    db.insert_json("customers", r#"{"_key":"3","name":"Anne","credit_limit":2000}"#)?;

    // ...a key/value bucket...
    db.create_bucket("cart")?;
    db.kv_put("cart", "1", Value::str("order-34e5e759"))?;

    // ...and a graph, all in the same engine.
    let g = db.create_graph("social")?;
    g.create_vertex_collection("persons")?;
    g.create_edge_collection("knows")?;
    for key in ["1", "2", "3"] {
        g.add_vertex("persons", mmdb::from_json(&format!(r#"{{"_key":"{key}"}}"#))?)?;
    }
    g.add_edge("knows", "persons/1", "persons/2", mmdb::from_json("{}")?)?;

    // MMQL spans them all.
    let rich = db.query("FOR c IN customers FILTER c.credit_limit > 2500 SORT c.name RETURN c.name")?;
    println!("customers over 2500: {rich:?}");

    let friends = db.query(r#"FOR f IN 1..1 OUTBOUND "persons/1" knows RETURN f._key"#)?;
    println!("Mary knows: {friends:?}");

    let cart = db.query(r#"RETURN KV_GET("cart", "1")"#)?;
    println!("Mary's cart: {cart:?}");

    // Cross-model transactions are atomic.
    db.transact(mmdb::substrate::txn::IsolationLevel::Snapshot, 3, |s| {
        s.insert_document("customers", mmdb::from_json(r#"{"_key":"4","name":"Petra","credit_limit":4000}"#)?)?;
        s.kv_put("cart", "4", Value::str("order-fresh"))
    })?;
    println!("after txn: {} customers", db.query("FOR c IN customers RETURN 1")?.len());

    Ok(())
}
