//! Polyglot persistence vs one multi-model database — the tutorial's
//! central comparison, on a miniature UniBench data set.
//!
//! Shows (1) the same cross-model query written once in MMQL vs as
//! hand-rolled application joins across three stores, and (2) what a
//! crash mid-"transaction" does to each architecture.

use mmdb_bench::gen;
use mmdb_bench::polyglot::PolyglotStores;
use mmdb_bench::workloads;
use mmdb_core::Database;
use mmdb_types::{Result, Value};
use std::time::Instant;

fn main() -> Result<()> {
    let data = gen::generate(0.2, 42);
    println!(
        "data: {} customers / {} edges / {} orders\n",
        data.customers.len(),
        data.knows.len(),
        data.orders.len()
    );

    // ---- load both architectures -----------------------------------------
    let db = Database::in_memory();
    workloads::create_mmdb_schema(&db)?;
    workloads::load_mmdb(&db, &data)?;
    db.create_fulltext_index("feedback_text", "feedback", "text")?;
    let poly = PolyglotStores::new()?;
    poly.load(&data)?;

    // ---- one query, two architectures --------------------------------------
    println!("Q2 (recommendation): products ordered by friends of rich customers");
    let t = Instant::now();
    let mm = workloads::q2_mmdb(&db, 3000)?;
    println!("  multi-model: one MMQL statement, {} results in {:?}", mm.len(), t.elapsed());
    let t = Instant::now();
    let pg = poly.recommendation_query(3000)?;
    println!("  polyglot:    ~40 lines of glue code, {} results in {:?}", pg.len(), t.elapsed());
    assert_eq!(mm, pg, "same answers");

    // ---- one transaction, two architectures --------------------------------
    println!("\nWorkload C with a crash injected between store writes:");
    let order = Value::object([
        ("_key", Value::str("oCRASH")),
        ("customer_id", Value::int(1)),
        (
            "orderlines",
            Value::array([Value::object([("product_no", Value::str("p0001")), ("price", Value::int(10))])]),
        ),
        ("total", Value::int(10)),
    ]);

    // Multi-model: the crash aborts the transaction; nothing is visible.
    let mut s = db.begin(mmdb_txn::IsolationLevel::Snapshot);
    s.kv_put("cart", "1", Value::str("oCRASH"))?;
    s.insert_document("orders", order.clone())?;
    s.abort(); // ← the "crash"
    let cart_after = db.kv().get("cart", "1")?;
    let order_after = db.get_document("orders", "oCRASH")?;
    println!(
        "  multi-model: cart untouched ({}), order absent ({}) — atomic",
        cart_after.map(|v| v.to_string()).unwrap_or_else(|| "none".into()),
        order_after.is_none()
    );

    // Polyglot: the cart write survives, the order never lands.
    poly.place_order_non_atomic(1, &order, Some(1))?;
    let dangling = poly.count_inconsistencies()?;
    println!("  polyglot:    {dangling} dangling cross-store reference(s) — unrecoverable by any single store");
    assert!(dangling > 0);

    println!("\n(The full comparison with timings: `cargo run --release --bin unibench`.)");
    Ok(())
}
