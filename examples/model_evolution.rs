//! Model evolution: the tutorial's "legacy relational data, new JSON
//! data" challenge — migrate data between models without losing it.
//!
//! Walks a customer relation through the full cycle:
//! table → documents → (schema inference) → table again → graph → RDF.

use mmdb::core::evolution;
use mmdb::core::schema_infer::infer_schema;
use mmdb::substrate::relational::{ColumnDef, DataType, Schema};
use mmdb::{Database, Result, Value};

fn main() -> Result<()> {
    let db = Database::in_memory();

    // Legacy relational data.
    db.create_table(
        "customers",
        Schema::new(
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("name", DataType::Text),
                ColumnDef::new("credit_limit", DataType::Int),
            ],
            "id",
        )?,
    )?;
    for (id, name, limit) in [(1, "Mary", 5000), (2, "John", 3000), (3, "Anne", 2000)] {
        db.insert_row(
            "customers",
            &mmdb::from_json(&format!(r#"{{"id":{id},"name":"{name}","credit_limit":{limit}}}"#))?,
        )?;
    }

    // 1. Relation → documents.
    let n = evolution::table_to_collection(&db, "customers", "customer_docs")?;
    println!("table → collection: {n} documents");

    // New-era data arrives with extra, schemaless fields.
    db.insert_json(
        "customer_docs",
        r#"{"_key":"4","id":4,"name":"Petra","credit_limit":4000,
            "social":{"follows":1200},"tags":["vip"]}"#,
    )?;

    // 2. Schema extraction over the open-schema collection.
    let docs = db.world().collection("customer_docs")?.all()?;
    let inferred = infer_schema(&docs)?;
    println!("inferred schema (pk = {}):", inferred.schema.primary_key_name());
    for c in inferred.schema.columns() {
        println!("   {} {} {}", c.name, c.data_type, if c.nullable { "NULL" } else { "NOT NULL" });
    }

    // 3. Documents → relation (round trip, new fields land as JSON columns).
    let (ok, skipped) = evolution::collection_to_table(&db, "customer_docs", "customers_v2")?;
    println!("collection → table: {ok} rows migrated, {skipped} skipped");
    let rows = db.query_sql("SELECT name, credit_limit FROM customers_v2 ORDER BY name")?;
    println!("customers_v2 via SQL: {rows:?}");

    // 4. Documents → graph: 'knows' references become edges.
    db.create_collection("people")?;
    db.insert_json("people", r#"{"_key":"1","name":"Mary","knows":["2","3"]}"#)?;
    db.insert_json("people", r#"{"_key":"2","name":"John","knows":"3"}"#)?;
    db.insert_json("people", r#"{"_key":"3","name":"Anne"}"#)?;
    let (v, e) = evolution::collection_to_graph(&db, "people", "social", "knows")?;
    println!("collection → graph: {v} vertices, {e} edges");
    let reach = db.query(r#"FOR p IN 1..2 OUTBOUND "people/1" knows_edges RETURN p.name"#)?;
    println!("2-hop reach from Mary: {reach:?}");

    // 5. Relation → RDF: the direct mapping.
    let triples = evolution::table_to_rdf(&db, "customers")?;
    println!("table → rdf: {triples} triples");
    let subjects = db.query(r#"FOR t IN TRIPLES(NULL, "credit_limit", 5000) RETURN t.s"#)?;
    assert_eq!(subjects, vec![Value::str("customers:1")]);
    println!("SPARQL-style lookup over the projection: {subjects:?}");

    Ok(())
}
