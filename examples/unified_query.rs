//! A tour of MMQL, the unified multi-model query language — the
//! tutorial's second open challenge made concrete. Every section queries
//! a different model (or several at once) with the same language.

use mmdb::{Database, Result, Value};

fn main() -> Result<()> {
    let db = Database::in_memory();
    setup(&db)?;

    println!("— documents: filters, paths, array expansion —");
    show(&db, r#"FOR o IN orders FILTER o.total > 50 RETURN o._key"#)?;
    show(&db, r#"FOR o IN orders RETURN o.orderlines[*].product_no"#)?;
    show(&db, r#"FOR o IN orders RETURN o.orderlines[0].price"#)?;

    println!("\n— grouping and aggregation —");
    show(
        &db,
        r#"FOR o IN orders
             FOR l IN o.orderlines
               COLLECT product = l.product_no AGGREGATE revenue = SUM(l.price), n = COUNT()
               SORT revenue DESC
               RETURN {product: product, revenue: revenue, n: n}"#,
    )?;

    println!("\n— graph traversal and shortest paths —");
    show(&db, r#"FOR v IN 1..2 OUTBOUND "persons/1" knows RETURN [v._key, v._depth]"#)?;
    show(&db, r#"RETURN SHORTEST_PATH("persons/1", "persons/3", "knows")"#)?;

    println!("\n— key/value and cross-model functions —");
    show(&db, r#"RETURN DOC("orders", KV_GET("cart", "1"))._key"#)?;

    println!("\n— full-text search with ranking —");
    show(&db, r#"FOR r IN FULLTEXT("review_text", "wonderful") RETURN r._key"#)?;
    show(&db, r#"FOR h IN FULLTEXT_RANKED("review_text", "toy wonderful", 2) RETURN [h.doc._key, h.score > 0]"#)?;

    println!("\n— RDF triple patterns —");
    show(&db, r#"FOR t IN TRIPLES("mary", NULL, NULL) SORT t.p RETURN [t.p, t.o]"#)?;

    println!("\n— XML / JSON trees via XPath —");
    show(&db, r#"RETURN XPATH("catalog", "/catalog/product[price > 30]/name")"#)?;

    println!("\n— subqueries, LET, ternaries, sorting, LIMIT —");
    show(
        &db,
        r#"LET expensive = (FOR o IN orders FILTER o.total > 50 RETURN o._key)
           FOR o IN orders
             SORT o.total DESC
             LIMIT 2
             RETURN {order: o._key, expensive: o._key IN expensive ? "yes" : "no"}"#,
    )?;

    println!("\n— the SQL frontend shares the engine —");
    let sql = db.query_sql("SELECT total FROM orders WHERE total > 50 ORDER BY total")?;
    println!("   SELECT … ⇒ {sql:?}");

    println!("\n— EXPLAIN shows plan and index choice —");
    db.world().collection("orders")?.create_persistent_index("total")?;
    println!("{}", indent(&db.explain("FOR o IN orders FILTER o.total > 50 RETURN o")?));

    Ok(())
}

fn show(db: &Database, q: &str) -> Result<()> {
    let rows = db.query(q)?;
    let first_line = q.trim().lines().next().unwrap_or("").trim();
    println!("   {first_line}  ⇒  {rows:?}");
    Ok(())
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("   {l}\n")).collect()
}

fn setup(db: &Database) -> Result<()> {
    db.create_collection("orders")?;
    db.insert_json(
        "orders",
        r#"{"_key":"o1","total":106,"orderlines":[
            {"product_no":"2724f","price":66},{"product_no":"3424g","price":40}]}"#,
    )?;
    db.insert_json(
        "orders",
        r#"{"_key":"o2","total":40,"orderlines":[{"product_no":"3424g","price":40}]}"#,
    )?;
    let g = db.create_graph("social")?;
    g.create_vertex_collection("persons")?;
    g.create_edge_collection("knows")?;
    for k in ["1", "2", "3"] {
        g.add_vertex("persons", mmdb::from_json(&format!(r#"{{"_key":"{k}"}}"#))?)?;
    }
    g.add_edge("knows", "persons/1", "persons/2", mmdb::from_json("{}")?)?;
    g.add_edge("knows", "persons/2", "persons/3", mmdb::from_json("{}")?)?;
    db.create_bucket("cart")?;
    db.kv_put("cart", "1", Value::str("o1"))?;
    db.create_collection("reviews")?;
    db.insert_json("reviews", r#"{"_key":"r1","text":"a wonderful wooden toy"}"#)?;
    db.insert_json("reviews", r#"{"_key":"r2","text":"a dull book"}"#)?;
    db.create_fulltext_index("review_text", "reviews", "text")?;
    db.transact(mmdb::substrate::txn::IsolationLevel::Snapshot, 3, |s| {
        s.rdf_insert("mary", "likes", Value::str("toys"))?;
        s.rdf_insert("mary", "age", Value::int(30))
    })?;
    db.register_xml(
        "catalog",
        r#"<catalog>
             <product no="1"><name>Toy</name><price>66</price></product>
             <product no="2"><name>Book</name><price>25</price></product>
           </catalog>"#,
    )?;
    Ok(())
}
