//! Integration test: concurrent cross-model transactions preserve
//! invariants — the "one system guarantees inter-model data consistency"
//! argument, under contention.

use std::sync::Arc;
use std::thread;

use mmdb::{Database, Value};
use mmdb_txn::IsolationLevel;

/// Invariant: money moves between a relational account and a kv wallet;
/// the sum is conserved no matter how transfers interleave.
#[test]
fn cross_model_balance_is_conserved_under_concurrency() {
    let db = Arc::new(Database::in_memory());
    db.create_bucket("wallet").unwrap();
    use mmdb::substrate::relational::{ColumnDef, DataType, Schema};
    db.create_table(
        "accounts",
        Schema::new(
            vec![ColumnDef::new("id", DataType::Int), ColumnDef::new("balance", DataType::Int)],
            "id",
        )
        .unwrap(),
    )
    .unwrap();
    db.insert_row("accounts", &mmdb::from_json(r#"{"id":1,"balance":1000}"#).unwrap()).unwrap();
    db.kv_put("wallet", "1", Value::int(0)).unwrap();

    let threads: Vec<_> = (0..4)
        .map(|_| {
            let db = Arc::clone(&db);
            thread::spawn(move || {
                for _ in 0..50 {
                    db.transact(IsolationLevel::Snapshot, 100, |s| {
                        // Move 1 from the account to the wallet.
                        let mut acc = s.get_row("accounts", &Value::int(1))?.unwrap();
                        let bal = acc.get_field("balance").as_int()?;
                        acc.as_object_mut()?.insert("balance", Value::int(bal - 1));
                        s.update_row("accounts", acc)?;
                        let w = s.kv_get("wallet", "1")?.unwrap().as_int()?;
                        s.kv_put("wallet", "1", Value::int(w + 1))
                    })
                    .unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let bal = db.query("FOR a IN accounts RETURN a.balance").unwrap()[0].as_int().unwrap();
    let wallet = db.kv().get("wallet", "1").unwrap().unwrap().as_int().unwrap();
    assert_eq!(bal + wallet, 1000, "total conserved: {bal} + {wallet}");
    assert_eq!(wallet, 200, "every transfer applied exactly once");
    let (commits, _aborts) = db.mvcc().stats();
    assert!(commits >= 200 + 2);
    // Note: abort counts under contention are timing-dependent (threads
    // may happen to serialize), so the invariant checks above are the
    // test; retries are exercised deterministically in mmdb-txn's suite.
}

/// The same under serializable isolation (2PL on top of SI).
#[test]
fn serializable_transfers_also_conserve() {
    let db = Arc::new(Database::in_memory());
    db.create_bucket("a").unwrap();
    db.create_bucket("b").unwrap();
    db.kv_put("a", "x", Value::int(500)).unwrap();
    db.kv_put("b", "x", Value::int(500)).unwrap();
    let threads: Vec<_> = (0..3)
        .map(|t| {
            let db = Arc::clone(&db);
            thread::spawn(move || {
                for i in 0..30 {
                    // Alternate directions to invite deadlocks.
                    let (from, to) = if (t + i) % 2 == 0 { ("a", "b") } else { ("b", "a") };
                    db.transact(IsolationLevel::Serializable, 200, |s| {
                        let f = s.kv_get(from, "x")?.unwrap().as_int()?;
                        let g = s.kv_get(to, "x")?.unwrap().as_int()?;
                        s.kv_put(from, "x", Value::int(f - 1))?;
                        s.kv_put(to, "x", Value::int(g + 1))
                    })
                    .unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let a = db.kv().get("a", "x").unwrap().unwrap().as_int().unwrap();
    let b = db.kv().get("b", "x").unwrap().unwrap().as_int().unwrap();
    assert_eq!(a + b, 1000, "conserved under serializable: {a} + {b}");
}

/// Readers see stable snapshots while writers churn.
#[test]
fn snapshot_readers_are_stable_under_writes() {
    let db = Arc::new(Database::in_memory());
    db.create_bucket("counters").unwrap();
    db.kv_put("counters", "c", Value::int(0)).unwrap();

    let writer = {
        let db = Arc::clone(&db);
        thread::spawn(move || {
            for i in 1..=100 {
                db.transact(IsolationLevel::Snapshot, 100, |s| {
                    s.kv_put("counters", "c", Value::int(i))
                })
                .unwrap();
            }
        })
    };
    let reader = {
        let db = Arc::clone(&db);
        thread::spawn(move || {
            for _ in 0..50 {
                let s = db.begin(IsolationLevel::Snapshot);
                let v1 = s.kv_get("counters", "c").unwrap().unwrap();
                std::thread::yield_now();
                let v2 = s.kv_get("counters", "c").unwrap().unwrap();
                assert_eq!(v1, v2, "a snapshot must not move");
                s.abort();
            }
        })
    };
    writer.join().unwrap();
    reader.join().unwrap();
    assert_eq!(db.kv().get("counters", "c").unwrap(), Some(Value::int(100)));
}

/// Hybrid consistency: eventual domains don't conflict, strong ones do.
#[test]
fn hybrid_consistency_per_model() {
    let db = Database::in_memory();
    db.create_bucket("likes").unwrap();
    db.create_bucket("payments").unwrap();
    let mut policy = mmdb_txn::ConsistencyPolicy::new();
    policy.set_prefix("kv/likes", mmdb_txn::ConsistencyLevel::Eventual);
    db.set_consistency(policy);

    // Two concurrent writers to the *eventual* domain: both commit.
    let mut t1 = db.begin(IsolationLevel::Snapshot);
    let mut t2 = db.begin(IsolationLevel::Snapshot);
    t1.kv_put("likes", "post-1", Value::int(10)).unwrap();
    t2.kv_put("likes", "post-1", Value::int(11)).unwrap();
    t1.commit().unwrap();
    t2.commit().unwrap();
    assert_eq!(db.kv().get("likes", "post-1").unwrap(), Some(Value::int(11)));

    // The same race on the *strong* domain: second one aborts.
    let mut t1 = db.begin(IsolationLevel::Snapshot);
    let mut t2 = db.begin(IsolationLevel::Snapshot);
    t1.kv_put("payments", "inv-1", Value::int(100)).unwrap();
    t2.kv_put("payments", "inv-1", Value::int(200)).unwrap();
    t1.commit().unwrap();
    assert!(t2.commit().unwrap_err().is_retryable());
}

/// The paper's recommendation query under concurrent writers. Writers
/// atomically flip which order the friend's cart points at while also
/// churning the customer row and the order documents; every committed
/// state yields exactly one of two answers, so a reader observing
/// anything else has seen a torn cross-model state.
#[test]
fn recommendation_query_is_consistent_under_concurrent_writers() {
    use mmdb::substrate::relational::{ColumnDef, DataType, Schema};
    const RECOMMENDATION: &str = r#"
        FOR c IN customers
          FILTER c.credit_limit > 3000
          FOR friend IN 1..1 OUTBOUND CONCAT("persons/", c.id) knows
            LET order = DOC("orders", KV_GET("cart", friend._key))
            FILTER order != NULL
            FOR line IN order.orderlines
              RETURN line.product_no
    "#;

    let db = Arc::new(Database::in_memory());
    db.create_table(
        "customers",
        Schema::new(
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("name", DataType::Text),
                ColumnDef::new("credit_limit", DataType::Int),
            ],
            "id",
        )
        .unwrap(),
    )
    .unwrap();
    // Mary is the only customer over the credit threshold; her friend's
    // cart points at one of two fixed orders.
    db.insert_row("customers", &mmdb::from_json(r#"{"id":1,"name":"Mary","credit_limit":5000}"#).unwrap())
        .unwrap();
    let g = db.create_graph("social").unwrap();
    g.create_vertex_collection("persons").unwrap();
    g.create_edge_collection("knows").unwrap();
    g.add_vertex("persons", mmdb::from_json(r#"{"_key":"1"}"#).unwrap()).unwrap();
    g.add_vertex("persons", mmdb::from_json(r#"{"_key":"2"}"#).unwrap()).unwrap();
    g.add_edge("knows", "persons/1", "persons/2", mmdb::from_json("{}").unwrap()).unwrap();
    db.create_bucket("cart").unwrap();
    db.kv_put("cart", "2", Value::str("ord0")).unwrap();
    db.create_collection("orders").unwrap();
    db.insert_json("orders", r#"{"_key":"ord0","orderlines":[{"product_no":"p0","price":1}]}"#)
        .unwrap();
    db.insert_json("orders", r#"{"_key":"ord1","orderlines":[{"product_no":"p1","price":2}]}"#)
        .unwrap();

    let writers: Vec<_> = (0..3)
        .map(|w| {
            let db = Arc::clone(&db);
            thread::spawn(move || {
                for i in 0..30 {
                    let target = format!("ord{}", (w + i) % 2);
                    db.transact(IsolationLevel::Snapshot, 500, |s| {
                        // Flip the pointer, rewrite the pointed-at order
                        // (same content) and touch Mary's credit — three
                        // models in one atomic commit.
                        s.kv_put("cart", "2", Value::str(&target))?;
                        let doc = s.get_document("orders", &target)?.unwrap();
                        s.update_document("orders", &target, doc)?;
                        let mut mary = s.get_row("customers", &Value::int(1))?.unwrap();
                        let credit = if i % 2 == 0 { 5000 } else { 4500 };
                        mary.as_object_mut()?.insert("credit_limit", Value::int(credit));
                        s.update_row("customers", mary)
                    })
                    .unwrap();
                }
            })
        })
        .collect();
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let db = Arc::clone(&db);
            thread::spawn(move || {
                for _ in 0..60 {
                    let got = db.query(RECOMMENDATION).unwrap();
                    assert!(
                        got == vec![Value::str("p0")] || got == vec![Value::str("p1")],
                        "torn cross-model read: {got:?}"
                    );
                    thread::yield_now();
                }
            })
        })
        .collect();
    for t in writers {
        t.join().unwrap();
    }
    for t in readers {
        t.join().unwrap();
    }
    // Quiesced state is one of the two valid answers too.
    let finished = db.query(RECOMMENDATION).unwrap();
    assert!(finished == vec![Value::str("p0")] || finished == vec![Value::str("p1")]);
}
