//! End-to-end client/server round-trips.
//!
//! A server on an ephemeral port, populated with the paper's running
//! example *through the wire protocol*, must give byte-identical
//! answers to an embedded engine loaded with the same data — for MMQL
//! (the slide-27 recommendation query), for SQL, and for a
//! multi-statement cross-model transaction.

use std::sync::Arc;

use mmdb::substrate::relational::{ColumnDef, DataType, Schema};
use mmdb::{Database, Value};
use mmdb_client::{Client, Pool, PoolConfig};
use mmdb_server::{Server, ServerConfig};
use mmdb_types::codec::value_to_bytes;

/// The EDBT'17 slide-27 recommendation query (see tests/paper_scenario.rs).
const RECOMMENDATION: &str = r#"
    FOR c IN customers
      FILTER c.credit_limit > 3000
      FOR friend IN 1..1 OUTBOUND CONCAT("persons/", c.id) knows
        LET order = DOC("orders", KV_GET("cart", friend._key))
        FILTER order != NULL
        FOR line IN order.orderlines
          RETURN line.product_no
"#;

const SQL_QUERY: &str = "SELECT name FROM customers WHERE credit_limit >= 3000 ORDER BY name";

fn customer_schema() -> Schema {
    Schema::new(
        vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("name", DataType::Text),
            ColumnDef::new("credit_limit", DataType::Int),
        ],
        "id",
    )
    .unwrap()
}

/// The paper's data set, loaded through the embedded API.
fn embedded_reference() -> Database {
    let db = Database::in_memory();
    db.create_table("customers", customer_schema()).unwrap();
    for (id, name, limit) in [(1, "Mary", 5000), (2, "John", 3000), (3, "Anne", 2000)] {
        db.insert_row(
            "customers",
            &mmdb::from_json(&format!(r#"{{"id":{id},"name":"{name}","credit_limit":{limit}}}"#))
                .unwrap(),
        )
        .unwrap();
    }
    let g = db.create_graph("social").unwrap();
    g.create_vertex_collection("persons").unwrap();
    g.create_edge_collection("knows").unwrap();
    for id in 1..=3 {
        g.add_vertex("persons", mmdb::from_json(&format!(r#"{{"_key":"{id}"}}"#)).unwrap())
            .unwrap();
    }
    g.add_edge("knows", "persons/1", "persons/2", mmdb::from_json("{}").unwrap()).unwrap();
    g.add_edge("knows", "persons/3", "persons/1", mmdb::from_json("{}").unwrap()).unwrap();
    db.create_bucket("cart").unwrap();
    db.kv_put("cart", "1", Value::str("34e5e759")).unwrap();
    db.kv_put("cart", "2", Value::str("0c6df508")).unwrap();
    db.create_collection("orders").unwrap();
    db.insert_json(
        "orders",
        r#"{"_key":"0c6df508","orderlines":[
            {"product_no":"2724f","product_name":"Toy","price":66},
            {"product_no":"3424g","product_name":"Book","price":40}]}"#,
    )
    .unwrap();
    db.insert_json(
        "orders",
        r#"{"_key":"34e5e759","orderlines":[{"product_no":"1111a","price":2}]}"#,
    )
    .unwrap();
    db
}

/// The same data set, loaded through the wire protocol.
fn load_over_the_wire(client: &mut Client) {
    client.create_table("customers", &customer_schema()).unwrap();
    for (id, name, limit) in [(1, "Mary", 5000), (2, "John", 3000), (3, "Anne", 2000)] {
        client
            .insert_row(
                "customers",
                mmdb::from_json(&format!(
                    r#"{{"id":{id},"name":"{name}","credit_limit":{limit}}}"#
                ))
                .unwrap(),
            )
            .unwrap();
    }
    client.create_graph("social").unwrap();
    client.create_vertex_collection("social", "persons").unwrap();
    client.create_edge_collection("social", "knows").unwrap();
    for id in 1..=3 {
        client
            .add_vertex("social", "persons", mmdb::from_json(&format!(r#"{{"_key":"{id}"}}"#)).unwrap())
            .unwrap();
    }
    client
        .add_edge("social", "knows", "persons/1", "persons/2", mmdb::from_json("{}").unwrap())
        .unwrap();
    client
        .add_edge("social", "knows", "persons/3", "persons/1", mmdb::from_json("{}").unwrap())
        .unwrap();
    client.create_bucket("cart").unwrap();
    client.kv_put("cart", "1", Value::str("34e5e759")).unwrap();
    client.kv_put("cart", "2", Value::str("0c6df508")).unwrap();
    client.create_collection("orders").unwrap();
    client
        .insert_document(
            "orders",
            mmdb::from_json(
                r#"{"_key":"0c6df508","orderlines":[
            {"product_no":"2724f","product_name":"Toy","price":66},
            {"product_no":"3424g","product_name":"Book","price":40}]}"#,
            )
            .unwrap(),
        )
        .unwrap();
    client
        .insert_document(
            "orders",
            mmdb::from_json(r#"{"_key":"34e5e759","orderlines":[{"product_no":"1111a","price":2}]}"#)
                .unwrap(),
        )
        .unwrap();
}

fn start_server() -> (Server, String) {
    let db = Arc::new(Database::in_memory());
    let server = Server::start(db, ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn encode_rows(rows: &[Value]) -> Vec<u8> {
    value_to_bytes(&Value::Array(rows.to_vec())).to_vec()
}

#[test]
fn wire_loaded_data_answers_byte_identically_to_embedded() {
    let (server, addr) = start_server();
    let mut client = Client::connect(&addr).unwrap();
    assert!(client.server_version().starts_with("mmdb/"));
    load_over_the_wire(&mut client);

    let reference = embedded_reference();
    // MMQL: the paper's headline query.
    let remote = client.query(RECOMMENDATION).unwrap();
    let local = reference.query(RECOMMENDATION).unwrap();
    assert_eq!(remote, vec![Value::str("2724f"), Value::str("3424g")]);
    assert_eq!(encode_rows(&remote), encode_rows(&local), "MMQL bytes must match");
    // SQL front-end.
    let remote_sql = client.query_sql(SQL_QUERY).unwrap();
    let local_sql = reference.query_sql(SQL_QUERY).unwrap();
    assert_eq!(encode_rows(&remote_sql), encode_rows(&local_sql), "SQL bytes must match");
    // EXPLAIN travels too.
    let plan = client.explain("FOR c IN customers FILTER c.credit_limit > 3000 RETURN c").unwrap();
    assert_eq!(plan, reference.explain("FOR c IN customers FILTER c.credit_limit > 3000 RETURN c").unwrap());

    server.shutdown().unwrap();
}

#[test]
fn four_concurrent_clients_get_the_papers_answer() {
    let db = Arc::new(embedded_reference());
    let server = Server::start(Arc::clone(&db), ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();

    let expected = encode_rows(&db.query(RECOMMENDATION).unwrap());
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                for _ in 0..5 {
                    let rows = client.query(RECOMMENDATION).unwrap();
                    assert_eq!(rows, vec![Value::str("2724f"), Value::str("3424g")]);
                    assert_eq!(encode_rows(&rows), expected, "byte-identical to embedded");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert!(server.metrics().command("query").count.load(std::sync::atomic::Ordering::Relaxed) >= 20);
    server.shutdown().unwrap();
}

#[test]
fn multi_statement_transaction_over_the_wire() {
    let db = Arc::new(embedded_reference());
    let server = Server::start(Arc::clone(&db), ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();
    let mut txn_client = Client::connect(&addr).unwrap();
    let mut observer = Client::connect(&addr).unwrap();

    // Anne places an order: order document + cart entry + credit update,
    // one atomic unit (the paper's Workload-C shape).
    let txn_id = txn_client.begin(false).unwrap();
    assert!(txn_id > 0);
    txn_client
        .insert_document(
            "orders",
            mmdb::from_json(
                r#"{"_key":"new1","orderlines":[{"product_no":"2724f","price":66}],"total":66}"#,
            )
            .unwrap(),
        )
        .unwrap();
    txn_client.kv_put("cart", "3", Value::str("new1")).unwrap();
    let mut anne = txn_client.get_row("customers", Value::int(3)).unwrap().unwrap();
    let credit = anne.get_field("credit_limit").as_int().unwrap();
    anne.as_object_mut().unwrap().insert("credit_limit", Value::int(credit - 66));
    txn_client.update_row("customers", anne).unwrap();

    // Read-your-writes inside the transaction...
    let staged = txn_client.get_document("orders", "new1").unwrap().unwrap();
    assert_eq!(staged.get_field("total"), &Value::int(66));
    // ...but invisible to another connection until commit.
    assert!(observer.get_document("orders", "new1").unwrap().is_none());
    assert!(observer.kv_get("cart", "3").unwrap().is_none());

    let commit_ts = txn_client.commit().unwrap();
    assert!(commit_ts > 0);
    assert!(observer.get_document("orders", "new1").unwrap().is_some());
    assert_eq!(observer.kv_get("cart", "3").unwrap(), Some(Value::str("new1")));

    // The embedded engine, given the same transaction, agrees byte-for-byte.
    let reference = embedded_reference();
    reference
        .transact(mmdb::substrate::txn::IsolationLevel::Snapshot, 3, |s| {
            s.insert_document(
                "orders",
                mmdb::from_json(
                    r#"{"_key":"new1","orderlines":[{"product_no":"2724f","price":66}],"total":66}"#,
                )
                .unwrap(),
            )?;
            s.kv_put("cart", "3", Value::str("new1"))?;
            let mut anne = s.get_row("customers", &Value::int(3))?.unwrap();
            let credit = anne.get_field("credit_limit").as_int()?;
            anne.as_object_mut()?.insert("credit_limit", Value::int(credit - 66));
            s.update_row("customers", anne)
        })
        .unwrap();
    for q in [
        RECOMMENDATION,
        "FOR c IN customers SORT c.id RETURN c.credit_limit",
        "FOR o IN orders SORT o._key RETURN o._key",
    ] {
        let remote = observer.query(q).unwrap();
        let local = reference.query(q).unwrap();
        assert_eq!(encode_rows(&remote), encode_rows(&local), "query {q} must match");
    }

    // An aborted transaction leaves no trace.
    txn_client.begin(false).unwrap();
    txn_client.kv_put("cart", "9", Value::str("ghost")).unwrap();
    txn_client.abort().unwrap();
    assert!(observer.kv_get("cart", "9").unwrap().is_none());

    // Transaction misuse is reported with the engine's error kinds.
    let err = txn_client.commit().unwrap_err();
    assert_eq!(err.kind(), "txn_closed");
    txn_client.begin(false).unwrap();
    let err = txn_client.begin(false).unwrap_err();
    assert_eq!(err.kind(), "txn_closed");
    txn_client.abort().unwrap();

    server.shutdown().unwrap();
}

#[test]
fn admin_stats_reports_request_counts_and_latencies() {
    let db = Arc::new(embedded_reference());
    let server = Server::start(db, ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    for _ in 0..10 {
        client.query(RECOMMENDATION).unwrap();
    }
    client.ping().unwrap();
    let _ = client.query("FOR x IN nonexistent RETURN x");

    let stats = client.admin_stats().unwrap();
    let requests = stats.get_field("requests");
    assert!(requests.get_field("total").as_int().unwrap() >= 12);
    assert!(requests.get_field("errors").as_int().unwrap() >= 1);
    assert_eq!(
        stats.get_field("connections").get_field("accepted").as_int().unwrap(),
        1
    );
    let commands = stats.get_field("commands").as_array().unwrap();
    let query_stats = commands
        .iter()
        .find(|c| c.get_field("command") == &Value::str("query"))
        .expect("query command tracked");
    assert_eq!(query_stats.get_field("count").as_int().unwrap(), 11);
    assert_eq!(query_stats.get_field("errors").as_int().unwrap(), 1);
    for pct in ["p50_us", "p95_us", "p99_us"] {
        assert!(
            query_stats.get_field(pct).as_int().unwrap() > 0,
            "{pct} must be nonzero"
        );
    }
    assert!(
        query_stats.get_field("p50_us").as_int().unwrap()
            <= query_stats.get_field("p99_us").as_int().unwrap()
    );
    // Engine counters ride along.
    assert!(stats.get_field("engine").get_field("commits").as_int().is_ok());

    server.shutdown().unwrap();
}

#[test]
fn pool_reuses_connections_across_threads() {
    let db = Arc::new(embedded_reference());
    let server = Server::start(db, ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();

    let pool = Pool::new(addr, PoolConfig { max_size: 2, ..PoolConfig::default() });
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let pool = pool.clone();
            std::thread::spawn(move || {
                for _ in 0..3 {
                    let mut conn = pool.get().unwrap();
                    let rows = conn.query(RECOMMENDATION).unwrap();
                    assert_eq!(rows.len(), 2);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert!(pool.open_connections() <= 2, "pool never exceeds max_size");
    server.shutdown().unwrap();
}
