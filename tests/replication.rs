//! Replication failover torture suite. Built only with
//! `--features failpoints` (see the `[[test]]` entry in Cargo.toml);
//! `scripts/ci.sh` runs it.
//!
//! The crash-recovery suite (tests/crash_recovery.rs) proves a reopened
//! primary converges to the oracle; this suite proves a **replica** fed
//! from the primary's WAL stream converges to the *same* state:
//!
//!   1. for every WAL-path failpoint site, the primary is killed
//!      mid-stream (injected panic, database dropped cold); the replica
//!      keeps serving reads, reconnects when a primary comes back, and
//!      its cross-model probes are byte-identical to the reopened
//!      primary — the recovery oracle;
//!   2. a replica whose apply path fails drops the stream and resumes
//!      from its last applied transaction boundary, replaying the
//!      failed block idempotently;
//!   3. `Pool` reads under `read_your_writes` never observe a state
//!      older than the session's own last commit LSN, even while the
//!      replica is artificially lagged;
//!   4. `SUBSCRIBE` delivers exactly the committed writes (aborted
//!      transactions invisible) and resumes from a supplied LSN.

use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use mmdb::substrate::relational::{ColumnDef, DataType, Schema};
use mmdb::substrate::repl::{ReplicaOptions, ReplicaRunner};
use mmdb::substrate::txn::IsolationLevel;
use mmdb::{fault, Database, Value};
use mmdb_client::{Client, ClientConfig, Consistency, Pool, PoolConfig, RetryPolicy};
use mmdb_protocol::{Request, Response, SessionOp};
use mmdb_server::{Server, ServerConfig};

/// The paper's cross-model recommendation query (same as
/// `tests/crash_recovery.rs`); the oracle answer is `["2724f", "3424g"]`.
const RECOMMENDATION: &str = r#"
    FOR c IN customers
      FILTER c.credit_limit > 3000
      FOR friend IN 1..1 OUTBOUND CONCAT("persons/", c.id) knows
        LET order = DOC("orders", KV_GET("cart", friend._key))
        FILTER order != NULL
        FOR line IN order.orderlines
          RETURN line.product_no
"#;

/// Failpoints are process-global, so the tests in this binary serialize.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK
        .get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    fault::clear_all();
    guard
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmdb-repl-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Run `f`, catching the injected panic; the default hook is swapped out
/// so the expected crash does not spray a backtrace over the test output.
fn catch_crash<R>(f: impl FnOnce() -> R) -> std::thread::Result<R> {
    let prev = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    let _ = panic::take_hook();
    panic::set_hook(prev);
    result
}

/// The WAL-path failpoint sites a primary commit crosses: killing the
/// primary at each exercises the stream at every durability stage.
fn wal_sites() -> Vec<&'static str> {
    let mut sites: Vec<&'static str> = mmdb::substrate::storage::FAILPOINT_SITES
        .iter()
        .chain(mmdb::substrate::txn::FAILPOINT_SITES)
        .copied()
        .filter(|s| s.starts_with("wal.") || s.starts_with("txn.commit."))
        .collect();
    sites.sort_unstable();
    assert!(!sites.is_empty(), "no WAL-path failpoint sites registered");
    sites
}

/// Tight timings so the suite's reconnect/catch-up waits settle fast.
fn fast_opts() -> ReplicaOptions {
    let defaults = ReplicaOptions::default();
    ReplicaOptions {
        reconnect_delay: Duration::from_millis(25),
        client: ClientConfig { read_timeout: Some(Duration::from_secs(2)), ..defaults.client },
    }
}

fn server_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        poll_interval: Duration::from_millis(5),
        ..ServerConfig::default()
    }
}

/// Spin until `cond` holds; panics with `what` after 15s.
fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(15);
    // lint: allow(tick, test helper poll loop with a hard 15s deadline)
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Wait until the runner has applied everything up to `tail`.
fn wait_caught_up(runner: &ReplicaRunner, tail: u64, what: &str) {
    wait_until(what, || runner.status().is_connected() && runner.status().applied_lsn() >= tail);
}

/// Seed the paper scenario through WAL-logged paths only (same data as
/// `tests/crash_recovery.rs`, so the probes answer identically).
fn seed(db: &Database) {
    db.create_table(
        "customers",
        Schema::new(
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("name", DataType::Text),
                ColumnDef::new("credit_limit", DataType::Int),
            ],
            "id",
        )
        .unwrap(),
    )
    .unwrap();
    db.create_bucket("cart").unwrap();
    db.create_collection("orders").unwrap();
    let g = db.create_graph("social").unwrap();
    g.create_vertex_collection("persons").unwrap();
    g.create_edge_collection("knows").unwrap();
    for (id, name, limit) in [(1, "Mary", 5000), (2, "John", 3000), (3, "Anne", 2000)] {
        db.transact(IsolationLevel::Snapshot, 3, |s| {
            s.insert_row(
                "customers",
                mmdb::from_json(&format!(
                    r#"{{"id":{id},"name":"{name}","credit_limit":{limit}}}"#
                ))
                .unwrap(),
            )?;
            s.add_vertex(
                "social",
                "persons",
                mmdb::from_json(&format!(r#"{{"_key":"{id}"}}"#)).unwrap(),
            )?;
            s.rdf_insert(&format!("customers:{id}"), "credit_limit", Value::int(limit))
        })
        .unwrap();
    }
    db.transact(IsolationLevel::Snapshot, 3, |s| {
        s.add_edge("social", "knows", "persons/1", "persons/2", mmdb::from_json("{}").unwrap())?;
        s.add_edge("social", "knows", "persons/3", "persons/1", mmdb::from_json("{}").unwrap())
            .map(|_| ())
    })
    .unwrap();
    db.kv_put("cart", "1", Value::str("34e5e759")).unwrap();
    db.kv_put("cart", "2", Value::str("0c6df508")).unwrap();
    db.insert_json(
        "orders",
        r#"{"_key":"0c6df508","orderlines":[
            {"product_no":"2724f","product_name":"Toy","price":66},
            {"product_no":"3424g","product_name":"Book","price":40}]}"#,
    )
    .unwrap();
    db.insert_json(
        "orders",
        r#"{"_key":"34e5e759","orderlines":[{"product_no":"1111a","price":2}]}"#,
    )
    .unwrap();
}

/// Cross-model answers over the committed state, serialized to JSON so
/// replica-vs-oracle comparisons are byte-identical, not merely
/// structurally equal. Blind to the doomed markers (customer id 99,
/// scratch stores) so the comparison holds whether or not the in-flight
/// transaction survived the crash.
fn probes(db: &Database) -> String {
    let mut out = vec![
        Value::Array(db.query(RECOMMENDATION).unwrap()),
        Value::Array(
            db.query_sql("SELECT id, name, credit_limit FROM customers WHERE id <= 3 ORDER BY id")
                .unwrap(),
        ),
        Value::Array(db.query("FOR o IN orders SORT o._key RETURN o").unwrap()),
        Value::Array(
            db.query(r#"FOR p IN 1..1 OUTBOUND "persons/3" knows RETURN p._key"#).unwrap(),
        ),
        Value::Array(
            db.query(r#"FOR t IN TRIPLES(NULL, "credit_limit", NULL) SORT t.s RETURN [t.s, t.o]"#)
                .unwrap(),
        ),
    ];
    for key in ["1", "2"] {
        out.push(db.kv().get("cart", key).unwrap().unwrap_or(Value::Null));
    }
    mmdb::to_json(&Value::Array(out))
}

/// The cross-model transaction expected to trip a WAL-path site; its
/// marks live in stores the probes never read.
fn doomed_op(db: &Database) -> mmdb::Result<()> {
    db.transact(IsolationLevel::Snapshot, 0, |s| {
        s.insert_document("doomed", mmdb::from_json(r#"{"_key":"d1","x":1}"#).unwrap())?;
        s.kv_put("scratch", "d", Value::int(1))?;
        s.insert_row(
            "customers",
            mmdb::from_json(r#"{"id":99,"name":"Doomed","credit_limit":1}"#).unwrap(),
        )
    })
    .map(|_| ())
}

#[test]
fn every_wal_site_crash_converges_replicas_to_the_recovery_oracle() {
    let _serial = lock();
    for site in wal_sites() {
        fault::clear_all();
        let dir = fresh_dir(&format!("site-{}", site.replace('.', "-")));
        let db = Arc::new(Database::open(&dir).unwrap());
        let server = Server::start(Arc::clone(&db), server_config()).unwrap();
        let addr = server.local_addr().to_string();

        // A live replica tails the stream while the primary seeds.
        let replica_db = Arc::new(Database::in_memory());
        let runner = ReplicaRunner::start(Arc::clone(&replica_db), addr.clone(), fast_opts()).unwrap();
        seed(&db);
        wait_caught_up(&runner, db.wal().unwrap().tail_lsn(), "initial catch-up");
        assert!(replica_db.is_degraded(), "site {site}: replica must be latched read-only");
        assert_eq!(runner.status().lag_bytes(), 0, "site {site}: caught-up replica reports lag");

        // Kill the primary mid-stream at the armed WAL site.
        let hits_before = fault::hits(site);
        fault::set(site, "panic").unwrap();
        let crashed = catch_crash(|| doomed_op(&db));
        assert!(crashed.is_err(), "site {site}: the armed operation must crash");
        assert!(fault::hits(site) > hits_before, "site {site}: failpoint never fired");
        fault::clear_all();
        server.shutdown().unwrap();
        drop(db);

        // Orphaned replica: stream gone, reads still answered from the
        // last applied state.
        wait_until("stream loss detection", || !runner.status().is_connected());
        assert!(
            replica_db.query("FOR c IN customers RETURN c.id").is_ok(),
            "site {site}: an orphaned replica must keep serving reads"
        );
        let orphan_probes = probes(&replica_db);
        runner.stop();

        // Reopen the primary from disk — the recovery oracle — restart
        // serving, and stream the replica up to date again. (The old
        // sockets linger in TIME_WAIT, so the revived primary gets a
        // fresh port and the replica a fresh stream; `apply_replicated`
        // replays the log idempotently over the replica's state.)
        let db = Arc::new(Database::open(&dir).unwrap());
        let oracle = probes(&db);
        assert_eq!(
            orphan_probes, oracle,
            "site {site}: orphaned replica diverged from the committed prefix"
        );
        let server = Server::start(Arc::clone(&db), server_config()).unwrap();
        let addr = server.local_addr().to_string();
        let runner = ReplicaRunner::start(Arc::clone(&replica_db), addr, fast_opts()).unwrap();
        // A crash can leave a dangling Begin at the log tail (a valid
        // frame whose Commit never made it); the stream only passes it
        // once the next committed block proves it dead. Committing fresh
        // work is what drags the watermark over it — the probes are
        // blind to this marker key.
        db.kv_put("cart", "post-recovery", Value::str(site)).unwrap();
        wait_caught_up(&runner, db.wal().unwrap().tail_lsn(), "post-recovery catch-up");

        assert_eq!(
            probes(&replica_db),
            oracle,
            "site {site}: replica diverged from the recovery oracle"
        );
        assert_eq!(
            replica_db.kv().get("cart", "post-recovery").unwrap(),
            Some(Value::str(site)),
            "site {site}: the revived stream must carry new commits"
        );
        assert_eq!(runner.status().lag_bytes(), 0, "site {site}: converged replica reports lag");

        runner.stop();
        server.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn replica_resumes_by_lsn_after_an_apply_failure() {
    let _serial = lock();
    let db = Arc::new(Database::in_memory_logged());
    db.create_bucket("cart").unwrap();
    let server = Server::start(Arc::clone(&db), server_config()).unwrap();
    let addr = server.local_addr().to_string();

    let replica_db = Arc::new(Database::in_memory());
    let runner = ReplicaRunner::start(Arc::clone(&replica_db), addr, fast_opts()).unwrap();
    wait_caught_up(&runner, db.wal().unwrap().tail_lsn(), "initial catch-up");
    let resume_floor = runner.status().applied_lsn();
    let connects_before = runner.status().connects();

    // Poison the apply path: the stream drops mid-block and the runner
    // reconnects, resuming from the last applied transaction boundary.
    fault::set("repl.apply", "error").unwrap();
    db.kv_put("cart", "x", Value::int(1)).unwrap();
    wait_until("reconnect after apply failure", || {
        runner.status().connects() > connects_before
    });
    assert!(fault::hits("repl.apply") > 0, "repl.apply never fired");
    assert!(
        runner.status().applied_lsn() >= resume_floor,
        "resume point regressed below an applied boundary"
    );
    // Containers materialize on the replica with their first replicated
    // write, so the failed apply leaves not just the key but the whole
    // bucket absent.
    assert!(
        !matches!(replica_db.kv().get("cart", "x"), Ok(Some(_))),
        "a failed apply must not leak the transaction"
    );

    // Heal the apply path: the replayed block applies idempotently.
    fault::clear_all();
    wait_caught_up(&runner, db.wal().unwrap().tail_lsn(), "post-failure catch-up");
    assert_eq!(replica_db.kv().get("cart", "x").unwrap(), Some(Value::int(1)));
    db.kv_put("cart", "y", Value::int(2)).unwrap();
    wait_caught_up(&runner, db.wal().unwrap().tail_lsn(), "live tail after failure");
    assert_eq!(replica_db.kv().get("cart", "y").unwrap(), Some(Value::int(2)));

    runner.stop();
    server.shutdown().unwrap();
}

#[test]
fn read_your_writes_never_reads_below_the_session_commit_lsn() {
    let _serial = lock();
    let db = Arc::new(Database::in_memory_logged());
    db.create_bucket("cart").unwrap();
    let server = Server::start(Arc::clone(&db), server_config()).unwrap();
    let primary_addr = server.local_addr().to_string();

    let replica_db = Arc::new(Database::in_memory());
    let runner = ReplicaRunner::start(Arc::clone(&replica_db), primary_addr.clone(), fast_opts()).unwrap();
    let replica_server = Server::start(Arc::clone(&replica_db), server_config()).unwrap();
    let replica_addr = replica_server.local_addr().to_string();
    let status = runner.status();
    replica_server.attach_replica_status(Arc::new(move || status.to_value()));
    wait_caught_up(&runner, db.wal().unwrap().tail_lsn(), "initial catch-up");

    // Lag the replica: every apply stalls, so immediately after a commit
    // the replica is usually *behind* the session's commit LSN and the
    // freshness check must bounce the read back to the primary.
    fault::set("repl.apply", "delay(15)").unwrap();

    let pool = Pool::new(
        &primary_addr,
        PoolConfig {
            replicas: vec![replica_addr],
            consistency: Consistency::ReadYourWrites,
            ..PoolConfig::default()
        },
    );
    let policy = RetryPolicy::default();
    for i in 0..30 {
        pool.retry_write(&policy, |c| {
            c.begin(false)?;
            c.kv_put("cart", "k", Value::int(i))?;
            c.commit()
        })
        .unwrap();
        assert!(pool.session_lsn() > 0, "commit LSN token never flowed back to the pool");
        // A session read must see its own write — from a caught-up
        // replica or, while the replica lags, from the primary.
        let got = pool.retry_read(&policy, |c| c.kv_get("cart", "k")).unwrap();
        assert_eq!(got, Some(Value::int(i)), "read-your-writes violated at iteration {i}");
    }
    fault::clear_all();
    let stats = pool.stats();
    assert!(
        stats.replica_fallbacks > 0,
        "a lagged replica never bounced a read to the primary: {stats:?}"
    );

    // Once the replica catches up, bounded-staleness reads land on it.
    wait_caught_up(&runner, db.wal().unwrap().tail_lsn(), "catch-up after lag");
    let fresh_pool = Pool::new(
        &primary_addr,
        PoolConfig {
            replicas: vec![replica_server.local_addr().to_string()],
            consistency: Consistency::BoundedStaleness(Duration::from_secs(30)),
            ..PoolConfig::default()
        },
    );
    let got = fresh_pool.retry_read(&policy, |c| c.kv_get("cart", "k")).unwrap();
    assert_eq!(got, Some(Value::int(29)));
    assert_eq!(
        fresh_pool.stats().replica_reads,
        1,
        "a caught-up replica under bounded staleness must serve the read"
    );

    runner.stop();
    replica_server.shutdown().unwrap();
    server.shutdown().unwrap();
}

#[test]
fn pipelined_reads_route_through_the_pool_consistency_modes() {
    let _serial = lock();
    let db = Arc::new(Database::in_memory_logged());
    db.create_bucket("cart").unwrap();
    let server = Server::start(Arc::clone(&db), server_config()).unwrap();
    let primary_addr = server.local_addr().to_string();

    let replica_db = Arc::new(Database::in_memory());
    let runner = ReplicaRunner::start(Arc::clone(&replica_db), primary_addr.clone(), fast_opts()).unwrap();
    let replica_server = Server::start(Arc::clone(&replica_db), server_config()).unwrap();
    let replica_addr = replica_server.local_addr().to_string();
    let status = runner.status();
    replica_server.attach_replica_status(Arc::new(move || status.to_value()));

    let policy = RetryPolicy::default();
    let pool = Pool::new(
        &primary_addr,
        PoolConfig {
            replicas: vec![replica_addr],
            consistency: Consistency::BoundedStaleness(Duration::from_secs(30)),
            ..PoolConfig::default()
        },
    );
    for i in 0..10 {
        pool.retry_write(&policy, |c| {
            c.begin(false)?;
            c.kv_put("cart", &format!("k{i}"), Value::int(i))?;
            c.commit()
        })
        .unwrap();
    }
    wait_caught_up(&runner, db.wal().unwrap().tail_lsn(), "catch-up before pipelining");

    // A caught-up replica under bounded staleness serves the whole
    // pipelined batch on one freshness check.
    {
        let mut pipe = pool.read_pipeline().unwrap();
        assert!(pipe.is_replica(), "caught-up replica must serve the pipeline");
        let ids: Vec<u64> = (0..10)
            .map(|i| {
                pipe.submit(&Request::Op(SessionOp::KvGet {
                    bucket: "cart".into(),
                    key: format!("k{i}"),
                }))
                .unwrap()
            })
            .collect();
        // Receive in reverse order to exercise the stash on the routed
        // connection too.
        for (i, id) in ids.iter().enumerate().rev() {
            match pipe.receive(*id).unwrap() {
                Response::Maybe(Some(v)) => assert_eq!(v, Value::int(i as i64)),
                other => panic!("pipelined get k{i} on replica: {other:?}"),
            }
        }
        assert_eq!(pipe.in_flight(), 0);
    }
    let stats = pool.stats();
    assert_eq!(stats.replica_pipelines, 1, "{stats:?}");
    assert_eq!(stats.pipeline_fallbacks, 0, "{stats:?}");

    // Lag the replica and demand read-your-writes: a pipeline checked
    // out right after a commit must fall back to the primary (instead
    // of silently serving stale data, the pre-`read_pipeline` failure
    // mode) and still observe the session's own write.
    fault::set("repl.apply", "delay(15)").unwrap();
    let rw_pool = Pool::new(
        &primary_addr,
        PoolConfig {
            replicas: vec![replica_server.local_addr().to_string()],
            consistency: Consistency::ReadYourWrites,
            ..PoolConfig::default()
        },
    );
    for i in 0..20 {
        rw_pool
            .retry_write(&policy, |c| {
                c.begin(false)?;
                c.kv_put("cart", "rw", Value::int(i))?;
                c.commit()
            })
            .unwrap();
        assert!(rw_pool.session_lsn() > 0, "commit LSN never reached the pool");
        let mut pipe = rw_pool.read_pipeline().unwrap();
        let id = pipe
            .submit(&Request::Op(SessionOp::KvGet { bucket: "cart".into(), key: "rw".into() }))
            .unwrap();
        match pipe.receive(id).unwrap() {
            Response::Maybe(Some(v)) => {
                assert_eq!(v, Value::int(i), "pipelined read-your-writes violated at {i}")
            }
            other => panic!("pipelined get rw: {other:?}"),
        }
    }
    fault::clear_all();
    let stats = rw_pool.stats();
    assert!(
        stats.pipeline_fallbacks > 0,
        "a lagged replica never bounced a pipeline to the primary: {stats:?}"
    );
    assert_eq!(
        stats.replica_pipelines + stats.pipeline_fallbacks,
        20,
        "every pipeline checkout must be counted exactly once: {stats:?}"
    );

    runner.stop();
    replica_server.shutdown().unwrap();
    server.shutdown().unwrap();
}

#[test]
fn subscribe_streams_committed_writes_and_resumes_by_lsn() {
    let _serial = lock();
    let db = Arc::new(Database::in_memory_logged());
    db.create_bucket("cart").unwrap();
    let server = Server::start(Arc::clone(&db), server_config()).unwrap();
    let addr = server.local_addr().to_string();
    let start_lsn = db.wal().unwrap().tail_lsn();

    // Two committed writes with an aborted transaction between them: the
    // feed must carry exactly the committed two, in commit order.
    db.kv_put("cart", "a", Value::int(1)).unwrap();
    let aborted: mmdb::Result<()> = db.transact(IsolationLevel::Snapshot, 0, |s| {
        s.kv_put("cart", "doomed", Value::int(9))?;
        Err(mmdb::Error::Query("client-side rollback".into()))
    });
    assert!(aborted.is_err());
    db.kv_put("cart", "b", Value::int(2)).unwrap();

    let mut sub = Client::connect(&addr).unwrap();
    sub.subscribe(start_lsn).unwrap();
    let first = next_event(&mut sub);
    let second = next_event(&mut sub);
    for (event, want) in [(&first, 1), (&second, 2)] {
        assert_eq!(event.get_field("type").as_str().unwrap(), "write");
        assert!(!event.get_field("deleted").as_bool().unwrap());
        assert_eq!(event.get_field("value"), &Value::int(want), "event: {}", mmdb::to_json(event));
    }
    let feed_json = format!("{} {}", mmdb::to_json(&first), mmdb::to_json(&second));
    assert!(!feed_json.contains("doomed"), "aborted write leaked into the feed: {feed_json}");

    // A live commit reaches the open subscription.
    db.kv_put("cart", "c", Value::int(3)).unwrap();
    assert_eq!(next_event(&mut sub).get_field("value"), &Value::int(3));

    // Resuming from the first event's cursor replays everything after
    // that commit, not the whole log.
    let resume_lsn = u64::try_from(first.get_field("lsn").as_int().unwrap()).unwrap();
    let mut resumed = Client::connect(&addr).unwrap();
    resumed.subscribe(resume_lsn).unwrap();
    assert_eq!(next_event(&mut resumed).get_field("value"), &Value::int(2));
    assert_eq!(next_event(&mut resumed).get_field("value"), &Value::int(3));

    server.shutdown().unwrap();
}

#[test]
fn subscribe_below_the_truncation_horizon_is_a_typed_nonretryable_error() {
    let _serial = lock();
    let db = Arc::new(Database::in_memory_logged());
    db.create_bucket("cart").unwrap();
    let server = Server::start(Arc::clone(&db), server_config()).unwrap();
    let addr = server.local_addr().to_string();

    // Writes, then a checkpoint: the whole prefix — including LSN 0 —
    // now sits below the truncation horizon.
    for i in 0..8 {
        db.kv_put("cart", &i.to_string(), Value::int(i)).unwrap();
    }
    let summary = db.checkpoint().unwrap();
    assert!(summary.snapshot_lsn > 0);

    // A change feed cannot be rebuilt from a snapshot (the intermediate
    // events are gone), so resuming below the horizon must fail loudly —
    // a typed, non-retryable error, not a silent skip-ahead.
    let mut sub = Client::connect(&addr).unwrap();
    sub.subscribe(0).unwrap();
    let err = sub.next_change().unwrap_err();
    assert_eq!(err.kind(), "log_truncated", "{err}");
    assert!(!err.is_retryable(), "log_truncated must not invite a retry: {err}");

    // Resuming at or past the horizon still works.
    let mut ok = Client::connect(&addr).unwrap();
    ok.subscribe(summary.snapshot_lsn).unwrap();
    db.kv_put("cart", "fresh", Value::int(99)).unwrap();
    assert_eq!(next_event(&mut ok).get_field("value"), &Value::int(99));

    server.shutdown().unwrap();
}

#[test]
fn replica_applies_a_streamed_checkpoint_and_truncates_its_own_log() {
    let _serial = lock();
    let db = Arc::new(Database::in_memory_logged());
    db.create_bucket("cart").unwrap();
    let server = Server::start(Arc::clone(&db), server_config()).unwrap();
    let addr = server.local_addr().to_string();

    // The replica keeps its own log (in-memory logged) so the streamed
    // checkpoint has something to truncate locally.
    let replica_db = Arc::new(Database::in_memory_logged());
    let runner = ReplicaRunner::start(Arc::clone(&replica_db), addr, fast_opts()).unwrap();
    for i in 0..16 {
        db.kv_put("cart", &i.to_string(), Value::int(i)).unwrap();
    }
    wait_caught_up(&runner, db.wal().unwrap().tail_lsn(), "pre-checkpoint catch-up");
    let replica_log_before = replica_db.wal_size_bytes();
    assert!(replica_log_before > 0, "replica re-logs applied transactions");

    // The primary checkpoints; the marker rides the stream and the
    // replica checkpoints its own store in response.
    db.checkpoint().unwrap();
    wait_caught_up(&runner, db.wal().unwrap().tail_lsn(), "checkpoint record delivery");
    wait_until("replica local checkpoint", || {
        let (count, _, _) = replica_db.checkpoint_stats();
        count > 0
    });
    assert!(
        replica_db.wal_size_bytes() < replica_log_before,
        "the streamed checkpoint must bound the replica's own log"
    );

    // Replication continues normally past the checkpoint record.
    db.kv_put("cart", "post", Value::int(1)).unwrap();
    wait_caught_up(&runner, db.wal().unwrap().tail_lsn(), "post-checkpoint tail");
    assert_eq!(replica_db.kv().get("cart", "post").unwrap(), Some(Value::int(1)));

    runner.stop();
    server.shutdown().unwrap();
}

/// Pull the next CDC event, skipping heartbeats.
fn next_event(sub: &mut Client) -> Value {
    // lint: allow(tick, bounded by the client read timeout; heartbeats arrive every 200ms)
    loop {
        let event = sub.next_change().unwrap();
        if matches!(event.get_field("type").as_str(), Ok("heartbeat")) {
            continue;
        }
        return event;
    }
}

#[test]
fn admin_endpoints_report_replication_lag() {
    let _serial = lock();
    let db = Arc::new(Database::in_memory_logged());
    db.create_bucket("cart").unwrap();
    let server = Server::start(Arc::clone(&db), server_config()).unwrap();
    let primary_addr = server.local_addr().to_string();

    let replica_db = Arc::new(Database::in_memory());
    let runner = ReplicaRunner::start(Arc::clone(&replica_db), primary_addr.clone(), fast_opts()).unwrap();
    let replica_server = Server::start(Arc::clone(&replica_db), server_config()).unwrap();
    let status = runner.status();
    replica_server.attach_replica_status(Arc::new(move || status.to_value()));
    // Container creation is not logged; only the committed write below
    // moves the WAL tail (and materializes the bucket replica-side).
    db.kv_put("cart", "seed", Value::int(1)).unwrap();
    wait_caught_up(&runner, db.wal().unwrap().tail_lsn(), "initial catch-up");

    // The primary reports its WAL tail; the replica reports role, lag
    // and staleness through the same `ADMIN REPL` verb.
    let mut primary_client = Client::connect(&primary_addr).unwrap();
    let p = primary_client.admin_repl().unwrap();
    assert_eq!(p.get_field("role").as_str().unwrap(), "primary");
    assert!(p.get_field("wal_tail_lsn").as_int().unwrap() > 0);

    let mut replica_client = Client::connect(replica_server.local_addr().to_string()).unwrap();
    let r = replica_client.admin_repl().unwrap();
    assert_eq!(r.get_field("role").as_str().unwrap(), "replica");
    assert!(r.get_field("connected").as_bool().unwrap());
    assert_eq!(r.get_field("lag_bytes").as_int().unwrap(), 0);
    assert_eq!(r.get_field("primary").as_str().unwrap(), primary_addr);

    // `ADMIN HEALTH` on a replica carries the replication block too.
    let h = replica_client.admin_health().unwrap();
    assert_eq!(h.get_field("status").as_str().unwrap(), "replica");

    // Kill the primary: the replica flips to disconnected and staleness
    // starts climbing, while reads keep working.
    server.shutdown().unwrap();
    drop(primary_client);
    wait_until("disconnect detection", || !runner.status().is_connected());
    let r = replica_client.admin_repl().unwrap();
    assert!(!r.get_field("connected").as_bool().unwrap());
    assert!(replica_client.kv_get("cart", "missing").unwrap().is_none());

    runner.stop();
    replica_server.shutdown().unwrap();
}
