//! Group-commit torture and property suite. Built only with
//! `--features failpoints` (see the `[[test]]` entry in Cargo.toml);
//! `scripts/ci.sh` runs it.
//!
//! The group-commit sequencer (crates/txn/src/mvcc.rs) batches
//! concurrent committers onto one contiguous WAL append and a single
//! fsync. This suite proves the batching is real and loses nothing:
//!
//!   1. a 64-writer torture run costs far fewer `wal.sync` calls than
//!      commits (measured through the failpoint hit counters), and every
//!      acknowledged commit survives a reopen;
//!   2. with a 1ms delayed-fsync failpoint — the regime group commit
//!      exists for — eight concurrent writers beat the serial-fsync
//!      baseline by at least 3× in throughput and fsync count, and a
//!      snapshot begun inside the stretched append→install window never
//!      covers the in-flight commit (the `snapshot_ts` watermark);
//!   3. crashing the leader at every `txn.group_commit.*` site mid-batch
//!      under multi-writer load recovers, byte-identical, to a state
//!      some serial-commit oracle produces: acknowledged commits
//!      present, every transaction atomic, no torn or phantom writes;
//!   4. an injected error between the batch append and its fsync latches
//!      the store degraded (the fsyncgate rule), and a reopen clears it;
//!   5. a replica tailing the primary's WAL stream converges
//!      byte-for-byte over a group-committed log;
//!   6. property tests: random interleavings of begin/put/delete/commit/
//!      abort across overlapping write sets match the serial
//!      first-committer-wins SI model exactly — one winner per conflict
//!      — and the WAL the group path writes replays to the identical
//!      committed state.

use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Barrier, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use proptest::prelude::*;

use mmdb::substrate::repl::{ReplicaOptions, ReplicaRunner};
use mmdb::substrate::storage::wal::recover_from_bytes;
use mmdb::substrate::storage::Wal;
use mmdb::substrate::txn::{IsolationLevel, MvccStore};
use mmdb::{fault, Database, Value};
use mmdb_client::ClientConfig;
use mmdb_server::{Server, ServerConfig};

/// Failpoints are process-global, so the tests in this binary serialize.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK
        .get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    fault::clear_all();
    guard
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmdb-group-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Run `f` with the panic hook silenced, so injected leader crashes do
/// not spray backtraces over the test output.
fn silence_panics<R>(f: impl FnOnce() -> R) -> R {
    let prev = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let result = f();
    let _ = panic::take_hook();
    panic::set_hook(prev);
    result
}

/// JSON dump of `keys` in a kv bucket — `Null` for absent — so state
/// comparisons are byte-identical, not merely structurally equal.
fn kv_dump(db: &Database, bucket: &str, keys: &[String]) -> String {
    let vals: Vec<Value> = keys
        .iter()
        .map(|k| db.kv().get(bucket, k).ok().flatten().unwrap_or(Value::Null))
        .collect();
    mmdb::to_json(&Value::Array(vals))
}

#[test]
fn sixty_four_writers_share_fsyncs_and_lose_nothing() {
    const WRITERS: usize = 64;
    const TXNS_EACH: usize = 4;
    const TXNS: u64 = (WRITERS * TXNS_EACH) as u64;

    let _serial = lock();
    let dir = fresh_dir("torture");
    let db = Database::open(&dir).unwrap();
    db.create_bucket("t").unwrap();

    let (commits0, aborts0) = db.mvcc().stats();
    let g0 = db.mvcc().group_commit_stats();
    let syncs0 = fault::hits("wal.sync");
    // A 1ms fsync is the regime group commit exists for: while the
    // leader sleeps in `sync`, the other writers pile onto the queue.
    fault::set("wal.sync", "delay(1)").unwrap();

    let gate = Barrier::new(WRITERS);
    std::thread::scope(|scope| {
        for t in 0..WRITERS {
            let db = &db;
            let gate = &gate;
            scope.spawn(move || {
                gate.wait();
                for j in 0..TXNS_EACH {
                    db.kv_put("t", &format!("w{t}-{j}"), Value::int((t * 10 + j) as i64))
                        .unwrap();
                }
            });
        }
    });
    fault::clear_all();

    let (commits1, aborts1) = db.mvcc().stats();
    assert_eq!(commits1 - commits0, TXNS, "every distinct-key commit must succeed");
    assert_eq!(aborts1 - aborts0, 0, "distinct keys must never conflict");

    // The headline claim: fsyncs ≪ commits, measured at the `wal.sync`
    // failpoint (its hit counter counts every evaluation, armed or not).
    let syncs = fault::hits("wal.sync") - syncs0;
    assert!(
        syncs * 4 <= TXNS,
        "group commit saved too few fsyncs: {syncs} syncs for {TXNS} commits"
    );

    // The sequencer's own accounting agrees with the observed batching.
    let g1 = db.mvcc().group_commit_stats();
    let (batches, txns) = (g1.batches - g0.batches, g1.txns - g0.txns);
    let saved = g1.fsyncs_saved - g0.fsyncs_saved;
    assert_eq!(txns, TXNS, "every commit must flow through the sequencer");
    assert_eq!(batches + saved, txns, "each batch of n transactions saves n-1 fsyncs");
    assert!(saved > 0, "64 hot writers against a 1ms fsync must batch at least once");
    assert!(g1.max_group_size >= 2, "no multi-transaction batch ever formed");

    // Nothing acknowledged is lost: a cold reopen replays all 256.
    drop(db);
    let db = Database::open(&dir).unwrap();
    for t in 0..WRITERS {
        for j in 0..TXNS_EACH {
            assert_eq!(
                db.kv().get("t", &format!("w{t}-{j}")).unwrap(),
                Some(Value::int((t * 10 + j) as i64)),
                "commit w{t}-{j} vanished across reopen"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn eight_writers_triple_serial_fsync_throughput() {
    const TXNS: usize = 96;
    const WRITERS: usize = 8;

    let _serial = lock();
    fault::set("wal.sync", "delay(1)").unwrap();

    // Serial-fsync baseline: one writer, so every batch is a singleton
    // and every commit pays the full 1ms sync.
    let serial = MvccStore::new(Some(Arc::new(Wal::in_memory())));
    let syncs0 = fault::hits("wal.sync");
    let started = Instant::now();
    for i in 0..TXNS {
        let mut t = serial.begin(IsolationLevel::Snapshot);
        t.put("kv/bench", format!("s{i}").as_bytes(), Value::int(i as i64)).unwrap();
        t.commit().unwrap();
    }
    let serial_elapsed = started.elapsed();
    let serial_syncs = fault::hits("wal.sync") - syncs0;
    assert_eq!(serial_syncs, TXNS as u64, "a lone writer must pay one fsync per commit");

    // Same commit count across eight writers: batches amortize the sync.
    let grouped = MvccStore::new(Some(Arc::new(Wal::in_memory())));
    let syncs0 = fault::hits("wal.sync");
    let gate = Barrier::new(WRITERS);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let store = grouped.clone();
            let gate = &gate;
            scope.spawn(move || {
                gate.wait();
                for i in 0..TXNS / WRITERS {
                    let mut t = store.begin(IsolationLevel::Snapshot);
                    t.put("kv/bench", format!("g{w}-{i}").as_bytes(), Value::int(i as i64))
                        .unwrap();
                    t.commit().unwrap();
                }
            });
        }
    });
    let grouped_elapsed = started.elapsed();
    let grouped_syncs = fault::hits("wal.sync") - syncs0;
    fault::clear_all();

    let (commits, aborts) = grouped.stats();
    assert_eq!((commits, aborts), (TXNS as u64, 0));
    assert!(
        grouped_syncs * 3 <= serial_syncs,
        "8 writers needed {grouped_syncs} fsyncs vs {serial_syncs} serial — batching failed"
    );
    assert!(
        grouped_elapsed * 3 <= serial_elapsed,
        "8-writer group commit must be ≥3× serial-fsync throughput: \
         {grouped_elapsed:?} grouped vs {serial_elapsed:?} serial"
    );
}

/// Regression: the sequencer allocates commit timestamps *before* the
/// WAL append and version install, so `begin` must read the
/// post-install `snapshot_ts` watermark, not the allocation clock — a
/// snapshot taken from the raw clock inside that window covers an
/// allocated-but-uninstalled commit and watches the key change under
/// it between two reads. The delayed-fsync failpoint stretches the
/// allocate→install window to milliseconds, which turns what was a
/// one-in-a-thousand flake (`snapshot_readers_are_stable_under_writes`
/// in tests/concurrency.rs under a loaded machine) into a deterministic
/// failure without the watermark.
#[test]
fn snapshots_never_cover_a_commit_parked_in_the_sync_window() {
    use std::sync::atomic::{AtomicBool, Ordering};

    const COMMITS: i64 = 60;
    let _serial = lock();
    fault::set("wal.sync", "delay(2)").unwrap();

    let store = MvccStore::new(Some(Arc::new(Wal::in_memory())));
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let writer = store.clone();
        let done = &done;
        scope.spawn(move || {
            for i in 0..COMMITS {
                let mut t = writer.begin(IsolationLevel::Snapshot);
                t.put("kv/counters", b"c", Value::int(i)).unwrap();
                t.commit().unwrap();
            }
            done.store(true, Ordering::SeqCst);
        });
        let reader = store.clone();
        scope.spawn(move || {
            while !done.load(Ordering::SeqCst) {
                let t = reader.begin(IsolationLevel::Snapshot);
                let first = t.get("kv/counters", b"c").unwrap();
                std::thread::yield_now();
                let second = t.get("kv/counters", b"c").unwrap();
                assert_eq!(first, second, "a snapshot moved inside the fsync window");
                t.abort();
            }
        });
    });
    fault::clear_all();
    assert_eq!(store.get_latest("kv/counters", b"c"), Some(Value::int(COMMITS - 1)));
}

/// What a committer thread observed for its transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ack {
    Committed,
    Refused,
    Crashed,
}

#[test]
fn leader_crash_at_every_group_site_recovers_to_a_serial_oracle() {
    const WRITERS: usize = 8;
    let _serial = lock();
    for site in
        ["txn.group_commit.enqueue", "txn.group_commit.before_sync", "txn.group_commit.after_sync"]
    {
        fault::clear_all();
        let dir = fresh_dir(&format!("site-{}", site.replace('.', "-")));
        let db = Database::open(&dir).unwrap();
        db.create_bucket("t").unwrap();
        for b in 0..4 {
            db.kv_put("t", &format!("base-{b}"), Value::int(b)).unwrap();
        }

        // Eight concurrent two-key transactions with the leader doomed to
        // crash mid-batch. Every injected panic stays on its own thread.
        let hits_before = fault::hits(site);
        fault::set(site, "panic").unwrap();
        let gate = Barrier::new(WRITERS);
        let acks: Vec<Ack> = silence_panics(|| {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..WRITERS)
                    .map(|i| {
                        let db = &db;
                        let gate = &gate;
                        scope.spawn(move || {
                            gate.wait();
                            let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                                db.transact(IsolationLevel::Snapshot, 0, |s| {
                                    s.kv_put("t", &format!("a-{i}"), Value::int(i as i64))?;
                                    s.kv_put("t", &format!("b-{i}"), Value::int(i as i64))
                                })
                            }));
                            match outcome {
                                Ok(Ok(_)) => Ack::Committed,
                                Ok(Err(_)) => Ack::Refused,
                                Err(_) => Ack::Crashed,
                            }
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
        });
        fault::clear_all();
        assert!(fault::hits(site) > hits_before, "site {site}: failpoint never fired");
        assert!(
            acks.contains(&Ack::Crashed),
            "site {site}: no leader ever crashed — the site is off the batch path"
        );
        // Armed for the whole phase, every batch leader dies before
        // publishing a success, so nothing may have been acknowledged.
        assert!(
            !acks.contains(&Ack::Committed),
            "site {site}: a commit was acknowledged under a crashing leader: {acks:?}"
        );
        drop(db);

        // Reopen: recovery replays whatever prefix of batches reached the
        // log. Which transactions survive is schedule-dependent — the
        // invariants are not.
        let db = Database::open(&dir).unwrap();
        let mut survivors = Vec::new();
        for (i, ack) in acks.iter().enumerate() {
            let a = db.kv().get("t", &format!("a-{i}")).unwrap();
            let b = db.kv().get("t", &format!("b-{i}")).unwrap();
            assert_eq!(
                a.is_some(),
                b.is_some(),
                "site {site}: transaction {i} recovered non-atomically (a={a:?}, b={b:?})"
            );
            if *ack == Ack::Committed {
                assert!(a.is_some(), "site {site}: acknowledged commit {i} lost");
            }
            if a.is_some() {
                survivors.push(i);
            }
        }
        if site == "txn.group_commit.enqueue" {
            // A crash before the hand-off never reaches a leader: no
            // trace of any doomed transaction may exist.
            assert!(survivors.is_empty(), "site {site}: unsequenced txns resurfaced: {survivors:?}");
        }

        // Byte-identical against a serial-commit oracle: a fresh database
        // that commits the baseline plus exactly the surviving
        // transactions one at a time must produce the same bytes.
        let oracle_dir = fresh_dir("oracle");
        let oracle = Database::open(&oracle_dir).unwrap();
        oracle.create_bucket("t").unwrap();
        for b in 0..4 {
            oracle.kv_put("t", &format!("base-{b}"), Value::int(b)).unwrap();
        }
        for &i in &survivors {
            oracle
                .transact(IsolationLevel::Snapshot, 0, |s| {
                    s.kv_put("t", &format!("a-{i}"), Value::int(i as i64))?;
                    s.kv_put("t", &format!("b-{i}"), Value::int(i as i64))
                })
                .unwrap();
        }
        let mut keys: Vec<String> = (0..4).map(|b| format!("base-{b}")).collect();
        for i in 0..WRITERS {
            keys.push(format!("a-{i}"));
            keys.push(format!("b-{i}"));
        }
        assert_eq!(
            kv_dump(&db, "t", &keys),
            kv_dump(&oracle, "t", &keys),
            "site {site}: recovered state diverged from the serial-commit oracle"
        );

        // The recovered engine accepts new writes.
        db.kv_put("t", "post-recovery", Value::str(site)).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&oracle_dir);
    }
}

#[test]
fn an_error_between_batch_append_and_fsync_latches_degraded() {
    let _serial = lock();
    let dir = fresh_dir("degraded");
    let db = Database::open(&dir).unwrap();
    db.create_bucket("t").unwrap();
    db.kv_put("t", "base", Value::int(1)).unwrap();

    // The batch is in the log but its durability is unknowable — the
    // same condition as a failed fsync, and the same consequence.
    fault::set("txn.group_commit.before_sync", "error").unwrap();
    let err = db.kv_put("t", "pending", Value::int(2)).unwrap_err();
    fault::clear_all();
    assert_eq!(err.kind(), "storage", "{err}");
    assert!(db.is_degraded(), "an unsynced batch append must latch degraded mode");

    // Writes are refused fast; reads keep serving the pre-latch state.
    let err = db.kv_put("t", "rejected", Value::int(3)).unwrap_err();
    assert_eq!(err.kind(), "read_only", "{err}");
    assert_eq!(db.kv().get("t", "base").unwrap(), Some(Value::int(1)));
    assert_eq!(db.kv().get("t", "pending").unwrap(), None, "unacknowledged write visible");

    // Reopen clears the latch. The ambiguous batch *did* reach the log
    // file on this machine, so recovery replays it — the transaction was
    // never acknowledged, but resurfacing is the allowed outcome for an
    // unknown-durability commit (what is forbidden is serving it before
    // the crash, checked above).
    drop(db);
    let db = Database::open(&dir).unwrap();
    assert!(!db.is_degraded(), "reopen must clear the degraded latch");
    assert_eq!(db.kv().get("t", "pending").unwrap(), Some(Value::int(2)));
    assert_eq!(db.kv().get("t", "rejected").unwrap(), None, "refused write resurfaced");
    db.kv_put("t", "after", Value::int(4)).unwrap();
    assert_eq!(db.kv().get("t", "after").unwrap(), Some(Value::int(4)));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replicas_converge_byte_for_byte_over_a_group_committed_stream() {
    const WRITERS: usize = 8;
    const TXNS_EACH: usize = 8;

    let _serial = lock();
    let db = Arc::new(Database::in_memory_logged());
    db.create_bucket("t").unwrap();
    let server = Server::start(
        Arc::clone(&db),
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            poll_interval: Duration::from_millis(5),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    let replica_db = Arc::new(Database::in_memory());
    let opts = ReplicaOptions {
        reconnect_delay: Duration::from_millis(25),
        client: ClientConfig {
            read_timeout: Some(Duration::from_secs(2)),
            ..ReplicaOptions::default().client
        },
    };
    let runner = ReplicaRunner::start(Arc::clone(&replica_db), addr, opts).unwrap();

    // Concurrent writers while the replica tails the stream live: the
    // stream must only ever ship synced (durable) bytes, and batch
    // appends must arrive as whole Begin..Commit blocks.
    let gate = Barrier::new(WRITERS);
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let db = &db;
            let gate = &gate;
            scope.spawn(move || {
                gate.wait();
                for i in 0..TXNS_EACH {
                    db.kv_put("t", &format!("w{w}-{i}"), Value::int((w * 100 + i) as i64))
                        .unwrap();
                }
            });
        }
    });

    // Every commit acked means every batch synced: the durable watermark
    // sits at the tail, and the replica must reach it.
    let tail = db.wal().unwrap().tail_lsn();
    assert_eq!(db.wal().unwrap().durable_lsn(), tail, "acked commits left unsynced bytes");
    let deadline = Instant::now() + Duration::from_secs(15);
    // lint: allow(tick, test helper poll loop with a hard 15s deadline)
    while !(runner.status().is_connected() && runner.status().applied_lsn() >= tail) {
        assert!(Instant::now() < deadline, "replica never caught up to the group-committed tail");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(runner.status().lag_bytes(), 0, "caught-up replica reports lag");

    let keys: Vec<String> = (0..WRITERS)
        .flat_map(|w| (0..TXNS_EACH).map(move |i| format!("w{w}-{i}")))
        .collect();
    assert_eq!(
        kv_dump(&replica_db, "t", &keys),
        kv_dump(&db, "t", &keys),
        "replica diverged from the group-committed primary"
    );

    runner.stop();
    server.shutdown().unwrap();
}

/// One transaction slot in the shadow-model property test: the live
/// transaction, its snapshot timestamp, and its buffered write set.
type OpenSlot = Option<(mmdb::substrate::txn::Transaction, u64, Vec<(u8, Option<i64>)>)>;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random interleavings of begin/put/delete/commit/abort across three
    /// transaction slots and five overlapping keys behave exactly like
    /// the serial first-committer-wins SI model — same winners, same
    /// conflicts, same commit timestamps, same final state — and the WAL
    /// the group path wrote replays to the identical committed state.
    #[test]
    fn interleavings_match_the_serial_model_and_replay_from_the_wal(
        script in prop::collection::vec((0usize..3, 0u8..5, 0u8..5, 0i64..1000), 1..80),
    ) {
        let _serial = lock();
        let wal = Arc::new(Wal::in_memory());
        let store = MvccStore::new(Some(Arc::clone(&wal)));
        // The shadow model: a logical clock that ticks once per winning
        // commit, and per-key (commit_ts, value) of the latest winner.
        let mut clock: u64 = 1;
        let mut committed: std::collections::BTreeMap<u8, (u64, Option<i64>)> =
            Default::default();
        let mut open: Vec<OpenSlot> = (0..3).map(|_| None).collect();
        for (slot, key, action, value) in script {
            let kb = [b'k', key];
            match action {
                0 => {
                    if let Some((t, _, _)) = open[slot].take() {
                        t.abort();
                    }
                    let t = store.begin(IsolationLevel::Snapshot);
                    prop_assert_eq!(t.start_ts(), clock, "snapshot must mirror the model clock");
                    open[slot] = Some((t, clock, Vec::new()));
                }
                1 => if let Some((t, _, w)) = open[slot].as_mut() {
                    t.put("kv/prop", &kb, Value::int(value)).unwrap();
                    w.push((key, Some(value)));
                },
                2 => if let Some((t, _, w)) = open[slot].as_mut() {
                    t.delete("kv/prop", &kb).unwrap();
                    w.push((key, None));
                },
                3 => if let Some((t, snap, w)) = open[slot].take() {
                    let conflict = w
                        .iter()
                        .any(|(k, _)| committed.get(k).is_some_and(|(ts, _)| *ts > snap));
                    let result = t.commit();
                    if w.is_empty() {
                        prop_assert!(result.is_ok(), "an empty commit must succeed");
                    } else if conflict {
                        prop_assert!(result.is_err(), "the model says conflict, the store committed");
                        prop_assert_eq!(result.unwrap_err().kind(), "txn_conflict");
                    } else {
                        clock += 1;
                        prop_assert_eq!(result.unwrap(), clock, "commit ts diverged from the model");
                        for (k, v) in w {
                            committed.insert(k, (clock, v));
                        }
                    }
                },
                _ => if let Some((t, _, _)) = open[slot].take() {
                    t.abort();
                },
            }
        }
        drop(open);
        // Exactly one winner per conflict and nothing else: the final
        // state is the model's, key by key.
        for key in 0u8..5 {
            let want = committed.get(&key).and_then(|(_, v)| v.map(Value::int));
            prop_assert_eq!(store.get_latest("kv/prop", &[b'k', key]), want);
        }
        // The group-committed WAL replays to the identical state.
        let recovery = recover_from_bytes(&wal.snapshot_bytes());
        prop_assert!(!recovery.torn_tail, "a clean run must not leave a torn tail");
        let replayed = MvccStore::new(None);
        replayed.recover(&recovery).unwrap();
        for key in 0u8..5 {
            prop_assert_eq!(
                replayed.get_latest("kv/prop", &[b'k', key]),
                store.get_latest("kv/prop", &[b'k', key]),
                "WAL replay diverged on key {}", key
            );
        }
    }

    /// K transactions writing the same key from the same snapshot:
    /// however commit and abort interleave, exactly the first committer
    /// wins and every later committer conflicts.
    #[test]
    fn overlapping_write_sets_have_exactly_one_winner(
        decisions in prop::collection::vec(any::<bool>(), 2..10),
    ) {
        let _serial = lock();
        let store = MvccStore::new(None);
        let mut txns = Vec::new();
        for i in 0..decisions.len() {
            let mut t = store.begin(IsolationLevel::Snapshot);
            t.put("kv/hot", b"key", Value::int(i as i64)).unwrap();
            txns.push(t);
        }
        let mut winner = None;
        for (i, (t, commit)) in txns.into_iter().zip(decisions.iter()).enumerate() {
            if *commit {
                let result = t.commit();
                if winner.is_none() {
                    prop_assert!(result.is_ok(), "the first committer must win");
                    winner = Some(i as i64);
                } else {
                    prop_assert_eq!(result.unwrap_err().kind(), "txn_conflict");
                }
            } else {
                t.abort();
            }
        }
        let (commits, aborts) = store.stats();
        prop_assert_eq!(commits, u64::from(winner.is_some()));
        prop_assert_eq!(aborts as usize, decisions.len() - usize::from(winner.is_some()));
        prop_assert_eq!(store.get_latest("kv/hot", b"key"), winner.map(Value::int));
    }
}
