//! Request pipelining over one connection: tagged frames complete out
//! of order, the depth cap applies backpressure, id-less legacy frames
//! keep strict FIFO request/response behavior byte-for-byte, and the
//! reaper/writer failure paths behave under concurrent in-flight work.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mmdb::{Database, Value};
use mmdb_client::Client;
use mmdb_protocol::{frame, Request, Response, SessionOp, PROTOCOL_VERSION};
use mmdb_server::{Server, ServerConfig};

fn start_server(config: ServerConfig) -> (Arc<Database>, Server, String) {
    let db = Arc::new(Database::in_memory());
    db.create_bucket("cart").unwrap();
    db.create_collection("items").unwrap();
    let server = Server::start(Arc::clone(&db), config).unwrap();
    let addr = server.local_addr().to_string();
    (db, server, addr)
}

/// Populate `items` with enough documents that a full scan takes far
/// longer than a ping, so scheduling races can't mask out-of-order
/// completion.
fn load_items(db: &Database, n: usize) {
    for i in 0..n {
        db.insert_json("items", &format!("{{\"n\": {i}, \"pad\": \"{:0>64}\"}}", i)).unwrap();
    }
}

/// Wait until `cond` holds or panic after a few seconds.
fn eventually(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for: {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Raw-socket handshake so tests control frame bytes exactly.
fn raw_handshake(addr: &str, tagged: bool) -> TcpStream {
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    raw.set_nodelay(true).unwrap();
    let hello = Request::Hello { version: PROTOCOL_VERSION };
    let payload = if tagged { hello.encode_with_id(Some(0)) } else { hello.encode() };
    frame::write_frame(&mut raw, &payload, frame::MAX_FRAME_LEN).unwrap();
    let reply = frame::read_frame(&mut raw, frame::MAX_FRAME_LEN).unwrap();
    let (id, resp) = Response::decode_with_id(&reply).unwrap();
    assert_eq!(id, if tagged { Some(0) } else { None });
    assert!(matches!(resp, Response::Hello { .. }), "{resp:?}");
    raw
}

#[test]
fn tagged_responses_complete_out_of_order() {
    let (db, server, addr) = start_server(ServerConfig::default());
    load_items(&db, 4000);
    let mut raw = raw_handshake(&addr, true);

    // One slow full scan, then a burst of pings, all written in one
    // batch. The scan grinds on one executor while the pings finish on
    // the others — their responses must overtake it, each carrying the
    // id it was submitted under.
    let mut batch = Vec::new();
    let scan = Request::Query {
        text: "FOR x IN items FILTER x.n >= 0 RETURN x".into(),
        deadline_ms: None,
    };
    frame::write_frame(&mut batch, &scan.encode_with_id(Some(100)), frame::MAX_FRAME_LEN)
        .unwrap();
    for id in 101..=104u64 {
        frame::write_frame(
            &mut batch,
            &Request::Ping.encode_with_id(Some(id)),
            frame::MAX_FRAME_LEN,
        )
        .unwrap();
    }
    raw.write_all(&batch).unwrap();

    let mut arrival = Vec::new();
    for _ in 0..5 {
        let payload = frame::read_frame(&mut raw, frame::MAX_FRAME_LEN).unwrap();
        let (id, resp) = Response::decode_with_id(&payload).unwrap();
        let id = id.expect("pipelined responses carry their request id");
        match id {
            100 => assert!(matches!(resp, Response::Rows(ref r) if r.len() == 4000)),
            101..=104 => assert!(matches!(resp, Response::Pong), "{resp:?}"),
            other => panic!("unknown response id {other}"),
        }
        arrival.push(id);
    }
    assert_ne!(
        arrival[0], 100,
        "a ping must overtake the scan; arrival order was {arrival:?}"
    );
    assert_eq!(server.metrics().errors_total.load(Ordering::Relaxed), 0);
    server.shutdown().unwrap();
}

#[test]
fn client_submits_many_and_receives_by_id_in_any_order() {
    let (_db, server, addr) = start_server(ServerConfig::default());
    let mut client = Client::connect(&addr).unwrap();

    // Submit 20 puts then 20 gets in one pipelined burst. The server
    // runs session ops from one connection in submission order, so the
    // gets observe the puts regardless of receive order.
    let mut put_ids = Vec::new();
    let mut get_ids = Vec::new();
    for i in 0..20 {
        let put = Request::Op(SessionOp::KvPut {
            bucket: "cart".into(),
            key: format!("k{i}"),
            value: Value::int(i),
        });
        put_ids.push(client.submit(&put).unwrap());
    }
    for i in 0..20 {
        let get = Request::Op(SessionOp::KvGet { bucket: "cart".into(), key: format!("k{i}") });
        get_ids.push(client.submit(&get).unwrap());
    }
    assert_eq!(client.in_flight(), 40);

    // Strict request/response calls are refused while ids are in flight.
    let err = client.ping().unwrap_err();
    assert!(err.to_string().contains("in flight"), "{err}");

    // Receive gets first, in reverse submission order; stashing makes
    // the order irrelevant to the caller.
    for (i, id) in get_ids.iter().enumerate().rev() {
        match client.receive(*id).unwrap() {
            Response::Maybe(Some(v)) => assert_eq!(v, Value::int(i as i64)),
            other => panic!("get k{i}: {other:?}"),
        }
    }
    for id in put_ids.iter().rev() {
        assert!(matches!(client.receive(*id).unwrap(), Response::Ok));
    }
    assert_eq!(client.in_flight(), 0);

    // A drained pipeline frees the connection for plain calls again,
    // and an unknown id is a caller error, not a poisoned connection.
    client.ping().unwrap();
    assert!(client.receive(999).is_err());
    assert!(!client.is_poisoned());
    server.shutdown().unwrap();
}

#[test]
fn a_transaction_pipelines_and_commits_atomically() {
    let (db, server, addr) = start_server(ServerConfig::default());
    let mut client = Client::connect(&addr).unwrap();

    let begin = client.submit(&Request::Begin { serializable: false }).unwrap();
    let mut puts = Vec::new();
    for i in 0..10 {
        puts.push(
            client
                .submit(&Request::Op(SessionOp::KvPut {
                    bucket: "cart".into(),
                    key: format!("t{i}"),
                    value: Value::int(i),
                }))
                .unwrap(),
        );
    }
    let commit = client.submit(&Request::Commit).unwrap();

    assert!(matches!(client.receive(begin).unwrap(), Response::TxnBegun { .. }));
    for id in puts {
        assert!(matches!(client.receive(id).unwrap(), Response::Ok));
    }
    assert!(matches!(client.receive(commit).unwrap(), Response::Committed { .. }));
    for i in 0..10 {
        assert_eq!(db.kv().get("cart", &format!("t{i}")).unwrap(), Some(Value::int(i)));
    }
    assert_eq!(server.metrics().sessions_reaped.load(Ordering::Relaxed), 0);
    server.shutdown().unwrap();
}

#[test]
fn the_depth_cap_stalls_the_reader_and_reports_it() {
    // One executor and a tiny depth: a slow scan occupies the worker,
    // pings pile up behind it, and the reader must stop pulling frames
    // once `pipeline_depth` requests are in flight.
    let (db, server, addr) = start_server(ServerConfig {
        workers: 1,
        pipeline_depth: 2,
        ..ServerConfig::default()
    });
    load_items(&db, 4000);
    let mut client = Client::connect(&addr).unwrap();

    let scan = client
        .submit(&Request::Query {
            text: "FOR x IN items FILTER x.n >= 0 RETURN x".into(),
            deadline_ms: None,
        })
        .unwrap();
    let pings: Vec<u64> =
        (0..8).map(|_| client.submit(&Request::Ping).unwrap()).collect();
    match client.receive(scan).unwrap() {
        Response::Rows(rows) => assert_eq!(rows.len(), 4000),
        other => panic!("{other:?}"),
    }
    for id in pings {
        assert!(matches!(client.receive(id).unwrap(), Response::Pong));
    }

    let stats = client.admin_stats().unwrap();
    let pipeline = stats.get_field("pipeline");
    let stalls = pipeline.get_field("depth_stalls").as_int().unwrap();
    assert!(stalls >= 1, "the reader never hit the depth cap (stalls = {stalls})");
    // The STATS request reading the gauge is itself the one in flight.
    assert_eq!(pipeline.get_field("inflight_requests"), &Value::int(1));
    server.shutdown().unwrap();
}

#[test]
fn idless_legacy_frames_round_trip_byte_identically_in_fifo_order() {
    let (_db, server, addr) = start_server(ServerConfig::default());
    let mut raw = raw_handshake(&addr, false);

    // Three id-less requests written back to back: responses must come
    // back strictly in order, each encoded exactly as the pre-pipelining
    // protocol would have — no envelope, no id, byte for byte.
    let reqs = [
        Request::Ping,
        Request::Op(SessionOp::KvPut {
            bucket: "cart".into(),
            key: "legacy".into(),
            value: Value::int(7),
        }),
        Request::Op(SessionOp::KvGet { bucket: "cart".into(), key: "legacy".into() }),
    ];
    let mut batch = Vec::new();
    for req in &reqs {
        frame::write_frame(&mut batch, &req.encode(), frame::MAX_FRAME_LEN).unwrap();
    }
    raw.write_all(&batch).unwrap();

    let expected = [
        Response::Pong.encode(),
        Response::Ok.encode(),
        Response::Maybe(Some(Value::int(7))).encode(),
    ];
    for want in &expected {
        let payload = frame::read_frame(&mut raw, frame::MAX_FRAME_LEN).unwrap();
        assert_eq!(&payload, want, "id-less responses must be byte-identical to legacy");
    }

    // Tagged and id-less frames interleave on one connection: the
    // tagged one comes back enveloped, the id-less one bare.
    frame::write_frame(&mut raw, &Request::Ping.encode_with_id(Some(42)), frame::MAX_FRAME_LEN)
        .unwrap();
    let payload = frame::read_frame(&mut raw, frame::MAX_FRAME_LEN).unwrap();
    assert_eq!(Response::decode_with_id(&payload).unwrap(), (Some(42), Response::Pong));
    frame::write_frame(&mut raw, &Request::Ping.encode(), frame::MAX_FRAME_LEN).unwrap();
    let payload = frame::read_frame(&mut raw, frame::MAX_FRAME_LEN).unwrap();
    assert_eq!(payload, Response::Pong.encode());
    server.shutdown().unwrap();
}

#[test]
fn stream_requests_refuse_a_request_id() {
    // ReplicaHello/Subscribe take over the whole connection, so a
    // pipelined (tagged) variant is meaningless and must be refused
    // with a framed error instead of wedging the stream.
    let (_db, server, addr) = start_server(ServerConfig::default());
    let mut raw = raw_handshake(&addr, true);
    frame::write_frame(
        &mut raw,
        &Request::Subscribe { from_lsn: 0 }.encode_with_id(Some(9)),
        frame::MAX_FRAME_LEN,
    )
    .unwrap();
    let payload = frame::read_frame(&mut raw, frame::MAX_FRAME_LEN).unwrap();
    let (id, resp) = Response::decode_with_id(&payload).unwrap();
    assert_eq!(id, Some(9));
    match resp {
        Response::Err { kind, message } => {
            assert_eq!(kind, "protocol");
            assert!(message.contains("request id"), "{message}");
        }
        other => panic!("expected a protocol error, got {other:?}"),
    }
    server.shutdown().unwrap();
}

#[test]
fn an_active_pipeline_defers_the_idle_reaper_and_quiet_wins_it() {
    let (_db, server, addr) = start_server(ServerConfig {
        idle_timeout: Duration::from_millis(150),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr).unwrap();

    // Keep frames flowing well past the idle timeout: per-frame
    // activity keeps the reaper away even though each gap alone is a
    // large fraction of the budget.
    let started = Instant::now();
    while started.elapsed() < Duration::from_millis(450) {
        let id = client.submit(&Request::Ping).unwrap();
        assert!(matches!(client.receive(id).unwrap(), Response::Pong));
        std::thread::sleep(Duration::from_millis(50));
    }
    assert_eq!(server.metrics().connections_active.load(Ordering::Relaxed), 1);

    // Going quiet with nothing in flight gets the connection reaped.
    eventually("quiet pipelined connection reaped", || {
        server.metrics().connections_active.load(Ordering::Relaxed) == 0
    });
    assert!(client.ping().is_err());
    assert_eq!(server.metrics().sessions_reaped.load(Ordering::Relaxed), 0);
    server.shutdown().unwrap();
}

#[test]
fn a_dead_reader_stalls_the_writer_and_gets_disconnected() {
    // The client pipelines scans with multi-megabyte responses and
    // never reads. Socket buffers fill, the connection writer stalls
    // past `write_timeout`, and the server must kill the connection
    // rather than block a writer thread forever.
    let (db, server, addr) = start_server(ServerConfig {
        write_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    });
    load_items(&db, 4000);
    let mut raw = raw_handshake(&addr, true);

    let scan = Request::Query {
        text: "FOR x IN items FILTER x.n >= 0 RETURN x".into(),
        deadline_ms: None,
    };
    // Enough ~400KB responses to overrun both kernel socket buffers
    // many times over, so the writer genuinely blocks.
    let mut batch = Vec::new();
    for id in 1..=64u64 {
        frame::write_frame(&mut batch, &scan.encode_with_id(Some(id)), frame::MAX_FRAME_LEN)
            .unwrap();
    }
    raw.write_all(&batch).unwrap();
    // Never read. The server's writer must give up within
    // write_timeout once the kernel buffers are full.
    eventually("stalled-writer connection killed", || {
        server.metrics().connections_active.load(Ordering::Relaxed) == 0
    });

    // The server stays healthy for new connections.
    let mut probe = Client::connect(&addr).unwrap();
    probe.ping().unwrap();
    let stats = probe.admin_stats().unwrap();
    assert_eq!(stats.get_field("pipeline").get_field("responses_queued"), &Value::int(0));
    server.shutdown().unwrap();
}

#[test]
fn a_slowloris_mid_pipeline_is_cut_off_without_losing_finished_work() {
    // A client completes one pipelined request, then drips a partial
    // frame header and stalls. The mid-frame read deadline must cut the
    // connection off even though the pipeline was recently active.
    let (_db, server, addr) = start_server(ServerConfig {
        read_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    });
    let mut raw = raw_handshake(&addr, true);
    frame::write_frame(&mut raw, &Request::Ping.encode_with_id(Some(1)), frame::MAX_FRAME_LEN)
        .unwrap();
    let payload = frame::read_frame(&mut raw, frame::MAX_FRAME_LEN).unwrap();
    assert_eq!(Response::decode_with_id(&payload).unwrap(), (Some(1), Response::Pong));

    let started = Instant::now();
    for byte in &8u32.to_be_bytes()[..3] {
        raw.write_all(std::slice::from_ref(byte)).unwrap();
        std::thread::sleep(Duration::from_millis(50));
    }
    let payload = frame::read_frame(&mut raw, frame::MAX_FRAME_LEN).unwrap();
    let (_, resp) = Response::decode_with_id(&payload).unwrap();
    match resp {
        Response::Err { kind, message } => {
            assert_eq!(kind, "storage");
            assert!(message.contains("stalled"), "{message}");
        }
        other => panic!("expected a stall error, got {other:?}"),
    }
    let mut buf = [0u8; 1];
    assert_eq!(raw.read(&mut buf).unwrap(), 0, "server closes the stalled connection");
    assert!(started.elapsed() < Duration::from_secs(3));
    eventually("stalled connection retired", || {
        server.metrics().connections_active.load(Ordering::Relaxed) == 0
    });
    server.shutdown().unwrap();
}
