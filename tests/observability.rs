//! End-to-end query observability: EXPLAIN ANALYZE over the wire, the
//! slow-query log, and the expanded `ADMIN STATS` counters.
//!
//! The paper's position is that a multi-model engine must remain
//! *inspectable* — one engine, many models, still one place to ask
//! "what did my query actually do". These tests drive the whole stack:
//! client → wire protocol → server → traced executor → stats render.

use std::sync::Arc;
use std::time::Duration;

use mmdb::{Database, Value};
use mmdb_client::Client;
use mmdb_server::{Server, ServerConfig};

/// The EDBT'17 slide-27 recommendation query (see tests/paper_scenario.rs).
const RECOMMENDATION: &str = r#"
    FOR c IN customers
      FILTER c.credit_limit > 3000
      FOR friend IN 1..1 OUTBOUND CONCAT("persons/", c.id) knows
        LET order = DOC("orders", KV_GET("cart", friend._key))
        FILTER order != NULL
        FOR line IN order.orderlines
          RETURN line.product_no
"#;

/// The paper's running example, loaded through the embedded API.
fn paper_db() -> Database {
    let db = Database::in_memory();
    db.create_collection("customers").unwrap();
    for (id, name, limit) in [(1, "Mary", 5000), (2, "John", 3000), (3, "Anne", 2000)] {
        db.insert_json(
            "customers",
            &format!(r#"{{"_key":"{id}","id":{id},"name":"{name}","credit_limit":{limit}}}"#),
        )
        .unwrap();
    }
    let g = db.create_graph("social").unwrap();
    g.create_vertex_collection("persons").unwrap();
    g.create_edge_collection("knows").unwrap();
    for id in 1..=3 {
        g.add_vertex("persons", mmdb::from_json(&format!(r#"{{"_key":"{id}"}}"#)).unwrap())
            .unwrap();
    }
    g.add_edge("knows", "persons/1", "persons/2", mmdb::from_json("{}").unwrap()).unwrap();
    db.create_bucket("cart").unwrap();
    db.kv_put("cart", "2", Value::str("0c6df508")).unwrap();
    db.create_collection("orders").unwrap();
    db.insert_json(
        "orders",
        r#"{"_key":"0c6df508","orderlines":[
            {"product_no":"2724f","price":66},{"product_no":"3424g","price":40}]}"#,
    )
    .unwrap();
    db
}

fn start(config: ServerConfig) -> (Arc<Database>, Server, String) {
    let db = Arc::new(paper_db());
    let server = Server::start(Arc::clone(&db), config).unwrap();
    let addr = server.local_addr().to_string();
    (db, server, addr)
}

#[test]
fn explain_analyze_reports_rows_timings_and_access_paths() {
    let (db, server, addr) = start(ServerConfig::default());
    let mut client = Client::connect(&addr).unwrap();

    let report = client.explain_analyze(RECOMMENDATION).unwrap();
    // Every operator line carries actual row counts and a timing; the
    // customer scan reports its access path.
    assert!(report.contains("rows:"), "{report}");
    assert!(report.contains("time:"), "{report}");
    assert!(report.contains("full scan"), "{report}");
    assert!(report.contains("rows returned: 2"), "{report}");
    assert!(report.contains("Traverse"), "{report}");

    // After an index on the filtered field appears, the same query's
    // access path flips from a full collection scan to the named index.
    db.world().collection("customers").unwrap().create_persistent_index("credit_limit").unwrap();
    let report = client.explain_analyze(RECOMMENDATION).unwrap();
    assert!(report.contains("index 'credit_limit'"), "{report}");
    assert!(!report.contains("full scan (document-collection 'customers')"), "{report}");
    assert!(report.contains("rows returned: 2"), "{report}");

    // Plain EXPLAIN still answers and does not carry runtime numbers.
    let plan = client.explain(RECOMMENDATION).unwrap();
    assert!(!plan.contains("time:"), "{plan}");

    server.shutdown().unwrap();
}

#[test]
fn slow_query_log_records_queries_over_the_threshold() {
    // Threshold zero: every query is "slow", so the log fills.
    let config =
        ServerConfig { slow_query_threshold: Duration::ZERO, ..ServerConfig::default() };
    let (_db, server, addr) = start(config);
    let mut client = Client::connect(&addr).unwrap();

    let log = client.admin_slowlog().unwrap();
    assert_eq!(log, Value::Array(vec![]), "log starts empty");

    client.query(RECOMMENDATION).unwrap();
    client.query("FOR x IN no_such_source RETURN x").unwrap_err();
    // ^ errors must NOT land in the slow-query log, only completed
    //   executions do.
    let log = client.admin_slowlog().unwrap();
    let entries = log.as_array().unwrap();
    assert_eq!(entries.len(), 1, "{log:?}");
    let entry = &entries[0];
    assert_eq!(entry.get_field("kind"), &Value::str("mmql"));
    assert_eq!(entry.get_field("query"), &Value::str(RECOMMENDATION));
    assert_eq!(entry.get_field("rows"), &Value::int(2));
    assert!(entry.get_field("total_us").as_int().unwrap() >= 0);
    let ops = entry.get_field("ops").as_array().unwrap();
    assert!(!ops.is_empty(), "per-operator breakdown present");
    assert!(ops.iter().all(|op| op.get_field("elapsed_us").as_int().is_ok()));

    server.shutdown().unwrap();
}

#[test]
fn fast_queries_stay_out_of_the_slow_query_log() {
    // The default threshold (hundreds of ms) is far above these queries.
    let (_db, server, addr) = start(ServerConfig::default());
    let mut client = Client::connect(&addr).unwrap();
    for _ in 0..5 {
        client.query(RECOMMENDATION).unwrap();
    }
    let log = client.admin_slowlog().unwrap();
    assert_eq!(log, Value::Array(vec![]));
    server.shutdown().unwrap();
}

#[test]
fn admin_stats_reports_access_paths_and_model_ops() {
    let (db, server, addr) = start(ServerConfig::default());
    let mut client = Client::connect(&addr).unwrap();

    // Typed ops across three models.
    client
        .insert_document("orders", mmdb::from_json(r#"{"_key":"x1","total":1}"#).unwrap())
        .unwrap();
    client.kv_put("cart", "9", Value::str("x1")).unwrap();
    client.kv_get("cart", "9").unwrap();
    client.rdf_insert("mary", "knows", Value::str("john")).unwrap();

    // A query whose FOR runs as a full collection scan...
    client.query("FOR c IN customers FILTER c.credit_limit > 3000 RETURN c._key").unwrap();
    // ...and RDF lookups: one indexed (bound subject), one full scan.
    client.query("RETURN TRIPLES(\"mary\", NULL, NULL)").unwrap();
    client.query("RETURN TRIPLES(NULL, NULL, NULL)").unwrap();

    let stats = client.admin_stats().unwrap();
    let models = stats.get_field("model_ops");
    assert_eq!(models.get_field("document").as_int().unwrap(), 1);
    assert_eq!(models.get_field("kv").as_int().unwrap(), 2);
    assert_eq!(models.get_field("rdf").as_int().unwrap(), 1);
    assert_eq!(models.get_field("relational").as_int().unwrap(), 0);

    let paths = stats.get_field("access_paths");
    assert!(paths.get_field("full_scans").as_int().unwrap() >= 1, "{paths:?}");
    assert_eq!(paths.get_field("index_scans").as_int().unwrap(), 0);
    assert!(paths.get_field("rdf_indexed").as_int().unwrap() >= 1, "{paths:?}");
    assert!(paths.get_field("rdf_scans").as_int().unwrap() >= 1, "{paths:?}");

    // With an index, re-running the query bumps the index-scan counter.
    db.world().collection("customers").unwrap().create_persistent_index("credit_limit").unwrap();
    client.query("FOR c IN customers FILTER c.credit_limit > 3000 RETURN c._key").unwrap();
    let stats = client.admin_stats().unwrap();
    let paths = stats.get_field("access_paths");
    assert!(paths.get_field("index_scans").as_int().unwrap() >= 1, "{paths:?}");

    server.shutdown().unwrap();
}

#[test]
fn slowlog_ring_capacity_is_configurable_and_resettable() {
    let config = ServerConfig {
        slow_query_threshold: Duration::ZERO,
        slow_query_log_size: 2,
        ..ServerConfig::default()
    };
    let (_db, server, addr) = start(config);
    let mut client = Client::connect(&addr).unwrap();

    // Three slow queries into a 2-entry ring: the oldest is evicted.
    client.query("RETURN 1").unwrap();
    client.query("RETURN 2").unwrap();
    client.query("RETURN 3").unwrap();
    let log = client.admin_slowlog().unwrap();
    let entries = log.as_array().unwrap();
    assert_eq!(entries.len(), 2, "{log:?}");
    assert_eq!(entries[0].get_field("query"), &Value::str("RETURN 2"));
    assert_eq!(entries[1].get_field("query"), &Value::str("RETURN 3"));

    // SLOWLOG RESET reports how many entries it discarded...
    let reply = client.admin_slowlog_reset().unwrap();
    assert_eq!(reply.get_field("dropped"), &Value::int(2));
    assert_eq!(client.admin_slowlog().unwrap(), Value::Array(vec![]));

    // ...and recording continues afterwards.
    client.query("RETURN 4").unwrap();
    assert_eq!(client.admin_slowlog().unwrap().as_array().unwrap().len(), 1);

    server.shutdown().unwrap();
}

#[test]
fn slowlog_size_zero_disables_recording() {
    let config = ServerConfig {
        slow_query_threshold: Duration::ZERO,
        slow_query_log_size: 0,
        ..ServerConfig::default()
    };
    let (_db, server, addr) = start(config);
    let mut client = Client::connect(&addr).unwrap();

    client.query("RETURN 1").unwrap();
    assert_eq!(client.admin_slowlog().unwrap(), Value::Array(vec![]));
    assert_eq!(client.admin_slowlog_reset().unwrap().get_field("dropped"), &Value::int(0));

    server.shutdown().unwrap();
}
