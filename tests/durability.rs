//! Integration test: one WAL, all models — crash recovery of cross-model
//! transactions, torn-tail handling, and checkpoint behaviour.

use mmdb::{Database, Value};
use mmdb_txn::IsolationLevel;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("mmdb-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn committed_cross_model_transactions_survive_reopen() {
    let dir = tmpdir("commit");
    {
        let db = Database::open(&dir).unwrap();
        db.create_collection("orders").unwrap();
        db.create_bucket("cart").unwrap();
        db.transact(IsolationLevel::Snapshot, 3, |s| {
            s.insert_document(
                "orders",
                mmdb::from_json(r#"{"_key":"o1","total":66}"#).unwrap(),
            )?;
            s.kv_put("cart", "1", Value::str("o1"))
        })
        .unwrap();
        // A second, separate transaction.
        db.transact(IsolationLevel::Snapshot, 3, |s| {
            s.insert_document("orders", mmdb::from_json(r#"{"_key":"o2","total":5}"#).unwrap())
                .map(|_| ())
        })
        .unwrap();
    } // drop = crash (no clean shutdown step exists, which is the point)
    {
        let db = Database::open(&dir).unwrap();
        assert_eq!(
            db.get_document("orders", "o1").unwrap().unwrap().get_field("total"),
            &Value::int(66)
        );
        assert!(db.get_document("orders", "o2").unwrap().is_some());
        assert_eq!(db.kv().get("cart", "1").unwrap(), Some(Value::str("o1")));
        // The recovered state is queryable.
        let totals = db.query("FOR o IN orders SORT o.total RETURN o.total").unwrap();
        assert_eq!(totals, vec![Value::int(5), Value::int(66)]);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn uncommitted_transactions_do_not_survive() {
    let dir = tmpdir("abort");
    {
        let db = Database::open(&dir).unwrap();
        db.create_collection("orders").unwrap();
        let mut s = db.begin(IsolationLevel::Snapshot);
        s.insert_document("orders", mmdb::from_json(r#"{"_key":"ghost"}"#).unwrap()).unwrap();
        // Neither commit nor abort: the process "crashes" with the txn open.
        std::mem::forget(s);
    }
    {
        let db = Database::open(&dir).unwrap();
        // Nothing was committed, so recovery created no stores; DDL is the
        // application's job on open (see Session docs).
        db.create_collection("orders").unwrap();
        assert!(db.get_document("orders", "ghost").unwrap().is_none());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_tail_is_tolerated() {
    let dir = tmpdir("torn");
    {
        let db = Database::open(&dir).unwrap();
        db.create_collection("c").unwrap();
        db.insert_json("c", r#"{"_key":"good","v":1}"#).unwrap();
    }
    // Append garbage to simulate a torn final record.
    let wal_path = dir.join("mmdb.wal");
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(&wal_path).unwrap();
        f.write_all(&[0x55, 0x00, 0x00, 0x00, 0xDE, 0xAD, 0xBE]).unwrap();
    }
    {
        let db = Database::open(&dir).unwrap();
        assert!(db.get_document("c", "good").unwrap().is_some(), "prefix recovered");
        // Open truncated the corrupt tail, so new appends extend the valid
        // prefix and survive the *next* recovery too.
        db.insert_json("c", r#"{"_key":"after","v":2}"#).unwrap();
        assert!(db.get_document("c", "after").unwrap().is_some());
    }
    {
        let db = Database::open(&dir).unwrap();
        assert!(db.get_document("c", "good").unwrap().is_some());
        assert!(
            db.get_document("c", "after").unwrap().is_some(),
            "appends after a truncated torn tail must survive recovery"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graph_and_rdf_domains_recover() {
    let dir = tmpdir("graph-rdf");
    {
        let db = Database::open(&dir).unwrap();
        let g = db.create_graph("social").unwrap();
        g.create_vertex_collection("persons").unwrap();
        g.create_edge_collection("knows").unwrap();
        db.transact(IsolationLevel::Snapshot, 3, |s| {
            s.add_vertex("social", "persons", mmdb::from_json(r#"{"_key":"1","name":"Mary"}"#).unwrap())?;
            s.add_vertex("social", "persons", mmdb::from_json(r#"{"_key":"2","name":"John"}"#).unwrap())?;
            s.add_edge("social", "knows", "persons/1", "persons/2", mmdb::from_json("{}").unwrap())?;
            s.rdf_insert("mary", "likes", Value::str("toys"))
        })
        .unwrap();
    }
    {
        let db = Database::open(&dir).unwrap();
        // Graphs are schemaless: recovery recreated them from the WAL.
        let friends = db
            .query(r#"FOR v IN 1..1 OUTBOUND "persons/1" knows RETURN v.name"#)
            .unwrap();
        assert_eq!(friends, vec![Value::str("John")]);
        let likes = db
            .query(r#"FOR t IN TRIPLES("mary", "likes", NULL) RETURN t.o"#)
            .unwrap();
        assert_eq!(likes, vec![Value::str("toys")]);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn updates_and_deletes_recover_in_order() {
    let dir = tmpdir("order");
    {
        let db = Database::open(&dir).unwrap();
        db.create_collection("c").unwrap();
        db.create_bucket("kv").unwrap();
        db.insert_json("c", r#"{"_key":"k","v":1}"#).unwrap();
        db.transact(IsolationLevel::Snapshot, 3, |s| {
            s.update_document("c", "k", mmdb::from_json(r#"{"v":2}"#).unwrap())
        })
        .unwrap();
        db.kv_put("kv", "x", Value::int(1)).unwrap();
        db.transact(IsolationLevel::Snapshot, 3, |s| s.kv_delete("kv", "x")).unwrap();
        db.transact(IsolationLevel::Snapshot, 3, |s| {
            s.update_document("c", "k", mmdb::from_json(r#"{"v":3}"#).unwrap())
        })
        .unwrap();
    }
    {
        let db = Database::open(&dir).unwrap();
        assert_eq!(
            db.get_document("c", "k").unwrap().unwrap().get_field("v"),
            &Value::int(3),
            "last committed update wins"
        );
        assert_eq!(db.kv().get("kv", "x").unwrap(), None, "delete recovered");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
