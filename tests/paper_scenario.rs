//! Integration test: the tutorial's full running example through the
//! public `mmdb` API — every model, the recommendation query, both query
//! frontends, evolution and indexes, in one database.

use mmdb::substrate::relational::{ColumnDef, DataType, Schema};
use mmdb::{Database, Value};

fn paper_db() -> Database {
    let db = Database::in_memory();
    db.create_table(
        "customers",
        Schema::new(
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("name", DataType::Text),
                ColumnDef::new("credit_limit", DataType::Int),
            ],
            "id",
        )
        .unwrap(),
    )
    .unwrap();
    for (id, name, limit) in [(1, "Mary", 5000), (2, "John", 3000), (3, "Anne", 2000)] {
        db.insert_row(
            "customers",
            &mmdb::from_json(&format!(r#"{{"id":{id},"name":"{name}","credit_limit":{limit}}}"#))
                .unwrap(),
        )
        .unwrap();
    }
    let g = db.create_graph("social").unwrap();
    g.create_vertex_collection("persons").unwrap();
    g.create_edge_collection("knows").unwrap();
    for id in 1..=3 {
        g.add_vertex("persons", mmdb::from_json(&format!(r#"{{"_key":"{id}"}}"#)).unwrap())
            .unwrap();
    }
    g.add_edge("knows", "persons/1", "persons/2", mmdb::from_json("{}").unwrap()).unwrap();
    g.add_edge("knows", "persons/3", "persons/1", mmdb::from_json("{}").unwrap()).unwrap();
    db.create_bucket("cart").unwrap();
    db.kv_put("cart", "1", Value::str("34e5e759")).unwrap();
    db.kv_put("cart", "2", Value::str("0c6df508")).unwrap();
    db.create_collection("orders").unwrap();
    db.insert_json(
        "orders",
        r#"{"_key":"0c6df508","orderlines":[
            {"product_no":"2724f","product_name":"Toy","price":66},
            {"product_no":"3424g","product_name":"Book","price":40}]}"#,
    )
    .unwrap();
    db.insert_json(
        "orders",
        r#"{"_key":"34e5e759","orderlines":[{"product_no":"1111a","price":2}]}"#,
    )
    .unwrap();
    db
}

const RECOMMENDATION: &str = r#"
    FOR c IN customers
      FILTER c.credit_limit > 3000
      FOR friend IN 1..1 OUTBOUND CONCAT("persons/", c.id) knows
        LET order = DOC("orders", KV_GET("cart", friend._key))
        FILTER order != NULL
        FOR line IN order.orderlines
          RETURN line.product_no
"#;

#[test]
fn the_recommendation_query_returns_the_papers_answer() {
    let db = paper_db();
    let got = db.query(RECOMMENDATION).unwrap();
    assert_eq!(got, vec![Value::str("2724f"), Value::str("3424g")]);
}

#[test]
fn indexes_do_not_change_answers() {
    let db = paper_db();
    let before = db.query(RECOMMENDATION).unwrap();
    db.world().catalog.table("customers").unwrap().create_index("credit_limit").unwrap();
    let after = db.query(RECOMMENDATION).unwrap();
    assert_eq!(before, after);
    // EXPLAIN confirms the relational index is picked.
    let plan = db
        .explain("FOR c IN customers FILTER c.credit_limit > 3000 RETURN c")
        .unwrap();
    assert!(plan.contains("IndexScan"), "{plan}");
}

#[test]
fn sql_frontend_agrees_with_mmql() {
    let db = paper_db();
    let sql = db
        .query_sql("SELECT name FROM customers WHERE credit_limit >= 3000 ORDER BY name")
        .unwrap();
    let mmql = db
        .query("FOR c IN customers FILTER c.credit_limit >= 3000 SORT c.name RETURN c.name")
        .unwrap();
    assert_eq!(sql, mmql);
}

#[test]
fn evolution_preserves_answers_across_models() {
    let db = paper_db();
    // Evolve the relation into documents; the same filter over the new
    // model gives the same names.
    mmdb::core::evolution::table_to_collection(&db, "customers", "cust_docs").unwrap();
    let from_docs = db
        .query("FOR c IN cust_docs FILTER c.credit_limit > 3000 RETURN c.name")
        .unwrap();
    let from_table = db
        .query("FOR c IN customers FILTER c.credit_limit > 3000 RETURN c.name")
        .unwrap();
    assert_eq!(from_docs, from_table);
    // And into RDF.
    mmdb::core::evolution::table_to_rdf(&db, "customers").unwrap();
    let rdf = db
        .query(r#"FOR t IN TRIPLES(NULL, "credit_limit", NULL) FILTER t.o > 3000 RETURN t.s"#)
        .unwrap();
    assert_eq!(rdf, vec![Value::str("customers:1")]);
}

#[test]
fn cross_model_transaction_spans_the_whole_scenario() {
    let db = paper_db();
    db.transact(mmdb_txn::IsolationLevel::Snapshot, 3, |s| {
        // Anne places an order: document + cart + graph edge + credit.
        s.insert_document(
            "orders",
            mmdb::from_json(r#"{"_key":"new1","orderlines":[{"product_no":"2724f","price":66}],"total":66}"#)
                .unwrap(),
        )?;
        s.kv_put("cart", "3", Value::str("new1"))?;
        let mut anne = s.get_row("customers", &Value::int(3))?.unwrap();
        let cur = anne.get_field("credit_limit").as_int()?;
        anne.as_object_mut()?.insert("credit_limit", Value::int(cur - 66));
        s.update_row("customers", anne)
    })
    .unwrap();
    assert_eq!(db.kv().get("cart", "3").unwrap(), Some(Value::str("new1")));
    let anne_credit = db
        .query("FOR c IN customers FILTER c.id == 3 RETURN c.credit_limit")
        .unwrap();
    assert_eq!(anne_credit, vec![Value::int(2000 - 66)]);
    // The recommendation query now also sees Anne's friend's purchases
    // through Mary (credit 5000 > 3000 knows John; Anne knows Mary but
    // Anne's own credit is below threshold) — the original answer stands.
    let got = db.query(RECOMMENDATION).unwrap();
    assert_eq!(got, vec![Value::str("2724f"), Value::str("3424g")]);
}

#[test]
fn fulltext_and_xpath_round_out_the_models() {
    let db = paper_db();
    db.create_collection("reviews").unwrap();
    db.insert_json("reviews", r#"{"_key":"r1","product_no":"2724f","text":"a great toy"}"#)
        .unwrap();
    db.create_fulltext_index("rtext", "reviews", "text").unwrap();
    let hit = db
        .query(r#"FOR r IN FULLTEXT("rtext", "toy") RETURN r.product_no"#)
        .unwrap();
    assert_eq!(hit, vec![Value::str("2724f")]);
    db.register_xml("p", r#"<product no="2724f"><name>Toy</name></product>"#).unwrap();
    let name = db.query(r#"RETURN XPATH("p", "/product/name")[0]"#).unwrap();
    assert_eq!(name, vec![Value::str("Toy")]);
}
