//! Property-based integration tests: different access paths through the
//! engine must agree — index scans vs full scans, MMQL vs SQL, documents
//! in vs documents out.

use proptest::prelude::*;

use mmdb::{Database, Value};

fn arb_doc() -> impl Strategy<Value = (String, i64, String)> {
    ("[a-z]{1,8}", -1000i64..1000, "[a-c]{1}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random documents, random range predicate: indexed and unindexed
    /// evaluation agree.
    #[test]
    fn index_scan_equals_full_scan(
        docs in prop::collection::vec(arb_doc(), 1..60),
        lo in -1000i64..1000,
        width in 0i64..500,
    ) {
        let db = Database::in_memory();
        db.create_collection("d").unwrap();
        let coll = db.world().collection("d").unwrap();
        for (i, (name, price, cat)) in docs.iter().enumerate() {
            coll.insert(Value::object([
                ("_key", Value::str(format!("k{i}"))),
                ("name", Value::str(name.clone())),
                ("price", Value::int(*price)),
                ("cat", Value::str(cat.clone())),
            ])).unwrap();
        }
        let hi = lo + width;
        let q = format!(
            "FOR x IN d FILTER x.price >= {lo} && x.price <= {hi} SORT x._key RETURN x._key"
        );
        let unindexed = db.query(&q).unwrap();
        coll.create_persistent_index("price").unwrap();
        let indexed = db.query(&q).unwrap();
        prop_assert_eq!(unindexed, indexed);
    }

    /// The SQL frontend and MMQL agree on equivalent filters/sorts.
    #[test]
    fn sql_equals_mmql(
        rows in prop::collection::vec((0i64..500, -100i64..100), 1..40),
        threshold in -100i64..100,
    ) {
        let db = Database::in_memory();
        use mmdb::substrate::relational::{ColumnDef, DataType, Schema};
        db.create_table(
            "t",
            Schema::new(
                vec![ColumnDef::new("id", DataType::Int), ColumnDef::new("v", DataType::Int)],
                "id",
            ).unwrap(),
        ).unwrap();
        let table = db.world().catalog.table("t").unwrap();
        let mut seen = std::collections::HashSet::new();
        for (id, v) in &rows {
            if seen.insert(*id) {
                table.insert(vec![Value::int(*id), Value::int(*v)]).unwrap();
            }
        }
        let sql = db.query_sql(&format!("SELECT v FROM t WHERE v > {threshold} ORDER BY id")).unwrap();
        let mmql = db.query(&format!("FOR r IN t FILTER r.v > {threshold} SORT r.id RETURN r.v")).unwrap();
        prop_assert_eq!(sql, mmql);
    }

    /// Documents survive the full insert → WAL → commit-hook → query path.
    #[test]
    fn document_roundtrip_through_transactions(
        docs in prop::collection::vec(arb_doc(), 1..20),
    ) {
        let db = Database::in_memory();
        db.create_collection("c").unwrap();
        let mut keys = Vec::new();
        for (i, (name, price, _)) in docs.iter().enumerate() {
            let key = db.transact(mmdb_txn::IsolationLevel::Snapshot, 3, |s| {
                s.insert_document("c", Value::object([
                    ("_key", Value::str(format!("k{i}"))),
                    ("name", Value::str(name.clone())),
                    ("price", Value::int(*price)),
                ]))
            }).unwrap();
            keys.push(key);
        }
        for (i, (name, price, _)) in docs.iter().enumerate() {
            let doc = db.get_document("c", &keys[i]).unwrap().unwrap();
            prop_assert_eq!(doc.get_field("name"), &Value::str(name.clone()));
            prop_assert_eq!(doc.get_field("price"), &Value::int(*price));
        }
        let n = db.query("FOR x IN c RETURN 1").unwrap().len();
        prop_assert_eq!(n, docs.len());
    }

    /// COLLECT aggregates equal a reference computation.
    #[test]
    fn collect_sum_equals_reference(
        items in prop::collection::vec((0i64..5, -50i64..50), 1..50),
    ) {
        let db = Database::in_memory();
        db.create_collection("s").unwrap();
        let coll = db.world().collection("s").unwrap();
        let mut reference: std::collections::BTreeMap<i64, i64> = Default::default();
        for (grp, v) in &items {
            coll.insert(Value::object([("grp", Value::int(*grp)), ("v", Value::int(*v))])).unwrap();
            *reference.entry(*grp).or_default() += v;
        }
        let rows = db.query(
            "FOR x IN s COLLECT g = x.grp AGGREGATE total = SUM(x.v) SORT g RETURN [g, total]"
        ).unwrap();
        let got: Vec<(i64, i64)> = rows.iter().map(|r| {
            (r.get_index(0).as_int().unwrap(), r.get_index(1).as_int().unwrap())
        }).collect();
        let want: Vec<(i64, i64)> = reference.into_iter().collect();
        prop_assert_eq!(got, want);
    }
}
