//! Request-lifecycle torture suite. Built only with `--features
//! failpoints` (see the `[[test]]` entry in Cargo.toml); `scripts/ci.sh`
//! runs it.
//!
//! Tortures the three legs of request-lifecycle hardening end to end,
//! through the real client/server stack:
//!
//!   1. **Deadlines** — a query slowed by the `query.eval_tick` failpoint
//!      is aborted cooperatively once the client's deadline (or the
//!      server's own `max_query_time` cap) expires, surfacing as a
//!      retryable `deadline_exceeded` error on a connection that stays
//!      healthy.
//!   2. **Degraded read-only mode** — an injected fsync failure
//!      (`wal.sync=error`) latches the engine read-only: writes fail fast
//!      with `read_only`, reads keep answering, `ADMIN HEALTH` reports
//!      `degraded`, and only a reopen (restart after the disk is fixed)
//!      clears the latch.
//!   3. **Client retry** — a pool under a [`RetryPolicy`] completes a
//!      read workload across dropped connections and checkout pressure
//!      with zero caller-visible errors, counting its retries in
//!      [`PoolStats`].

use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use mmdb::substrate::txn::IsolationLevel;
use mmdb::{fault, Database, Value};
use mmdb_client::{Client, Pool, PoolConfig, RetryPolicy};
use mmdb_server::{Server, ServerConfig};

/// The paper's cross-model recommendation query (same as
/// `tests/paper_scenario.rs`); the oracle answer is `["2724f", "3424g"]`.
const RECOMMENDATION: &str = r#"
    FOR c IN customers
      FILTER c.credit_limit > 3000
      FOR friend IN 1..1 OUTBOUND CONCAT("persons/", c.id) knows
        LET order = DOC("orders", KV_GET("cart", friend._key))
        FILTER order != NULL
        FOR line IN order.orderlines
          RETURN line.product_no
"#;

/// Failpoints are process-global, so the tests in this binary serialize
/// (even the ones that arm nothing: a concurrently armed `delay` would
/// slow their queries).
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK
        .get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    fault::clear_all();
    guard
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmdb-lifecycle-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Seed the paper scenario (the same data `tests/crash_recovery.rs`
/// uses), enough for the recommendation query to do real cross-model
/// work: relational customers, a social graph, a kv cart, and document
/// orders.
fn seed(db: &Database) {
    use mmdb::substrate::relational::{ColumnDef, DataType, Schema};
    db.create_table(
        "customers",
        Schema::new(
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("name", DataType::Text),
                ColumnDef::new("credit_limit", DataType::Int),
            ],
            "id",
        )
        .unwrap(),
    )
    .unwrap();
    db.create_bucket("cart").unwrap();
    db.create_collection("orders").unwrap();
    let g = db.create_graph("social").unwrap();
    g.create_vertex_collection("persons").unwrap();
    g.create_edge_collection("knows").unwrap();
    for (id, name, limit) in [(1, "Mary", 5000), (2, "John", 3000), (3, "Anne", 2000)] {
        db.transact(IsolationLevel::Snapshot, 3, |s| {
            s.insert_row(
                "customers",
                mmdb::from_json(&format!(
                    r#"{{"id":{id},"name":"{name}","credit_limit":{limit}}}"#
                ))
                .unwrap(),
            )?;
            s.add_vertex(
                "social",
                "persons",
                mmdb::from_json(&format!(r#"{{"_key":"{id}"}}"#)).unwrap(),
            )
            .map(|_| ())
        })
        .unwrap();
    }
    db.transact(IsolationLevel::Snapshot, 3, |s| {
        s.add_edge("social", "knows", "persons/1", "persons/2", mmdb::from_json("{}").unwrap())
            .map(|_| ())
    })
    .unwrap();
    db.kv_put("cart", "2", Value::str("0c6df508")).unwrap();
    db.insert_json(
        "orders",
        r#"{"_key":"0c6df508","orderlines":[
            {"product_no":"2724f","product_name":"Toy","price":66},
            {"product_no":"3424g","product_name":"Book","price":40}]}"#,
    )
    .unwrap();
}

fn oracle() -> Vec<Value> {
    vec![Value::str("2724f"), Value::str("3424g")]
}

#[test]
fn a_client_deadline_aborts_a_slow_query_with_a_retryable_error() {
    let _serial = lock();
    let db = Arc::new(Database::in_memory());
    seed(&db);
    let server = Server::start(Arc::clone(&db), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr().to_string()).unwrap();

    // Sanity: with a generous deadline the query answers normally.
    assert_eq!(
        client.query_with_deadline(RECOMMENDATION, Duration::from_secs(10)).unwrap(),
        oracle()
    );

    // Slow every executor tick down; a 100ms deadline now expires after a
    // handful of iterations and the query aborts cooperatively.
    fault::set("query.eval_tick", "delay(25)").unwrap();
    let err = client
        .query_with_deadline(RECOMMENDATION, Duration::from_millis(100))
        .expect_err("the deadline must abort the slowed query");
    fault::clear_all();
    assert_eq!(err.kind(), "deadline_exceeded", "{err}");
    assert!(err.is_retryable(), "deadline_exceeded must invite a retry");

    // The error travelled the wire as a clean response: the same
    // connection serves the same query to completion once the delay is
    // gone.
    assert_eq!(client.query(RECOMMENDATION).unwrap(), oracle());
    server.shutdown().unwrap();
}

#[test]
fn the_server_cap_bounds_queries_that_carry_no_deadline() {
    let _serial = lock();
    let db = Arc::new(Database::in_memory());
    seed(&db);
    let server = Server::start(
        Arc::clone(&db),
        ServerConfig { max_query_time: Duration::from_millis(80), ..ServerConfig::default() },
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr().to_string()).unwrap();

    fault::set("query.eval_tick", "delay(25)").unwrap();
    // No client deadline at all: the server's own budget is the backstop.
    let err = client.query(RECOMMENDATION).expect_err("the server cap must fire");
    // A client deadline can only shorten the budget, never extend it.
    let err2 = client
        .query_with_deadline(RECOMMENDATION, Duration::from_secs(3600))
        .expect_err("a huge client deadline must not override the cap");
    fault::clear_all();
    assert_eq!(err.kind(), "deadline_exceeded", "{err}");
    assert_eq!(err2.kind(), "deadline_exceeded", "{err2}");
    server.shutdown().unwrap();
}

#[test]
fn an_fsync_failure_latches_degraded_read_only_mode_until_reopen() {
    let _serial = lock();
    let dir = fresh_dir("degraded");
    {
        let db = Arc::new(Database::open(&dir).unwrap());
        db.create_bucket("cart").unwrap();
        db.kv_put("cart", "committed", Value::int(1)).unwrap();
        let server = Server::start(Arc::clone(&db), ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.local_addr().to_string()).unwrap();
        assert_eq!(client.admin_health().unwrap().get_field("status"), &Value::str("ok"));

        // The write that hits the failing fsync reports the storage error
        // and latches the engine.
        fault::set("wal.sync", "error").unwrap();
        let err = client.kv_put("cart", "doomed", Value::int(2)).unwrap_err();
        assert_eq!(err.kind(), "storage", "{err}");
        fault::clear_all();

        // The latch outlives the fault: the disk may be "fine" again, but
        // the WAL tail's durability is unknowable, so writes stay refused.
        let err = client.kv_put("cart", "rejected", Value::int(3)).unwrap_err();
        assert_eq!(err.kind(), "read_only", "{err}");
        assert!(!err.is_retryable(), "read_only is not retryable on this node");

        // Reads keep serving the committed state...
        assert_eq!(client.kv_get("cart", "committed").unwrap(), Some(Value::int(1)));
        assert_eq!(
            client.query(r#"RETURN KV_GET("cart", "committed")"#).unwrap(),
            vec![Value::int(1)]
        );
        // ...and the health endpoint tells operators to drain writes.
        let health = client.admin_health().unwrap();
        assert_eq!(health.get_field("status"), &Value::str("degraded"));
        assert_ne!(health.get_field("reason"), &Value::Null, "reason must be reported");
        server.shutdown().unwrap();
    }

    // Reopen after the "disk is fixed": recovery replays the log and the
    // latch is gone. The doomed write resurfaces — its records reached the
    // WAL file before the failed fsync, which is exactly the ambiguity
    // (reported-failed but actually durable) that justifies latching
    // instead of letting the engine keep acknowledging writes.
    let db = Database::open(&dir).unwrap();
    assert!(!db.is_degraded(), "a clean reopen clears the latch");
    assert_eq!(db.kv().get("cart", "committed").unwrap(), Some(Value::int(1)));
    assert_eq!(db.kv().get("cart", "doomed").unwrap(), Some(Value::int(2)));
    db.kv_put("cart", "after", Value::int(4)).unwrap();
    assert_eq!(db.kv().get("cart", "after").unwrap(), Some(Value::int(4)));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_retrying_pool_rides_through_dropped_connections_without_caller_errors() {
    let _serial = lock();
    let db = Arc::new(Database::in_memory());
    seed(&db);
    // The server reaps idle connections aggressively, killing pooled
    // connections between checkouts — the "injected connection drop".
    let server = Server::start(
        Arc::clone(&db),
        ServerConfig { idle_timeout: Duration::from_millis(100), ..ServerConfig::default() },
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    // Health checks are disabled (threshold far above the test's
    // lifetime) so the dead connections reach the caller's operation and
    // the *retry* path — not the checkout health check — must absorb them.
    let pool = Pool::new(
        &addr,
        PoolConfig {
            max_size: 2,
            health_check_after: Duration::from_secs(3600),
            ..PoolConfig::default()
        },
    );
    let policy = RetryPolicy {
        max_retries: 8,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(80),
        budget: Duration::from_secs(10),
    };

    for round in 0..4 {
        let rows = pool
            .retry_read(&policy, |c| c.query(RECOMMENDATION))
            .unwrap_or_else(|e| panic!("round {round}: caller saw an error: {e}"));
        assert_eq!(rows, oracle(), "round {round}");
        // Let the server idle-reap the pooled connection before the next
        // read, so that read starts on a dead socket.
        std::thread::sleep(Duration::from_millis(250));
    }
    let stats = pool.stats();
    assert!(
        stats.retries_read >= 1,
        "the workload must actually have retried over dead connections: {stats:?}"
    );
    server.shutdown().unwrap();
}

#[test]
fn checkout_pressure_is_retried_not_surfaced() {
    let _serial = lock();
    let db = Arc::new(Database::in_memory());
    db.create_bucket("cart").unwrap();
    db.kv_put("cart", "k", Value::int(7)).unwrap();
    let server = Server::start(Arc::clone(&db), ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();

    // A one-connection pool whose only connection is checked out: `get`
    // times out with a retryable `busy`, and the retry loop wins once the
    // hog lets go.
    let pool = Pool::new(
        &addr,
        PoolConfig {
            max_size: 1,
            checkout_timeout: Duration::from_millis(50),
            ..PoolConfig::default()
        },
    );
    let hog = pool.get().unwrap();
    let release = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        drop(hog);
    });
    let policy = RetryPolicy {
        max_retries: 20,
        base_delay: Duration::from_millis(10),
        max_delay: Duration::from_millis(50),
        budget: Duration::from_secs(10),
    };
    let got = pool.retry_read(&policy, |c| c.kv_get("cart", "k")).unwrap();
    assert_eq!(got, Some(Value::int(7)));
    release.join().unwrap();
    let stats = pool.stats();
    assert!(stats.retries_connect >= 1, "checkout pressure must show up as retries: {stats:?}");
    server.shutdown().unwrap();
}
