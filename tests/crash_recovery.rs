//! Crash-recovery torture suite. Built only with `--features failpoints`
//! (see the `[[test]]` entry in Cargo.toml); `scripts/ci.sh` runs it.
//!
//! For every registered failpoint site the suite seeds the paper's
//! five-model scenario into a file-backed database, crashes the engine at
//! the site (an injected panic caught at the test boundary — the process
//! survives, the `Database` is dropped cold), reopens from disk, and
//! checks the recovery invariants:
//!
//!   1. committed transactions survive, and cross-model query answers —
//!      including the paper's recommendation query — are byte-identical
//!      to an uncrashed oracle run;
//!   2. the transaction in flight at the crash either vanishes entirely
//!      (crash before the durability point) or lands atomically across
//!      all models (crash at/after it) — never partially;
//!   3. relational DDL comes back from the WAL alone: nobody re-issues
//!      `create_table` before querying.
//!
//! Site coverage is enforced from the registry itself: the doomed-op
//! table panics on any site it does not know, so registering a new
//! failpoint without extending this suite fails the build's test run.

use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use mmdb::substrate::relational::{ColumnDef, DataType, Schema};
use mmdb::substrate::txn::IsolationLevel;
use mmdb::{fault, Database, Value};
use mmdb_client::Client;
use mmdb_server::{Server, ServerConfig};

/// The paper's cross-model recommendation query (same as
/// `tests/paper_scenario.rs`); the oracle answer is `["2724f", "3424g"]`.
const RECOMMENDATION: &str = r#"
    FOR c IN customers
      FILTER c.credit_limit > 3000
      FOR friend IN 1..1 OUTBOUND CONCAT("persons/", c.id) knows
        LET order = DOC("orders", KV_GET("cart", friend._key))
        FILTER order != NULL
        FOR line IN order.orderlines
          RETURN line.product_no
"#;

/// Failpoints are process-global, so the tests in this binary serialize.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK
        .get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    fault::clear_all();
    guard
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmdb-crash-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Run `f`, catching the injected panic; the default hook is swapped out
/// so the expected crash does not spray a backtrace over the test output.
fn catch_crash<R>(f: impl FnOnce() -> R) -> std::thread::Result<R> {
    let prev = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    let _ = panic::take_hook();
    panic::set_hook(prev);
    result
}

/// Every failpoint site the engine registers, in deterministic order.
fn all_sites() -> Vec<&'static str> {
    let mut sites: Vec<&'static str> = mmdb::substrate::storage::FAILPOINT_SITES
        .iter()
        .chain(mmdb::substrate::txn::FAILPOINT_SITES)
        .chain(mmdb::substrate::query::FAILPOINT_SITES)
        .copied()
        .collect();
    sites.sort_unstable();
    sites
}

/// Seed the paper scenario through WAL-logged paths only: relational rows,
/// graph vertices/edges and RDF facts go through sessions (the direct
/// `Graph` handles in `paper_scenario.rs` bypass MVCC and would not
/// survive a reopen).
fn seed(db: &Database) {
    db.create_table(
        "customers",
        Schema::new(
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("name", DataType::Text),
                ColumnDef::new("credit_limit", DataType::Int),
            ],
            "id",
        )
        .unwrap(),
    )
    .unwrap();
    db.create_bucket("cart").unwrap();
    db.create_collection("orders").unwrap();
    let g = db.create_graph("social").unwrap();
    g.create_vertex_collection("persons").unwrap();
    g.create_edge_collection("knows").unwrap();
    // One committed cross-model transaction per customer, so recovery
    // replays genuinely mixed write sets.
    for (id, name, limit) in [(1, "Mary", 5000), (2, "John", 3000), (3, "Anne", 2000)] {
        db.transact(IsolationLevel::Snapshot, 3, |s| {
            s.insert_row(
                "customers",
                mmdb::from_json(&format!(
                    r#"{{"id":{id},"name":"{name}","credit_limit":{limit}}}"#
                ))
                .unwrap(),
            )?;
            s.add_vertex(
                "social",
                "persons",
                mmdb::from_json(&format!(r#"{{"_key":"{id}"}}"#)).unwrap(),
            )?;
            s.rdf_insert(&format!("customers:{id}"), "credit_limit", Value::int(limit))
        })
        .unwrap();
    }
    db.transact(IsolationLevel::Snapshot, 3, |s| {
        s.add_edge("social", "knows", "persons/1", "persons/2", mmdb::from_json("{}").unwrap())?;
        s.add_edge("social", "knows", "persons/3", "persons/1", mmdb::from_json("{}").unwrap())
            .map(|_| ())
    })
    .unwrap();
    db.kv_put("cart", "1", Value::str("34e5e759")).unwrap();
    db.kv_put("cart", "2", Value::str("0c6df508")).unwrap();
    db.insert_json(
        "orders",
        r#"{"_key":"0c6df508","orderlines":[
            {"product_no":"2724f","product_name":"Toy","price":66},
            {"product_no":"3424g","product_name":"Book","price":40}]}"#,
    )
    .unwrap();
    db.insert_json(
        "orders",
        r#"{"_key":"34e5e759","orderlines":[{"product_no":"1111a","price":2}]}"#,
    )
    .unwrap();
}

/// Cross-model answers over the committed state, serialized to JSON so
/// oracle comparisons are byte-identical, not merely structurally equal.
/// Deliberately blind to the doomed markers (separate collection/bucket,
/// customer id 99) so the oracle comparison holds whether or not the
/// in-flight transaction survived.
fn probes(db: &Database) -> String {
    let mut out = vec![
        Value::Array(db.query(RECOMMENDATION).unwrap()),
        Value::Array(
            db.query_sql("SELECT id, name, credit_limit FROM customers WHERE id <= 3 ORDER BY id")
                .unwrap(),
        ),
        Value::Array(db.query("FOR o IN orders SORT o._key RETURN o").unwrap()),
        Value::Array(
            db.query(r#"FOR p IN 1..1 OUTBOUND "persons/3" knows RETURN p._key"#).unwrap(),
        ),
        Value::Array(
            db.query(r#"FOR t IN TRIPLES(NULL, "credit_limit", NULL) SORT t.s RETURN [t.s, t.o]"#)
                .unwrap(),
        ),
    ];
    for key in ["1", "2"] {
        out.push(db.kv().get("cart", key).unwrap().unwrap_or(Value::Null));
    }
    mmdb::to_json(&Value::Array(out))
}

/// The operation expected to trip each site. The catch-all arm makes
/// unknown sites a hard failure: a new failpoint must be mapped here.
fn doomed_op(db: &Database, site: &str) -> mmdb::Result<()> {
    match site {
        // Commit-path sites: one cross-model transaction touching a
        // document, a key/value pair and a relational row. Its marks live
        // in stores the probes never read. The `txn.group_commit.*` sites
        // fire on the sequencing leader, which for a lone committer is
        // this same thread.
        "wal.append"
        | "wal.sync"
        | "txn.commit.before_wal"
        | "txn.commit.after_wal"
        | "txn.group_commit.enqueue"
        | "txn.group_commit.before_sync"
        | "txn.group_commit.after_sync" => db
            .transact(IsolationLevel::Snapshot, 0, |s| {
                s.insert_document("doomed", mmdb::from_json(r#"{"_key":"d1","x":1}"#).unwrap())?;
                s.kv_put("scratch", "d", Value::int(1))?;
                s.insert_row(
                    "customers",
                    mmdb::from_json(r#"{"id":99,"name":"Doomed","credit_limit":1}"#).unwrap(),
                )
            })
            .map(|_| ()),
        // Page-path sites: flushing the buffer pool writes every dirty
        // relational page through `disk.write_page`.
        "disk.write_page" | "buffer.flush" => db.world().catalog.pool().flush_all(),
        // LSM sites: compaction first flushes the memtable, then merges.
        "lsm.flush" | "lsm.compact" => db.kv().compact("cart"),
        // Query-path site: every executor loop iteration ticks it, so any
        // query crosses it many times. Queries write nothing, so a crash
        // here must leave no marks at all.
        "query.eval_tick" => db.query(RECOMMENDATION).map(|_| ()),
        // Checkpoint-path sites: a manual checkpoint quiesces commits,
        // snapshots live state, appends the marker, truncates the log.
        // Checkpoints write no logical state, so whichever step crashes,
        // reopen must land on the oracle. The deeper per-step assertions
        // (snapshot presence, WAL base) live in tests/checkpoint.rs.
        s if s.starts_with("ckpt.") => db.checkpoint().map(|_| ()),
        other => panic!(
            "failpoint site '{other}' has no doomed operation in the torture harness — \
             a new site was registered without extending tests/crash_recovery.rs"
        ),
    }
}

/// Presence of the doomed transaction's three marks (document, kv, row).
/// Missing containers count as absent: the doomed collection and bucket
/// only exist if the doomed transaction replayed.
fn doomed_marks(db: &Database) -> (bool, bool, bool) {
    let doc = matches!(db.get_document("doomed", "d1"), Ok(Some(_)));
    let kv = matches!(db.kv().get("scratch", "d"), Ok(Some(_)));
    let rel = db
        .query("FOR c IN customers FILTER c.id == 99 RETURN c.id")
        .map(|rows| !rows.is_empty())
        .unwrap_or(false);
    (doc, kv, rel)
}

#[test]
fn every_site_crash_recovers_to_the_oracle() {
    let _serial = lock();
    let oracle_dir = fresh_dir("oracle");
    let oracle = {
        let db = Database::open(&oracle_dir).unwrap();
        seed(&db);
        probes(&db)
    };
    for site in all_sites() {
        fault::clear_all();
        let dir = fresh_dir(&format!("site-{}", site.replace('.', "-")));
        let db = Database::open(&dir).unwrap();
        seed(&db);

        let hits_before = fault::hits(site);
        fault::set(site, "panic").unwrap();
        let crashed = catch_crash(|| doomed_op(&db, site));
        assert!(crashed.is_err(), "site {site}: the armed operation must crash");
        assert!(fault::hits(site) > hits_before, "site {site}: failpoint never fired");
        fault::clear_all();
        drop(db);

        let db = Database::open(&dir).unwrap();
        assert_eq!(probes(&db), oracle, "site {site}: committed state diverged after recovery");

        let (doc, kv, rel) = doomed_marks(&db);
        assert!(
            doc == kv && kv == rel,
            "site {site}: in-flight transaction recovered non-atomically \
             (doc={doc}, kv={kv}, rel={rel})"
        );
        match site {
            // Crash before the durability point: no trace.
            "txn.commit.before_wal" | "txn.group_commit.enqueue" | "wal.append" => {
                assert!(!doc, "site {site}: uncommitted transaction resurfaced")
            }
            // Crash at/after it: the records reached the log file (for
            // `wal.sync` and `txn.group_commit.before_sync`, unsynced but
            // readable on the same machine), so recovery replays the
            // transaction in full.
            "txn.commit.after_wal"
            | "txn.group_commit.before_sync"
            | "txn.group_commit.after_sync"
            | "wal.sync" => {
                assert!(doc, "site {site}: durable transaction lost")
            }
            // Page/LSM maintenance writes no new logical state.
            _ => assert!(!doc, "site {site}: phantom transaction appeared"),
        }

        // The recovered engine accepts new writes.
        db.kv_put("cart", "post-recovery", Value::str(site)).unwrap();
        assert_eq!(db.kv().get("cart", "post-recovery").unwrap(), Some(Value::str(site)));
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&oracle_dir);
}

#[test]
fn error_injection_fails_cleanly_with_no_partial_state() {
    let _serial = lock();
    let dir = fresh_dir("error-mode");
    let db = Database::open(&dir).unwrap();
    seed(&db);
    let baseline = probes(&db);
    for site in all_sites() {
        match site {
            // Crash-only sites: they sit past the durability point, where
            // returning an error would disown an already-durable commit.
            "txn.commit.after_wal" | "txn.group_commit.after_sync" => continue,
            // An error between the batch append and its fsync is the same
            // condition as a failed fsync: the appended records' durability
            // is unknowable, so the store latches degraded rather than
            // aborting cleanly. Exercised in tests/group_commit.rs.
            "txn.group_commit.before_sync" => continue,
            // Unit site (`eval_unit`): `error` degrades to off by design —
            // cancellation errors come from the deadline token, tortured
            // in tests/lifecycle_torture.rs.
            "query.eval_tick" => continue,
            // An fsync failure is not a clean abort: it latches the engine
            // into degraded read-only mode. Exercised separately below (and
            // end to end in tests/lifecycle_torture.rs).
            "wal.sync" => continue,
            _ => {}
        }
        let hits_before = fault::hits(site);
        fault::set(site, "error").unwrap();
        let err =
            doomed_op(&db, site).expect_err(&format!("site {site}: error injection must surface"));
        fault::clear_all();
        assert!(fault::hits(site) > hits_before, "site {site}: failpoint never fired");
        assert_eq!(err.kind(), "storage", "site {site}: unexpected error kind");
        assert_eq!(probes(&db), baseline, "site {site}: a failed operation leaked partial state");
        let (doc, kv, rel) = doomed_marks(&db);
        assert!(!doc && !kv && !rel, "site {site}: aborted transaction left marks");
    }
    // The engine keeps accepting work after every injected failure.
    db.kv_put("cart", "after-errors", Value::int(1)).unwrap();
    assert_eq!(db.kv().get("cart", "after-errors").unwrap(), Some(Value::int(1)));

    // `wal.sync` last: a failed fsync leaves the WAL tail's durability
    // unknowable, so instead of a clean abort the engine aborts *and*
    // latches degraded read-only mode. Reads keep answering; writes are
    // refused fast with a non-retryable `read_only` error.
    let hits_before = fault::hits("wal.sync");
    fault::set("wal.sync", "error").unwrap();
    let err = doomed_op(&db, "wal.sync").expect_err("fsync error injection must surface");
    fault::clear_all();
    assert!(fault::hits("wal.sync") > hits_before, "wal.sync failpoint never fired");
    assert_eq!(err.kind(), "storage", "the failing commit reports the storage error");
    assert_eq!(probes(&db), baseline, "a failed fsync leaked partial state");
    let (doc, kv, rel) = doomed_marks(&db);
    assert!(!doc && !kv && !rel, "aborted transaction left marks");
    assert!(db.is_degraded(), "fsync failure must latch degraded mode");
    let err = db.kv_put("cart", "rejected", Value::int(1)).unwrap_err();
    assert_eq!(err.kind(), "read_only", "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_append_truncates_to_the_committed_prefix() {
    let _serial = lock();
    let dir = fresh_dir("torn");
    {
        let db = Database::open(&dir).unwrap();
        seed(&db);
        // Tear the doomed commit's second record: Begin goes through
        // whole, the first data write stops mid-frame. (`from_hit` counts
        // cumulative evaluations, so arm relative to the current count.)
        let spec = format!("{}:short", fault::hits("wal.append") + 2);
        fault::set("wal.append", &spec).unwrap();
        let err = doomed_op(&db, "wal.append").unwrap_err();
        assert!(err.to_string().contains("torn write"), "{err}");
        fault::clear_all();
    }
    let oracle_dir = fresh_dir("torn-oracle");
    let oracle_db = Database::open(&oracle_dir).unwrap();
    seed(&oracle_db);

    // Reopen detects the torn tail, truncates it, and the committed
    // prefix matches the uncrashed oracle exactly.
    let db = Database::open(&dir).unwrap();
    assert_eq!(probes(&db), probes(&oracle_db));
    let (doc, kv, rel) = doomed_marks(&db);
    assert!(!doc && !kv && !rel, "torn transaction must vanish");

    // New commits extend the truncated log (they don't hide behind
    // garbage) and survive another reopen.
    db.kv_put("cart", "3", Value::str("later")).unwrap();
    drop(db);
    let db = Database::open(&dir).unwrap();
    assert_eq!(db.kv().get("cart", "3").unwrap(), Some(Value::str("later")));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&oracle_dir);
}

#[test]
fn delayed_fsync_stalls_commit_but_loses_nothing() {
    let _serial = lock();
    let dir = fresh_dir("delay");
    let db = Database::open(&dir).unwrap();
    db.create_bucket("cart").unwrap();
    fault::set("wal.sync", "delay(80)").unwrap();
    let start = Instant::now();
    db.kv_put("cart", "slow", Value::int(1)).unwrap();
    let elapsed = start.elapsed();
    fault::clear_all();
    assert!(elapsed >= Duration::from_millis(80), "fsync was not delayed: {elapsed:?}");
    drop(db);
    let db = Database::open(&dir).unwrap();
    assert_eq!(db.kv().get("cart", "slow").unwrap(), Some(Value::int(1)));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ddl_survives_a_crash_without_recreating_tables() {
    let _serial = lock();
    let dir = fresh_dir("ddl");
    {
        let db = Database::open(&dir).unwrap();
        db.create_table(
            "customers",
            Schema::new(
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("name", DataType::Text).not_null(),
                ],
                "id",
            )
            .unwrap(),
        )
        .unwrap();
        db.insert_row("customers", &mmdb::from_json(r#"{"id":1,"name":"Mary"}"#).unwrap())
            .unwrap();
        // Crash while creating a second table, just past the durability
        // point: the DDL record is in the log, the catalog never saw it.
        fault::set("txn.commit.after_wal", "panic").unwrap();
        let crashed = catch_crash(|| {
            db.create_table(
                "audit",
                Schema::new(vec![ColumnDef::new("id", DataType::Int)], "id").unwrap(),
            )
        });
        assert!(crashed.is_err());
        fault::clear_all();
    }

    // No create_table calls from here on: both tables come back from the
    // WAL alone — schema, rows and constraints.
    let db = Database::open(&dir).unwrap();
    assert_eq!(
        db.query_sql("SELECT name FROM customers ORDER BY id").unwrap(),
        vec![Value::str("Mary")]
    );
    db.insert_row("audit", &mmdb::from_json(r#"{"id":7}"#).unwrap()).unwrap();
    assert_eq!(db.query_sql("SELECT id FROM audit").unwrap(), vec![Value::int(7)]);
    // The recovered schema still validates (NOT NULL intact) ...
    assert!(db.insert_row("customers", &mmdb::from_json(r#"{"id":2}"#).unwrap()).is_err());
    // ... and the catalog knows both tables exist.
    let dup = db.create_table(
        "audit",
        Schema::new(vec![ColumnDef::new("id", DataType::Int)], "id").unwrap(),
    );
    assert!(dup.is_err(), "duplicate DDL must be rejected after recovery");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn the_workload_exercises_every_registered_site() {
    let _serial = lock();
    fault::reset();
    let dir = fresh_dir("coverage");
    let db = Database::open(&dir).unwrap();
    seed(&db);
    let _ = probes(&db);
    db.world().catalog.pool().flush_all().unwrap();
    db.kv().compact("cart").unwrap();
    db.checkpoint().unwrap();
    drop(db);

    let seen = fault::seen_sites();
    let registered = all_sites();
    for site in &registered {
        assert!(
            seen.iter().any(|s| s == site),
            "registered site '{site}' was never evaluated by the torture workload"
        );
    }
    for site in &seen {
        assert!(
            registered.contains(&site.as_str()),
            "site '{site}' fired but is not in any FAILPOINT_SITES roster — \
             add it so the torture suite covers it"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn server_surfaces_injected_commit_failure_as_a_clean_error() {
    let _serial = lock();
    let db = Arc::new(Database::in_memory());
    db.create_bucket("cart").unwrap();
    let server = Server::start(Arc::clone(&db), ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    client.begin(false).unwrap();
    client.kv_put("cart", "k", Value::int(1)).unwrap();
    fault::set("txn.commit.before_wal", "error").unwrap();
    // The commit must come back as an error response — no hang, no
    // dropped connection — and the server-side transaction is aborted.
    let err = client.commit().unwrap_err();
    fault::clear_all();
    assert_eq!(err.kind(), "storage", "{err}");

    client.ping().unwrap();
    assert_eq!(db.kv().get("cart", "k").unwrap(), None, "aborted write must not land");
    let (_, aborts) = db.mvcc().stats();
    assert!(aborts >= 1, "server must abort the failed transaction");

    // The same connection can run a fresh transaction to completion.
    client.begin(false).unwrap();
    client.kv_put("cart", "k", Value::int(2)).unwrap();
    client.commit().unwrap();
    assert_eq!(db.kv().get("cart", "k").unwrap(), Some(Value::int(2)));
    server.shutdown().unwrap();
}
