//! Checkpoint torture suite. Built only with `--features failpoints`
//! (see the `[[test]]` entry in Cargo.toml); `scripts/ci.sh` runs it.
//!
//! A checkpoint is pure maintenance: it snapshots the live state at a
//! quiesced LSN, appends a marker, truncates the WAL prefix, and
//! vacuums dead MVCC versions — it must never change what a reopen
//! recovers. This suite proves that by crashing the engine at every
//! `ckpt.*` failpoint site mid-checkpoint and asserting the reopened
//! database answers the five-model probes byte-identically to an oracle
//! that never checkpointed at all. It also proves the operational
//! claims: the WAL file measurably shrinks under a multi-writer
//! workload, a replica whose resume LSN predates the truncation horizon
//! bootstraps from a snapshot and converges byte-for-byte, and the
//! size-triggered server loop checkpoints without being asked.

use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use mmdb::substrate::relational::{ColumnDef, DataType, Schema};
use mmdb::substrate::repl::{ReplicaOptions, ReplicaRunner};
use mmdb::substrate::txn::IsolationLevel;
use mmdb::{fault, Database, Value};
use mmdb_client::{Client, ClientConfig};
use mmdb_server::{Server, ServerConfig};

/// The paper's cross-model recommendation query (same as
/// `tests/crash_recovery.rs`); the oracle answer is `["2724f", "3424g"]`.
const RECOMMENDATION: &str = r#"
    FOR c IN customers
      FILTER c.credit_limit > 3000
      FOR friend IN 1..1 OUTBOUND CONCAT("persons/", c.id) knows
        LET order = DOC("orders", KV_GET("cart", friend._key))
        FILTER order != NULL
        FOR line IN order.orderlines
          RETURN line.product_no
"#;

/// Failpoints are process-global, so the tests in this binary serialize.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK
        .get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    fault::clear_all();
    guard
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmdb-ckpt-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Run `f`, catching the injected panic; the default hook is swapped out
/// so the expected crash does not spray a backtrace over the test output.
fn catch_crash<R>(f: impl FnOnce() -> R) -> std::thread::Result<R> {
    let prev = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    let _ = panic::take_hook();
    panic::set_hook(prev);
    result
}

/// The checkpoint-path failpoint sites, straight from the registry.
fn ckpt_sites() -> Vec<&'static str> {
    let mut sites: Vec<&'static str> = mmdb::substrate::storage::FAILPOINT_SITES
        .iter()
        .copied()
        .filter(|s| s.starts_with("ckpt."))
        .collect();
    sites.sort_unstable();
    assert_eq!(sites.len(), 4, "expected the four checkpoint failpoint sites: {sites:?}");
    sites
}

/// Seed the paper scenario through WAL-logged paths only (same data as
/// `tests/crash_recovery.rs`, so the probes answer identically).
fn seed(db: &Database) {
    db.create_table(
        "customers",
        Schema::new(
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("name", DataType::Text),
                ColumnDef::new("credit_limit", DataType::Int),
            ],
            "id",
        )
        .unwrap(),
    )
    .unwrap();
    db.create_bucket("cart").unwrap();
    db.create_collection("orders").unwrap();
    let g = db.create_graph("social").unwrap();
    g.create_vertex_collection("persons").unwrap();
    g.create_edge_collection("knows").unwrap();
    for (id, name, limit) in [(1, "Mary", 5000), (2, "John", 3000), (3, "Anne", 2000)] {
        db.transact(IsolationLevel::Snapshot, 3, |s| {
            s.insert_row(
                "customers",
                mmdb::from_json(&format!(
                    r#"{{"id":{id},"name":"{name}","credit_limit":{limit}}}"#
                ))
                .unwrap(),
            )?;
            s.add_vertex(
                "social",
                "persons",
                mmdb::from_json(&format!(r#"{{"_key":"{id}"}}"#)).unwrap(),
            )?;
            s.rdf_insert(&format!("customers:{id}"), "credit_limit", Value::int(limit))
        })
        .unwrap();
    }
    db.transact(IsolationLevel::Snapshot, 3, |s| {
        s.add_edge("social", "knows", "persons/1", "persons/2", mmdb::from_json("{}").unwrap())?;
        s.add_edge("social", "knows", "persons/3", "persons/1", mmdb::from_json("{}").unwrap())
            .map(|_| ())
    })
    .unwrap();
    db.kv_put("cart", "1", Value::str("34e5e759")).unwrap();
    db.kv_put("cart", "2", Value::str("0c6df508")).unwrap();
    db.insert_json(
        "orders",
        r#"{"_key":"0c6df508","orderlines":[
            {"product_no":"2724f","product_name":"Toy","price":66},
            {"product_no":"3424g","product_name":"Book","price":40}]}"#,
    )
    .unwrap();
    db.insert_json(
        "orders",
        r#"{"_key":"34e5e759","orderlines":[{"product_no":"1111a","price":2}]}"#,
    )
    .unwrap();
}

/// Cross-model answers over the committed state, serialized to JSON so
/// oracle comparisons are byte-identical, not merely structurally equal.
fn probes(db: &Database) -> String {
    let mut out = vec![
        Value::Array(db.query(RECOMMENDATION).unwrap()),
        Value::Array(
            db.query_sql("SELECT id, name, credit_limit FROM customers WHERE id <= 3 ORDER BY id")
                .unwrap(),
        ),
        Value::Array(db.query("FOR o IN orders SORT o._key RETURN o").unwrap()),
        Value::Array(
            db.query(r#"FOR p IN 1..1 OUTBOUND "persons/3" knows RETURN p._key"#).unwrap(),
        ),
        Value::Array(
            db.query(r#"FOR t IN TRIPLES(NULL, "credit_limit", NULL) SORT t.s RETURN [t.s, t.o]"#)
                .unwrap(),
        ),
    ];
    for key in ["1", "2"] {
        out.push(db.kv().get("cart", key).unwrap().unwrap_or(Value::Null));
    }
    mmdb::to_json(&Value::Array(out))
}

#[test]
fn crash_at_every_ckpt_site_reopens_byte_identical_to_the_oracle() {
    let _serial = lock();
    // The oracle never checkpoints: its probe answers are what recovery
    // must reproduce no matter where the checkpoint died.
    let oracle_dir = fresh_dir("oracle");
    let oracle = {
        let db = Database::open(&oracle_dir).unwrap();
        seed(&db);
        probes(&db)
    };
    for site in ckpt_sites() {
        fault::clear_all();
        let dir = fresh_dir(&format!("site-{}", site.replace('.', "-")));
        let db = Database::open(&dir).unwrap();
        seed(&db);

        let hits_before = fault::hits(site);
        fault::set(site, "panic").unwrap();
        let crashed = catch_crash(|| db.checkpoint());
        assert!(crashed.is_err(), "site {site}: the armed checkpoint must crash");
        assert!(fault::hits(site) > hits_before, "site {site}: failpoint never fired");
        fault::clear_all();
        drop(db);

        // What survived on disk differs per site — no snapshot at all,
        // a stale tmp, a published snapshot without its marker, or a
        // marker without the truncation — but reopen must not care.
        let db = Database::open(&dir).unwrap();
        assert_eq!(probes(&db), oracle, "site {site}: state diverged after recovery");
        let _ = std::fs::remove_file(dir.join("mmdb.snapshot.tmp"));

        // The recovered engine accepts new writes, a full checkpoint now
        // succeeds, and the state still matches after yet another reopen.
        db.kv_put("cart", "post-crash", Value::str(site)).unwrap();
        let summary = db.checkpoint().unwrap();
        assert!(summary.wal_bytes_reclaimed > 0, "site {site}: checkpoint reclaimed nothing");
        drop(db);
        let db = Database::open(&dir).unwrap();
        assert_eq!(probes(&db), oracle, "site {site}: state diverged after the checkpoint");
        assert_eq!(db.kv().get("cart", "post-crash").unwrap(), Some(Value::str(site)));
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&oracle_dir);
}

#[test]
fn checkpoint_shrinks_the_wal_under_multi_writer_load() {
    let _serial = lock();
    let dir = fresh_dir("shrink");
    let db = Arc::new(Database::open(&dir).unwrap());
    db.create_bucket("cart").unwrap();

    // Sustained multi-writer load: four threads, fifty commits each, all
    // through group commit onto the one shared log.
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for i in 0..50 {
                    db.kv_put("cart", &format!("w{t}-{i}"), Value::int(i)).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let wal_path = dir.join("mmdb.wal");
    let before = std::fs::metadata(&wal_path).unwrap().len();
    let summary = db.checkpoint().unwrap();
    let after = std::fs::metadata(&wal_path).unwrap().len();
    assert!(
        after < before / 2,
        "checkpoint did not measurably shrink the WAL file: {before} -> {after} bytes"
    );
    assert!(summary.wal_bytes_reclaimed > 0);
    assert_eq!(summary.entries, 200, "one live snapshot entry per key");

    // Writers keep going against the truncated log, and everything —
    // snapshot state and post-checkpoint commits — survives a reopen.
    db.kv_put("cart", "after", Value::int(1)).unwrap();
    drop(db);
    let db = Database::open(&dir).unwrap();
    assert_eq!(db.kv().get("cart", "w3-49").unwrap(), Some(Value::int(49)));
    assert_eq!(db.kv().get("cart", "after").unwrap(), Some(Value::int(1)));
    let _ = std::fs::remove_dir_all(&dir);
}

fn server_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        poll_interval: Duration::from_millis(5),
        ..ServerConfig::default()
    }
}

/// Spin until `cond` holds; panics with `what` after 15s.
fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(15);
    // lint: allow(tick, test helper poll loop with a hard 15s deadline)
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn replica_below_the_horizon_bootstraps_from_a_snapshot_and_converges() {
    let _serial = lock();
    let dir = fresh_dir("bootstrap");
    let db = Arc::new(Database::open(&dir).unwrap());
    let server = Server::start(Arc::clone(&db), server_config()).unwrap();
    let addr = server.local_addr().to_string();

    // Seed, then checkpoint: the whole seed prefix vanishes below the
    // truncation horizon, so a replica joining from LSN 0 cannot be fed
    // from the log at all — only the snapshot path can serve it.
    seed(&db);
    let summary = db.checkpoint().unwrap();
    assert!(summary.snapshot_lsn > 0);
    assert_eq!(db.wal().unwrap().truncated_lsn(), summary.snapshot_lsn);

    let replica_db = Arc::new(Database::in_memory());
    let opts = ReplicaOptions {
        reconnect_delay: Duration::from_millis(25),
        client: ClientConfig {
            read_timeout: Some(Duration::from_secs(2)),
            ..ClientConfig::default()
        },
    };
    let runner = ReplicaRunner::start(Arc::clone(&replica_db), addr.clone(), opts).unwrap();
    let tail = db.wal().unwrap().tail_lsn();
    wait_until("snapshot bootstrap", || {
        runner.status().is_connected() && runner.status().applied_lsn() >= tail
    });
    assert_eq!(probes(&replica_db), probes(&db), "bootstrapped replica diverged");

    // The stream seamlessly continues past the bootstrap: a live commit
    // on the primary reaches the replica through the ordinary tail.
    db.kv_put("cart", "live", Value::str("after-bootstrap")).unwrap();
    let tail = db.wal().unwrap().tail_lsn();
    wait_until("live tail after bootstrap", || runner.status().applied_lsn() >= tail);
    assert_eq!(
        replica_db.kv().get("cart", "live").unwrap(),
        Some(Value::str("after-bootstrap"))
    );

    runner.stop();
    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_stale_nonempty_replica_converges_through_a_snapshot_bootstrap() {
    let _serial = lock();
    let dir = fresh_dir("stale-replica");
    let db = Arc::new(Database::open(&dir).unwrap());
    let server = Server::start(Arc::clone(&db), server_config()).unwrap();
    let addr = server.local_addr().to_string();
    seed(&db);
    let summary = db.checkpoint().unwrap();
    assert!(summary.snapshot_lsn > 0);

    // The replica is NOT empty: it holds state the primary never had —
    // ghost kv keys, a ghost order, a ghost person and edge. A snapshot
    // bootstrap is a full state *replace*, so all of it must vanish;
    // merely applying the snapshot as writes would leave ghosts behind
    // and the replica would diverge forever (it reads below the
    // truncation horizon, there is no log left to correct it).
    let replica_db = Arc::new(Database::in_memory());
    replica_db.create_bucket("cart").unwrap();
    replica_db.create_collection("orders").unwrap();
    let g = replica_db.create_graph("social").unwrap();
    g.create_vertex_collection("persons").unwrap();
    g.create_edge_collection("knows").unwrap();
    replica_db.kv_put("cart", "ghost", Value::str("stale")).unwrap();
    replica_db.kv_put("cart", "1", Value::str("wrong-value")).unwrap();
    replica_db
        .insert_json("orders", r#"{"_key":"ghost-order","orderlines":[]}"#)
        .unwrap();
    replica_db
        .transact(IsolationLevel::Snapshot, 3, |s| {
            s.add_vertex(
                "social",
                "persons",
                mmdb::from_json(r#"{"_key":"9"}"#).unwrap(),
            )?;
            s.add_edge("social", "knows", "persons/9", "persons/9", mmdb::from_json("{}").unwrap())
                .map(|_| ())
        })
        .unwrap();

    let opts = ReplicaOptions {
        reconnect_delay: Duration::from_millis(25),
        client: ClientConfig {
            read_timeout: Some(Duration::from_secs(2)),
            ..ClientConfig::default()
        },
    };
    let runner = ReplicaRunner::start(Arc::clone(&replica_db), addr.clone(), opts).unwrap();
    let tail = db.wal().unwrap().tail_lsn();
    wait_until("stale replica snapshot bootstrap", || {
        runner.status().is_connected() && runner.status().applied_lsn() >= tail
    });

    // Byte-identical to the primary, ghosts and all.
    assert_eq!(probes(&replica_db), probes(&db), "stale replica diverged after bootstrap");
    assert_eq!(replica_db.kv().get("cart", "ghost").unwrap(), None, "ghost kv key survived");
    assert_eq!(
        replica_db.get_document("orders", "ghost-order").unwrap(),
        None,
        "ghost document survived"
    );
    assert_eq!(
        replica_db
            .query(r#"FOR p IN 1..1 OUTBOUND "persons/9" knows RETURN p._key"#)
            .unwrap(),
        Vec::<Value>::new(),
        "ghost edge survived"
    );

    // And the stream continues normally past the bootstrap.
    db.kv_put("cart", "live", Value::str("after-replace")).unwrap();
    let tail = db.wal().unwrap().tail_lsn();
    wait_until("live tail after stale bootstrap", || runner.status().applied_lsn() >= tail);
    assert_eq!(
        replica_db.kv().get("cart", "live").unwrap(),
        Some(Value::str("after-replace"))
    );

    runner.stop();
    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seconds_since_checkpoint_survives_a_process_restart() {
    let _serial = lock();
    let dir = fresh_dir("ckpt-age");
    let db = Database::open(&dir).unwrap();
    db.create_bucket("cart").unwrap();
    db.kv_put("cart", "k", Value::int(1)).unwrap();
    assert_eq!(db.seconds_since_checkpoint(), None, "no checkpoint has ever run");
    db.checkpoint().unwrap();
    assert!(db.seconds_since_checkpoint().unwrap() < 60);

    // Reopen: the age must come back from the snapshot file's mtime,
    // not reset to "never" — a freshly restarted server that reports
    // `null` here looks like it has unbounded recovery debt and pages
    // an operator for nothing.
    drop(db);
    let db = Database::open(&dir).unwrap();
    let age = db.seconds_since_checkpoint();
    assert!(
        age.is_some() && age.unwrap() < 60,
        "seconds_since_checkpoint must survive a reopen (got {age:?})"
    );

    // And it keeps ticking from the real checkpoint time, not reopen
    // time: a fresh checkpoint resets it.
    db.kv_put("cart", "k2", Value::int(2)).unwrap();
    db.checkpoint().unwrap();
    assert!(db.seconds_since_checkpoint().unwrap() < 60);
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn admin_checkpoint_reports_and_stats_expose_the_wal_footprint() {
    let _serial = lock();
    let db = Arc::new(Database::in_memory_logged());
    db.create_bucket("cart").unwrap();
    for i in 0..32 {
        db.kv_put("cart", &i.to_string(), Value::int(i)).unwrap();
    }
    let server = Server::start(Arc::clone(&db), server_config()).unwrap();
    let mut client = Client::connect(server.local_addr().to_string()).unwrap();

    let health = client.admin_health().unwrap();
    assert_eq!(health.get_field("seconds_since_checkpoint"), &Value::Null);

    let summary = client.admin_checkpoint().unwrap();
    assert!(summary.get_field("snapshot_lsn").as_int().unwrap() > 0);
    assert!(summary.get_field("wal_bytes_reclaimed").as_int().unwrap() > 0);

    let stats = client.admin_stats().unwrap();
    let engine = stats.get_field("engine");
    assert_eq!(engine.get_field("checkpoint_count").as_int().unwrap(), 1);
    assert!(engine.get_field("checkpoint_bytes_reclaimed").as_int().unwrap() > 0);
    let wal = stats.get_field("wal");
    assert!(wal.get_field("truncated_lsn").as_int().unwrap() > 0);

    let health = client.admin_health().unwrap();
    assert!(health.get_field("seconds_since_checkpoint").as_int().unwrap() >= 0);

    server.shutdown().unwrap();
}

#[test]
fn wal_size_threshold_triggers_checkpoints_automatically() {
    let _serial = lock();
    let dir = fresh_dir("auto");
    let db = Arc::new(Database::open(&dir).unwrap());
    db.create_bucket("cart").unwrap();
    let config = ServerConfig {
        checkpoint_wal_bytes: Some(2048),
        ..server_config()
    };
    let server = Server::start(Arc::clone(&db), config).unwrap();

    // Push the WAL well past the threshold; the background loop must
    // bring it back down without any ADMIN CHECKPOINT.
    for i in 0..200 {
        db.kv_put("cart", &format!("auto-{i}"), Value::int(i)).unwrap();
    }
    wait_until("automatic checkpoint", || {
        let (count, _, _) = db.checkpoint_stats();
        count > 0 && db.wal_size_bytes() < 2048
    });

    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
