//! Failure-path behavior of the client/server stack: malformed and
//! oversized frames, capacity rejection, client-side timeouts, session
//! reaping on disconnect, and graceful shutdown.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mmdb::{Database, Value};
use mmdb_client::{Client, ClientConfig, Pool, PoolConfig};
use mmdb_protocol::{frame, Request, Response, PROTOCOL_VERSION};
use mmdb_server::{Server, ServerConfig};

fn start_server(config: ServerConfig) -> (Arc<Database>, Server, String) {
    let db = Arc::new(Database::in_memory());
    db.create_bucket("cart").unwrap();
    let server = Server::start(Arc::clone(&db), config).unwrap();
    let addr = server.local_addr().to_string();
    (db, server, addr)
}

/// Wait until `cond` holds or panic after a couple of seconds.
fn eventually(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for: {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn oversized_frame_gets_a_protocol_error_not_a_hang() {
    let (_db, server, addr) = start_server(ServerConfig::default());
    let mut raw = TcpStream::connect(&addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

    // A header announcing far more than MAX_FRAME_LEN. The server must
    // answer with a framed protocol error and close — without reading
    // (or allocating) the announced payload.
    raw.write_all(&u32::MAX.to_be_bytes()).unwrap();
    let payload = frame::read_frame(&mut raw, frame::MAX_FRAME_LEN).unwrap();
    match Response::decode(&payload).unwrap() {
        Response::Err { kind, .. } => assert_eq!(kind, "protocol"),
        other => panic!("expected protocol error, got {other:?}"),
    }
    // The connection is closed afterwards.
    let mut buf = [0u8; 1];
    assert_eq!(raw.read(&mut buf).unwrap(), 0, "server closes after protocol error");

    // The server is still healthy for new connections.
    let mut client = Client::connect(&addr).unwrap();
    client.ping().unwrap();
    assert!(server.metrics().errors_total.load(Ordering::Relaxed) <= 1);
    server.shutdown().unwrap();
}

#[test]
fn undecodable_payload_gets_a_protocol_error() {
    let (_db, server, addr) = start_server(ServerConfig::default());
    let mut raw = TcpStream::connect(&addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    frame::write_frame(&mut raw, &[0xff, 0xfe, 0xfd], frame::MAX_FRAME_LEN).unwrap();
    let payload = frame::read_frame(&mut raw, frame::MAX_FRAME_LEN).unwrap();
    match Response::decode(&payload).unwrap() {
        Response::Err { kind, .. } => assert_eq!(kind, "protocol"),
        other => panic!("expected protocol error, got {other:?}"),
    }
    server.shutdown().unwrap();
}

#[test]
fn handshake_is_required_and_version_checked() {
    let (_db, server, addr) = start_server(ServerConfig::default());

    // Skipping hello is a protocol error.
    let mut raw = TcpStream::connect(&addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    frame::write_frame(&mut raw, &Request::Ping.encode(), frame::MAX_FRAME_LEN).unwrap();
    let payload = frame::read_frame(&mut raw, frame::MAX_FRAME_LEN).unwrap();
    match Response::decode(&payload).unwrap() {
        Response::Err { kind, .. } => assert_eq!(kind, "protocol"),
        other => panic!("expected protocol error, got {other:?}"),
    }

    // A wrong version is refused.
    let mut raw = TcpStream::connect(&addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    frame::write_frame(
        &mut raw,
        &Request::Hello { version: PROTOCOL_VERSION + 1 }.encode(),
        frame::MAX_FRAME_LEN,
    )
    .unwrap();
    let payload = frame::read_frame(&mut raw, frame::MAX_FRAME_LEN).unwrap();
    match Response::decode(&payload).unwrap() {
        Response::Err { kind, message } => {
            assert_eq!(kind, "protocol");
            assert!(message.contains("version"), "{message}");
        }
        other => panic!("expected protocol error, got {other:?}"),
    }
    server.shutdown().unwrap();
}

#[test]
fn at_capacity_connections_get_a_clean_busy_error() {
    let (_db, server, addr) = start_server(ServerConfig {
        workers: 1,
        max_connections: 1,
        ..ServerConfig::default()
    });

    // First client occupies the only slot (handshake completed = accepted).
    let mut first = Client::connect(&addr).unwrap();
    first.ping().unwrap();

    // Second client is rejected with a retryable busy error.
    let err = Client::connect(&addr).unwrap_err();
    assert_eq!(err.kind(), "busy");
    assert!(err.is_retryable());
    assert_eq!(server.metrics().connections_rejected.load(Ordering::Relaxed), 1);

    // Freeing the slot lets a new connection in.
    drop(first);
    eventually("slot freed and connection accepted", || Client::connect(&addr).is_ok());
    server.shutdown().unwrap();
}

#[test]
fn client_read_timeout_surfaces_as_err() {
    // A listener that accepts and then stays silent.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let hold = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        std::thread::sleep(Duration::from_secs(2));
        drop(stream);
    });

    let started = Instant::now();
    let err = Client::connect_with(
        &*addr,
        ClientConfig { read_timeout: Some(Duration::from_millis(200)), ..ClientConfig::default() },
    )
    .unwrap_err();
    assert_eq!(err.kind(), "storage", "timeout is an I/O-class error: {err}");
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "timeout must fire well before the server would answer"
    );
    hold.join().unwrap();
}

#[test]
fn a_slowloris_frame_is_cut_off_at_the_read_timeout() {
    let (_db, server, addr) = start_server(ServerConfig {
        read_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    });
    let mut raw = TcpStream::connect(&addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

    // Drip a frame header byte by byte and then stall, never completing
    // the frame. Each byte arrives "recently", but the frame as a whole
    // stalls past `read_timeout`: the worker must cut the connection off
    // instead of sitting captive for the (much longer) idle timeout.
    let started = Instant::now();
    for byte in &8u32.to_be_bytes()[..3] {
        raw.write_all(std::slice::from_ref(byte)).unwrap();
        std::thread::sleep(Duration::from_millis(50));
    }
    let payload = frame::read_frame(&mut raw, frame::MAX_FRAME_LEN).unwrap();
    match Response::decode(&payload).unwrap() {
        Response::Err { kind, message } => {
            assert_eq!(kind, "storage");
            assert!(message.contains("stalled"), "{message}");
        }
        other => panic!("expected a stall error, got {other:?}"),
    }
    let mut buf = [0u8; 1];
    assert_eq!(raw.read(&mut buf).unwrap(), 0, "server closes the slowloris connection");
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "the cutoff tracks read_timeout, not idle_timeout"
    );

    // The worker is free again and the counters saw exactly one doomed
    // connection, which never got a request far enough to be counted.
    eventually("slowloris connection retired", || {
        server.metrics().connections_active.load(Ordering::Relaxed) == 0
    });
    let mut probe = Client::connect(&addr).unwrap();
    let stats = probe.admin_stats().unwrap();
    assert_eq!(stats.get_field("connections").get_field("accepted"), &Value::int(2));
    assert_eq!(stats.get_field("connections").get_field("active"), &Value::int(1));
    assert_eq!(stats.get_field("requests").get_field("errors"), &Value::int(0));
    server.shutdown().unwrap();
}

#[test]
fn idle_connections_are_reaped_after_the_idle_timeout() {
    let (_db, server, addr) = start_server(ServerConfig {
        idle_timeout: Duration::from_millis(100),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr).unwrap();
    client.ping().unwrap();

    // Going quiet between frames trips `idle_timeout`, and the server
    // closes the connection without writing anything (a clean close, not
    // an error frame).
    eventually("idle connection reaped", || {
        server.metrics().connections_active.load(Ordering::Relaxed) == 0
    });
    assert!(client.ping().is_err(), "the reaped connection is dead from the client side");
    assert!(client.is_poisoned());

    // No transaction was open, so nothing needed force-aborting, and the
    // server keeps serving fresh connections.
    assert_eq!(server.metrics().sessions_reaped.load(Ordering::Relaxed), 0);
    let mut probe = Client::connect(&addr).unwrap();
    let stats = probe.admin_stats().unwrap();
    assert_eq!(stats.get_field("connections").get_field("accepted"), &Value::int(2));
    assert_eq!(stats.get_field("connections").get_field("active"), &Value::int(1));
    server.shutdown().unwrap();
}

#[test]
fn the_pool_health_check_replaces_reaped_connections() {
    let (_db, server, addr) = start_server(ServerConfig {
        idle_timeout: Duration::from_millis(100),
        ..ServerConfig::default()
    });
    // `health_check_after: ZERO` pings every idle connection on checkout.
    let pool = Pool::new(
        &addr,
        PoolConfig {
            max_size: 2,
            health_check_after: Duration::ZERO,
            ..PoolConfig::default()
        },
    );
    {
        let mut conn = pool.get().unwrap();
        conn.ping().unwrap();
    } // back to the idle list
    eventually("server reaped the idle pooled connection", || {
        server.metrics().connections_active.load(Ordering::Relaxed) == 0
    });

    // Checkout pings the stale idle connection, finds it dead, discards
    // it, and hands out a fresh working one — the caller never sees the
    // corpse.
    let mut conn = pool.get().unwrap();
    conn.ping().unwrap();
    drop(conn);
    let stats = pool.stats();
    assert_eq!(stats.unhealthy_discarded, 1, "{stats:?}");
    assert_eq!(stats.open, 1, "the dead connection's slot was freed: {stats:?}");
    server.shutdown().unwrap();
}

#[test]
fn poisoned_connections_refuse_further_use() {
    let (_db, server, addr) = start_server(ServerConfig::default());
    let mut client = Client::connect(&addr).unwrap();
    client.ping().unwrap();
    server.shutdown().unwrap();
    // The server is gone: the next call fails and poisons the client...
    assert!(client.ping().is_err());
    assert!(client.is_poisoned());
    // ...and later calls fail fast with a protocol error.
    assert_eq!(client.ping().unwrap_err().kind(), "protocol");
}

#[test]
fn disconnecting_mid_transaction_reaps_the_session() {
    let (db, server, addr) = start_server(ServerConfig::default());
    let (_, aborts_before) = db.mvcc().stats();

    let mut client = Client::connect(&addr).unwrap();
    client.begin(false).unwrap();
    client.kv_put("cart", "zombie", Value::int(1)).unwrap();
    drop(client); // vanish without commit or abort

    eventually("orphaned session reaped", || {
        server.metrics().sessions_reaped.load(Ordering::Relaxed) == 1
    });
    let (_, aborts_after) = db.mvcc().stats();
    assert!(aborts_after > aborts_before, "engine recorded the abort");
    assert!(db.kv().get("cart", "zombie").unwrap().is_none(), "no trace of the orphan");
    server.shutdown().unwrap();
}

#[test]
fn shutdown_drains_open_connections_and_aborts_their_transactions() {
    let (db, server, addr) = start_server(ServerConfig::default());

    // One connection idles; one holds an open transaction with writes.
    let mut idle = Client::connect(&addr).unwrap();
    idle.ping().unwrap();
    let mut in_txn = Client::connect(&addr).unwrap();
    in_txn.begin(false).unwrap();
    in_txn.kv_put("cart", "w", Value::int(1)).unwrap();

    let (_, aborts_before) = db.mvcc().stats();
    let started = Instant::now();
    server.shutdown().unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "graceful shutdown must not hang on open connections"
    );

    // The orphaned transaction was aborted, not leaked.
    let (_, aborts_after) = db.mvcc().stats();
    assert!(aborts_after > aborts_before);
    assert!(db.kv().get("cart", "w").unwrap().is_none());

    // Both clients now observe a dead server.
    assert!(idle.ping().is_err());
    assert!(in_txn.ping().is_err());

    // The port no longer accepts mmdb connections.
    assert!(Client::connect(&addr).is_err());
}
