//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset of `bytes` the workspace uses — `Bytes`,
//! `BytesMut`, and the `Buf`/`BufMut` traits — directly over `Vec<u8>`.
//! No refcounted slicing: `freeze` copies nothing but `Bytes` clones are
//! plain vector clones, which is fine at the sizes mmdb moves through
//! these types (pages, WAL records, codec buffers, wire frames).

use std::ops::{Deref, DerefMut};

/// An immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes { data: Vec::new() }
    }

    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.to_vec() }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes { data: data.to_vec() }
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in &self.data {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn clear(&mut self) {
        self.data.clear();
    }

    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.data
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.data.len())
    }
}

/// Read cursor over a contiguous byte source.
///
/// Reads are big-endian, matching the real crate. Like the real crate,
/// reads past the end panic — callers are expected to bounds-check via
/// [`Buf::remaining`] first (mmdb's decoders all do).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(raw)
    }

    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }

    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write sink for big-endian primitives and slices.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip_big_endian() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u32(0xDEADBEEF);
        b.put_u64(42);
        b.put_f64(1.5);
        b.put_slice(b"xy");
        let frozen = b.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u32(), 0xDEADBEEF);
        assert_eq!(cur.get_u64(), 42);
        assert_eq!(cur.get_f64(), 1.5);
        assert_eq!(cur, b"xy");
        cur.advance(2);
        assert!(!cur.has_remaining());
    }

    #[test]
    fn bytes_conversions() {
        let b: Bytes = vec![1, 2, 3].into();
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        let m = BytesMut::with_capacity(8);
        assert!(m.is_empty());
    }
}
