//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of proptest's API that mmdb's property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_filter`/`prop_recursive`,
//! `any::<T>()`, range and regex-lite string strategies, tuple and
//! collection composition, `prop_oneof!`, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **Simplified shrinking.** Failing cases are minimized by greedy
//!   halving (integers: toward the range start) and truncation (vectors:
//!   toward the minimum length), re-running the body one swapped argument
//!   at a time to a fixpoint. This finds the same minimal counterexamples
//!   as real proptest for monotone properties but does not replay the
//!   full generation tree, so map/union/string outputs are reported
//!   unminimized.
//! * **Deterministic seeds.** Cases derive from a hash of the test name
//!   and the case index, so runs are reproducible by construction; there
//!   is no `PROPTEST_CASES`/persistence machinery.
//! * Generated value distributions are similar in spirit (edge-case
//!   biased integers, structured recursion) but not identical.

use std::collections::{BTreeMap, BTreeSet};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

pub mod test_runner {
    /// Per-test configuration. Only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic splitmix64 RNG used to drive all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Stable seed from the fully-qualified test name and case index.
        pub fn for_case(test_name: &str, case: u32) -> TestRng {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform usize in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: usize) -> usize {
            (self.next_u64() % bound as u64) as usize
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

use test_runner::TestRng;

// ---- the Strategy trait ----------------------------------------------------

pub mod strategy {
    use super::*;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Candidate simpler values for `value`, best first. The
        /// `proptest!` runner calls this on a failing case and greedily
        /// re-runs the body on each candidate, walking toward a minimal
        /// counterexample. Strategies that can't meaningfully simplify
        /// (maps, unions, strings) return nothing and the original
        /// failing value is reported as-is.
        fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
            Vec::new()
        }

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, reason, f }
        }

        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
        {
            let leaf = self.boxed();
            Recursive {
                leaf,
                recurse: Arc::new(move |inner| recurse(inner).boxed()),
                depth,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
        fn shrink_dyn(&self, value: &T) -> Vec<T>;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
        fn shrink_dyn(&self, value: &S::Value) -> Vec<S::Value> {
            self.shrink(value)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
        fn shrink(&self, value: &T) -> Vec<T> {
            self.0.shrink_dyn(value)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    #[derive(Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// `prop_filter` combinator: regenerate until the predicate accepts.
    #[derive(Clone)]
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) reason: &'static str,
        pub(crate) f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter '{}' rejected 1000 candidates in a row", self.reason)
        }
        fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
            // Shrunk candidates must still satisfy the filter, or the
            // runner would "minimize" onto an input the strategy could
            // never have produced.
            self.inner.shrink(value).into_iter().filter(|v| (self.f)(v)).collect()
        }
    }

    /// `prop_recursive` combinator: bounded structural recursion.
    pub struct Recursive<T> {
        pub(crate) leaf: BoxedStrategy<T>,
        pub(crate) recurse: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
        pub(crate) depth: u32,
    }

    impl<T> Clone for Recursive<T> {
        fn clone(&self) -> Self {
            Recursive {
                leaf: self.leaf.clone(),
                recurse: Arc::clone(&self.recurse),
                depth: self.depth,
            }
        }
    }

    impl<T: 'static> Strategy for Recursive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            // Choose a nesting level for this case, then stack the
            // recursion that many times over a leaf/shallower mix.
            let levels = rng.below(self.depth as usize + 1);
            let mut current = self.leaf.clone();
            for _ in 0..levels {
                let inner = Union::new(vec![self.leaf.clone(), current]).boxed();
                current = (self.recurse)(inner);
            }
            current.generate(rng)
        }
    }

    /// `prop_oneof!` support: uniform choice among same-typed strategies.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union { options: self.options.clone() }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len());
            self.options[i].generate(rng)
        }
    }

    // ---- numeric range strategies ------------------------------------------

    /// Halving shrink candidates for an integer drawn from
    /// `[start, start+span)`: the range start (simplest possible), the
    /// halfway point between start and the value (binary search toward
    /// the smallest failing input), and the predecessor (final linear
    /// steps once halving overshoots).
    fn int_shrink_candidates(start: i128, value: i128) -> Vec<i128> {
        let mut out = Vec::new();
        for cand in [start, start + (value - start) / 2, value - 1] {
            if cand != value && cand >= start && !out.contains(&cand) {
                out.push(cand);
            }
        }
        out
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = ((rng.next_u64() as u128) % span) as i128;
                    (self.start as i128 + v) as $t
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    int_shrink_candidates(self.start as i128, *value as i128)
                        .into_iter()
                        .filter(|c| *c < self.end as i128)
                        .map(|c| c as $t)
                        .collect()
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let v = ((rng.next_u64() as u128) % span) as i128;
                    (start as i128 + v) as $t
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    int_shrink_candidates(*self.start() as i128, *value as i128)
                        .into_iter()
                        .filter(|c| *c <= *self.end() as i128)
                        .map(|c| c as $t)
                        .collect()
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    // ---- string strategies (regex-lite) ------------------------------------

    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }

    // ---- tuple strategies ---------------------------------------------------

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub use strategy::{BoxedStrategy, Just, Strategy, Union};

// ---- any::<T>() -------------------------------------------------------------

pub mod arbitrary {
    use super::*;

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Bias towards boundary values, as real proptest does.
                    if rng.below(8) == 0 {
                        const EDGES: [i128; 5] = [0, 1, -1, <$t>::MAX as i128, <$t>::MIN as i128];
                        EDGES[rng.below(EDGES.len())] as $t
                    } else {
                        rng.next_u64() as $t
                    }
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            match rng.below(16) {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => 0.0,
                4 => -0.0,
                // Small-magnitude values with fractional parts.
                5..=9 => (rng.next_u64() as i64 % 2_000_000) as f64 / 128.0,
                // Full-range bit patterns, re-rolled onto a wide exponent.
                _ => {
                    let m = rng.unit_f64() * 2.0 - 1.0;
                    let e = (rng.below(601) as i32) - 300;
                    m * 10f64.powi(e)
                }
            }
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            char::from_u32((rng.next_u64() % 0xD800_u64) as u32).unwrap_or('a')
        }
    }
}

pub use arbitrary::any;

// ---- collection / sample modules (under `prop::`) ---------------------------

/// Size bound for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { min: r.start, max_exclusive: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange { min: *r.start(), max_exclusive: *r.end() + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max_exclusive: n + 1 }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below(self.max_exclusive - self.min)
    }
}

pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let len = value.len();
            let min = self.size.min;
            let mut out: Vec<Vec<S::Value>> = Vec::new();
            // Truncations first — structure dominates: the shortest legal
            // prefix, the halfway prefix, then one-off-the-end.
            for target in [min, min + (len - min) / 2, len.saturating_sub(1)] {
                if target < len && target >= min && !out.iter().any(|v| v.len() == target) {
                    out.push(value[..target].to_vec());
                }
            }
            // Then simplify elements in place, one candidate per slot.
            for (i, el) in value.iter().enumerate() {
                if let Some(cand) = self.element.shrink(el).into_iter().next() {
                    let mut v = value.clone();
                    v[i] = cand;
                    out.push(v);
                }
            }
            out
        }
    }

    /// Strategy for `BTreeSet`. Sets deduplicate, so the requested minimum
    /// is best-effort: we draw extra candidates before giving up.
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            for _ in 0..target.saturating_mul(4).max(8) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    /// Strategy for `BTreeMap`, same dedup caveat as sets.
    #[derive(Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size: size.into() }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeMap::new();
            for _ in 0..target.saturating_mul(4).max(8) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.key.generate(rng), self.value.generate(rng));
            }
            out
        }
    }
}

pub mod sample {
    use super::*;

    /// Uniform choice from a fixed list.
    #[derive(Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len())].clone()
        }
    }
}

/// Namespace mirror of proptest's `prop::` module tree.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

// ---- regex-lite string generation -------------------------------------------

pub mod string {
    use super::test_runner::TestRng;

    #[derive(Debug, Clone)]
    enum CharSet {
        /// Inclusive char ranges.
        Ranges(Vec<(char, char)>),
        /// `\PC`: any printable (non-control) character.
        Printable,
    }

    #[derive(Debug, Clone)]
    struct Element {
        set: CharSet,
        min: usize,
        max_inclusive: usize,
    }

    /// Generate a string matching a small regex subset: literal chars,
    /// `[...]` classes with ranges and `\`-escapes, `\PC`, and `{n}` /
    /// `{m,n}` / `{m,}` repetition. This covers every pattern used in
    /// mmdb's property tests; anything else panics loudly.
    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let elements = parse(pattern);
        let mut out = String::new();
        for el in &elements {
            let n = el.min + rng.below(el.max_inclusive - el.min + 1);
            for _ in 0..n {
                out.push(pick(&el.set, rng));
            }
        }
        out
    }

    fn pick(set: &CharSet, rng: &mut TestRng) -> char {
        match set {
            CharSet::Printable => {
                // Mostly ASCII printable, occasionally multibyte.
                const EXTRAS: [char; 6] = ['é', '世', '界', 'λ', '😀', 'ß'];
                if rng.below(8) == 0 {
                    EXTRAS[rng.below(EXTRAS.len())]
                } else {
                    char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap()
                }
            }
            CharSet::Ranges(ranges) => {
                let total: u32 = ranges.iter().map(|(a, b)| *b as u32 - *a as u32 + 1).sum();
                let mut i = rng.below(total as usize) as u32;
                for (a, b) in ranges {
                    let span = *b as u32 - *a as u32 + 1;
                    if i < span {
                        return char::from_u32(*a as u32 + i).unwrap();
                    }
                    i -= span;
                }
                unreachable!("char class selection out of range")
            }
        }
    }

    fn parse(pattern: &str) -> Vec<Element> {
        let mut chars = pattern.chars().peekable();
        let mut out = Vec::new();
        while let Some(c) = chars.next() {
            let set = match c {
                '[' => parse_class(&mut chars, pattern),
                '\\' => match chars.next() {
                    Some('P') => {
                        match chars.next() {
                            Some('C') => {}
                            other => {
                                panic!("unsupported regex category \\P{other:?} in {pattern:?}")
                            }
                        }
                        CharSet::Printable
                    }
                    Some(esc) => CharSet::Ranges(vec![(unescape(esc), unescape(esc))]),
                    None => panic!("dangling backslash in {pattern:?}"),
                },
                lit => CharSet::Ranges(vec![(lit, lit)]),
            };
            let (min, max_inclusive) = parse_repeat(&mut chars, pattern);
            out.push(Element { set, min, max_inclusive });
        }
        out
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            'r' => '\r',
            't' => '\t',
            other => other,
        }
    }

    fn parse_class(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
        pattern: &str,
    ) -> CharSet {
        let mut ranges = Vec::new();
        let mut pending: Option<char> = None;
        loop {
            let c = chars.next().unwrap_or_else(|| panic!("unclosed [ in {pattern:?}"));
            match c {
                ']' => {
                    if let Some(p) = pending {
                        ranges.push((p, p));
                    }
                    if ranges.is_empty() {
                        panic!("empty char class in {pattern:?}");
                    }
                    return CharSet::Ranges(ranges);
                }
                '\\' => {
                    let esc = chars
                        .next()
                        .unwrap_or_else(|| panic!("dangling backslash in {pattern:?}"));
                    if let Some(p) = pending.take() {
                        ranges.push((p, p));
                    }
                    pending = Some(unescape(esc));
                }
                '-' if pending.is_some() && chars.peek() != Some(&']') => {
                    let lo = pending.take().unwrap();
                    let hi = chars.next().unwrap();
                    let hi = if hi == '\\' {
                        unescape(chars.next().unwrap_or_else(|| {
                            panic!("dangling backslash in {pattern:?}")
                        }))
                    } else {
                        hi
                    };
                    assert!(lo <= hi, "inverted range {lo}-{hi} in {pattern:?}");
                    ranges.push((lo, hi));
                }
                other => {
                    if let Some(p) = pending.take() {
                        ranges.push((p, p));
                    }
                    pending = Some(other);
                }
            }
        }
    }

    fn parse_repeat(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
        pattern: &str,
    ) -> (usize, usize) {
        if chars.peek() != Some(&'{') {
            return (1, 1);
        }
        chars.next();
        let mut spec = String::new();
        loop {
            match chars.next() {
                Some('}') => break,
                Some(c) => spec.push(c),
                None => panic!("unclosed {{ in {pattern:?}"),
            }
        }
        if let Some((lo, hi)) = spec.split_once(',') {
            let min: usize = lo.trim().parse().unwrap_or_else(|_| {
                panic!("bad repeat '{{{spec}}}' in {pattern:?}")
            });
            if hi.trim().is_empty() {
                (min, min + 8)
            } else {
                let max: usize = hi.trim().parse().unwrap_or_else(|_| {
                    panic!("bad repeat '{{{spec}}}' in {pattern:?}")
                });
                (min, max)
            }
        } else {
            let n: usize = spec.trim().parse().unwrap_or_else(|_| {
                panic!("bad repeat '{{{spec}}}' in {pattern:?}")
            });
            (n, n)
        }
    }
}

// ---- macros -----------------------------------------------------------------

/// Run each `#[test] fn name(arg in strategy, ...) { body }` once per case
/// with freshly generated inputs. `prop_assert*` failures report the case
/// number; re-running is deterministic (seeds derive from the test name).
///
/// On failure the runner **shrinks**: each argument's strategy proposes
/// simpler candidates (halved integers, truncated vectors), the body is
/// re-run with one argument swapped at a time, and any candidate that
/// still fails becomes the new baseline. The loop repeats to a fixpoint
/// (bounded at 256 accepted steps) and the panic reports the minimized
/// inputs alongside the original case number. Argument types must be
/// `Clone + Debug` for this re-run/report machinery.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg).cases; $($rest)*);
    };
    (@impl $cases:expr; $(
        $(#[doc = $doc:expr])*
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[doc = $doc])*
            #[test]
            fn $name() {
                let cases: u32 = $cases;
                let full_name = concat!(module_path!(), "::", stringify!($name));
                for case in 0..cases {
                    let mut proptest_rng = $crate::test_runner::TestRng::for_case(full_name, case);
                    // Current inputs live in RefCells so the body can be
                    // re-run with one argument swapped during shrinking.
                    $(let $arg = ::std::cell::RefCell::new(
                        $crate::strategy::Strategy::generate(&($strat), &mut proptest_rng));)+
                    let run = || -> ::std::result::Result<(), ::std::string::String> {
                        $(let $arg = ::std::clone::Clone::clone(&*$arg.borrow());)+
                        { $body }
                        ::std::result::Result::Ok(())
                    };
                    if let ::std::result::Result::Err(mut message) = run() {
                        // Greedy shrink to a fixpoint: per argument, adopt
                        // the first candidate that still fails, restart.
                        let mut steps = 0usize;
                        let mut progress = true;
                        while progress && steps < 256 {
                            progress = false;
                            $(
                                let current = ::std::clone::Clone::clone(&*$arg.borrow());
                                for cand in $crate::strategy::Strategy::shrink(&($strat), &current)
                                {
                                    let prev = $arg.replace(cand);
                                    match run() {
                                        ::std::result::Result::Err(m) => {
                                            message = m;
                                            progress = true;
                                            steps += 1;
                                            break;
                                        }
                                        ::std::result::Result::Ok(()) => {
                                            let _ = $arg.replace(prev);
                                        }
                                    }
                                }
                            )+
                        }
                        let shrunk = if steps > 0 {
                            format!(" (shrunk {steps} steps)")
                        } else {
                            ::std::string::String::new()
                        };
                        panic!(
                            "proptest {full_name} failed at case {case}{shrunk}: {message}\n  \
                             minimized inputs: {:?}",
                            ($(&*$arg.borrow(),)+)
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::ProptestConfig::default().cases; $($rest)*);
    };
}

/// Uniform choice between strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Check a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Check equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}`", left, right));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                left, right, format!($($fmt)+)));
        }
    }};
}

/// Check inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` == `{:?}`", left, right));
        }
    }};
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_strings_and_collections_generate_in_bounds() {
        let mut rng = TestRng::for_case("shim::self_test", 0);
        for _ in 0..200 {
            let n = Strategy::generate(&(0i64..10), &mut rng);
            assert!((0..10).contains(&n));
            let s = Strategy::generate(&"[a-c]{1,4}", &mut rng);
            assert!((1..=4).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let v = Strategy::generate(&prop::collection::vec(0u8..255, 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
            let pair = Strategy::generate(&(0usize..3, "[x-z]{1}"), &mut rng);
            assert!(pair.0 < 3);
        }
    }

    #[test]
    fn oneof_map_filter_and_recursive_compose() {
        let mut rng = TestRng::for_case("shim::compose", 3);
        let strat = prop_oneof![Just(1i64), (10i64..20).prop_map(|v| v * 2)]
            .prop_filter("nonzero", |v| *v != 0);
        for _ in 0..100 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!(v == 1 || (20..40).contains(&v));
        }
        #[derive(Debug, Clone, PartialEq)]
        enum T {
            Leaf(i64),
            Node(Vec<T>),
        }
        let tree = Just(0i64).prop_map(T::Leaf).prop_recursive(3, 16, 4, |inner| {
            prop::collection::vec(inner, 0..4).prop_map(T::Node)
        });
        let mut saw_node = false;
        for case in 0..64 {
            let mut rng = TestRng::for_case("shim::tree", case);
            if matches!(Strategy::generate(&tree, &mut rng), T::Node(_)) {
                saw_node = true;
            }
        }
        assert!(saw_node, "recursion never recursed");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: args bind, asserts work, doc comments parse.
        #[test]
        fn macro_smoke(a in 0i64..100, b in prop::sample::select(vec![1i64, 2, 3])) {
            prop_assert!(a >= 0, "a was {}", a);
            prop_assert_eq!(b, b);
            prop_assert_ne!(b, 4);
        }

        /// Vec strategies keep working through the macro (now that
        /// shrinking demands Clone elements).
        #[test]
        fn macro_vec_args(v in prop::collection::vec(0u8..10, 0..6)) {
            prop_assert!(v.len() < 6);
        }
    }

    #[test]
    fn int_shrink_proposes_start_half_and_predecessor() {
        let c = Strategy::shrink(&(0i64..100), &80);
        assert_eq!(c, vec![0, 40, 79]);
        let c = Strategy::shrink(&(10u32..=90), &10);
        assert!(c.is_empty(), "the range start cannot shrink further, got {c:?}");
        // Candidates never leave the range.
        let c = Strategy::shrink(&(5i64..100), &6);
        assert!(c.iter().all(|v| (5..100).contains(v)), "{c:?}");
    }

    #[test]
    fn int_shrink_fixpoint_finds_the_minimal_counterexample() {
        // Property "v < 10" first fails at 10: greedy shrinking from any
        // failing start must land exactly there.
        let strat = 0i64..1000;
        let fails = |v: i64| v >= 10;
        for start in [995i64, 10, 11, 500] {
            let mut v = start;
            while let Some(n) =
                Strategy::shrink(&strat, &v).into_iter().find(|c| fails(*c))
            {
                v = n;
            }
            assert_eq!(v, 10, "from {start}");
        }
    }

    #[test]
    fn vec_shrink_truncates_toward_the_minimum_length() {
        let strat = prop::collection::vec(0u8..100, 1..20);
        let v: Vec<u8> = vec![9; 10];
        let c = Strategy::shrink(&strat, &v);
        let lens: Vec<usize> = c.iter().map(Vec::len).collect();
        assert!(lens.contains(&1) && lens.contains(&5) && lens.contains(&9), "{lens:?}");
        // All candidates are prefixes or single-element simplifications.
        assert!(c.iter().all(|cv| cv.len() <= v.len()));
        // Fixpoint: property "len >= 3" minimizes to exactly 3 elements.
        let fails = |v: &Vec<u8>| v.len() >= 3;
        let mut cur = v;
        while let Some(n) =
            Strategy::shrink(&strat, &cur).into_iter().find(|c| fails(c))
        {
            cur = n;
        }
        assert_eq!(cur.len(), 3);
        // Elements shrink too (second phase of the candidate list).
        assert!(cur.iter().all(|e| *e < 9), "elements minimized: {cur:?}");
    }

    #[test]
    fn filter_shrink_respects_the_predicate() {
        let strat = (0i64..100).prop_filter("even", |v| v % 2 == 0);
        let c = Strategy::shrink(&strat, &80);
        assert!(!c.is_empty());
        assert!(c.iter().all(|v| v % 2 == 0), "{c:?}");
    }

    #[test]
    fn boxed_strategies_forward_shrink() {
        let strat = (0i64..100).boxed();
        assert_eq!(Strategy::shrink(&strat, &80), vec![0, 40, 79]);
    }
}
