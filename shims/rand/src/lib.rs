//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset mmdb uses: `SmallRng::seed_from_u64` plus
//! `Rng::{gen_range, gen_bool, gen}`. The generator is splitmix64 — not
//! rand's actual SmallRng algorithm, so seeded streams differ from the
//! real crate, but every mmdb use site only needs *deterministic*
//! pseudo-randomness, not a specific stream.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// A half-open or inclusive range that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Values `gen()` can produce without further parameters.
pub trait Standard: Sized {
    fn from_rng(rng: &mut dyn RngCore) -> Self;
}

impl Standard for bool {
    fn from_rng(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u8 {
    fn from_rng(rng: &mut dyn RngCore) -> u8 {
        rng.next_u64() as u8
    }
}

impl Standard for u64 {
    fn from_rng(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn from_rng(rng: &mut dyn RngCore) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for f64 {
    fn from_rng(rng: &mut dyn RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic RNG (splitmix64).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> SmallRng {
            SmallRng { state }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let a = rng.gen_range(0..10usize);
            assert!(a < 10);
            let b = rng.gen_range(1..=6i64);
            assert!((1..=6).contains(&b));
            let c = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&c));
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn determinism_and_distribution() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0..1000u64)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0..1000u64)).collect();
        assert_eq!(xs, ys);
        let mut rng = SmallRng::seed_from_u64(1);
        let heads = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((300..700).contains(&heads), "gen_bool badly skewed: {heads}");
    }
}
