//! Offline stand-in for the `criterion` crate.
//!
//! Same macro/builder surface as criterion for the subset mmdb's benches
//! use (`criterion_group!` struct form, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`), but the
//! statistics are simple: each benchmark runs for a fraction of the
//! configured measurement time and reports mean/min wall-clock per
//! iteration on stdout. No plots, no persistence, no regression analysis.
//!
//! Under `cargo test`, harness-less bench binaries are invoked with
//! `--test`; like real criterion, this runs every benchmark body exactly
//! once so benches stay compile- and panic-checked by the test suite.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark runner configuration and registry.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(300),
            warm_up_time: Duration::from_millis(20),
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        // Real measurement times are tuned for statistical confidence;
        // this harness only needs a stable mean, so cap the budget.
        self.measurement_time = d.min(Duration::from_millis(400));
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d.min(Duration::from_millis(50));
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = name.to_string();
        run_one(self, &label, &mut f);
        self
    }

    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d.min(Duration::from_millis(400));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(self.criterion, &label, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(self.criterion, &label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; `iter` times the supplied routine.
pub struct Bencher {
    iters_done: u64,
    total: Duration,
    min: Duration,
    budget: Duration,
    test_mode: bool,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            self.iters_done = 1;
            self.total = Duration::from_nanos(1);
            self.min = self.total;
            return;
        }
        let deadline = Instant::now() + self.budget;
        loop {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            self.total += elapsed;
            self.min = self.min.min(elapsed);
            self.iters_done += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(criterion: &Criterion, label: &str, f: &mut F) {
    if !criterion.test_mode {
        // Warm-up pass (results discarded).
        let mut warm = Bencher {
            iters_done: 0,
            total: Duration::ZERO,
            min: Duration::MAX,
            budget: criterion.warm_up_time,
            test_mode: false,
        };
        f(&mut warm);
    }
    let mut b = Bencher {
        iters_done: 0,
        total: Duration::ZERO,
        min: Duration::MAX,
        budget: criterion.measurement_time,
        test_mode: criterion.test_mode,
    };
    f(&mut b);
    if criterion.test_mode {
        println!("test bench {label} ... ok");
    } else if b.iters_done > 0 {
        let mean = b.total / (b.iters_done as u32).max(1);
        println!(
            "bench {label}: mean {mean:?}, min {:?}, {} iters",
            b.min, b.iters_done
        );
    }
}

/// Declare a benchmark group: plain `criterion_group!(name, target, ...)`
/// or the struct form with `name =`/`config = `/`targets = `.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+);
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn harness_runs_benches() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.test_mode = false;
        sample_bench(&mut c);
        c.bench_function("top_level", |b| b.iter(|| 1 + 1));
        c.final_summary();
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { test_mode: true, ..Default::default() };
        let mut count = 0u64;
        c.bench_function("once", |b| {
            b.iter(|| count += 1);
        });
        assert_eq!(count, 1);
    }
}
