//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors minimal, API-compatible substitutes for the handful of external
//! crates it uses (see `DESIGN.md`, "Dependency policy"). This one wraps
//! `std::sync` primitives behind `parking_lot`'s panic-free interface:
//! `lock()`/`read()`/`write()` return guards directly and poisoning is
//! swallowed (a poisoned std lock yields its inner guard), which matches
//! parking_lot's no-poisoning semantics closely enough for this codebase.

use std::sync;

/// A mutex whose `lock` never returns a poison error.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex`]. Holds the std guard in an `Option` so that
/// [`Condvar::wait`] can temporarily take it (std's wait consumes the
/// guard; parking_lot's borrows it).
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { guard: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { guard: Some(p.into_inner()) })
            }
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard taken during condvar wait")
    }
}

/// Condition variable with parking_lot's borrow-the-guard `wait`.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar { inner: sync::Condvar::new() }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard already taken");
        let g = match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.guard = Some(g);
    }

    /// Waits with a timeout; returns true when the wait timed out.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> bool {
        let g = guard.guard.take().expect("guard already taken");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.guard = Some(g);
        res.timed_out()
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock whose accessors never return poison errors.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { guard }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { guard }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { guard: g }),
            Err(sync::TryLockError::Poisoned(p)) => {
                Some(RwLockReadGuard { guard: p.into_inner() })
            }
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { guard: g }),
            Err(sync::TryLockError::Poisoned(p)) => {
                Some(RwLockWriteGuard { guard: p.into_inner() })
            }
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
        assert!(m.try_lock().is_some());
        assert!(rw.try_read().is_some());
        assert!(rw.try_write().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(10)));
    }
}
