//! `mmdb-shell` — an interactive MMQL/SQL shell over one multi-model
//! database.
//!
//! ```text
//! cargo run --bin mmdb-shell
//! mmdb> .demo                       -- load the paper's example data
//! mmdb> FOR c IN customers FILTER c.credit_limit > 3000 RETURN c.name
//! ["Mary"]
//! mmdb> .sql SELECT name FROM customers ORDER BY name
//! mmdb> .explain FOR c IN customers FILTER c.credit_limit > 3000 RETURN c
//! mmdb> .quit
//! ```
//!
//! With `--connect host:port` the shell speaks to a running
//! `mmdb-serve` over the wire protocol instead of an embedded engine;
//! the same statements and dot-commands work, plus `.begin`/`.commit`/
//! `.abort` for explicit transactions and `.stats` for server metrics.

use std::io::{BufRead, Write};

use mmdb::{Database, Value};
use mmdb_client::Client;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let connect = args.iter().position(|a| a == "--connect").map(|i| {
        args.get(i + 1)
            .cloned()
            .unwrap_or_else(|| {
                eprintln!("usage: mmdb-shell [--connect host:port]");
                std::process::exit(2);
            })
    });
    match connect {
        Some(addr) => run_remote(&addr),
        None => run_embedded(),
    }
}

fn run_embedded() {
    let db = Database::in_memory();
    println!("mmdb shell — MMQL by default; .help for commands");
    repl(|line| dispatch(&db, line));
}

fn run_remote(addr: &str) {
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "mmdb shell — connected to {} ({}); .help for commands",
        addr,
        client.server_version()
    );
    let addr = addr.to_string();
    repl(move |line| dispatch_remote(&mut client, &addr, line));
}

fn repl(mut handle: impl FnMut(&str) -> mmdb::Result<Reply>) {
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("mmdb> ");
        out.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match handle(line) {
            Ok(Reply::Quit) => break,
            Ok(Reply::Text(t)) => println!("{t}"),
            Err(e) => println!("error: {e}"),
        }
    }
}

enum Reply {
    Text(String),
    Quit,
}

fn dispatch(db: &Database, line: &str) -> mmdb::Result<Reply> {
    if let Some(rest) = line.strip_prefix('.') {
        let (cmd, arg) = rest.split_once(' ').unwrap_or((rest, ""));
        return match cmd {
            "quit" | "exit" | "q" => Ok(Reply::Quit),
            "help" => Ok(Reply::Text(HELP.trim().to_string())),
            "demo" => {
                load_demo(db)?;
                Ok(Reply::Text("loaded the paper's demo data (customers, social, cart, orders)".into()))
            }
            "sql" => render(db.query_sql(arg)?),
            "explain" => Ok(Reply::Text(db.explain(arg)?)),
            "analyze" => Ok(Reply::Text(db.explain_analyze(arg)?)),
            "collections" => {
                let mut names: Vec<String> = db.world().collections.read().keys().cloned().collect();
                names.sort();
                Ok(Reply::Text(format!(
                    "collections: {names:?}\ntables: {:?}\nbuckets: {:?}",
                    db.world().catalog.table_names(),
                    db.world().kv.buckets()
                )))
            }
            "create" => {
                db.create_collection(arg.trim())?;
                Ok(Reply::Text(format!("created collection '{}'", arg.trim())))
            }
            "insert" => {
                // .insert <collection> <json>
                let (coll, json) = arg
                    .split_once(' ')
                    .ok_or_else(|| mmdb::Error::Parse(".insert <collection> <json>".into()))?;
                let key = db.insert_json(coll, json)?;
                Ok(Reply::Text(format!("inserted '{key}'")))
            }
            other => Ok(Reply::Text(format!("unknown command '.{other}' — try .help"))),
        };
    }
    render(db.query(line)?)
}

fn dispatch_remote(client: &mut Client, addr: &str, line: &str) -> mmdb::Result<Reply> {
    if let Some(rest) = line.strip_prefix('.') {
        let (cmd, arg) = rest.split_once(' ').unwrap_or((rest, ""));
        return match cmd {
            "quit" | "exit" | "q" => Ok(Reply::Quit),
            "help" => Ok(Reply::Text(format!("{}{}", HELP.trim(), REMOTE_HELP.trim_end()))),
            "demo" => {
                load_demo_remote(client)?;
                Ok(Reply::Text(
                    "loaded the paper's demo data (customers, social, cart, orders)".into(),
                ))
            }
            "sql" => render(client.query_sql(arg)?),
            "explain" => Ok(Reply::Text(client.explain(arg)?)),
            "analyze" => Ok(Reply::Text(client.explain_analyze(arg)?)),
            "create" => {
                client.create_collection(arg.trim())?;
                Ok(Reply::Text(format!("created collection '{}'", arg.trim())))
            }
            "insert" => {
                let (coll, json) = arg
                    .split_once(' ')
                    .ok_or_else(|| mmdb::Error::Parse(".insert <collection> <json>".into()))?;
                let key = client.insert_document(coll, mmdb::from_json(json)?)?;
                Ok(Reply::Text(format!("inserted '{key}'")))
            }
            "begin" => {
                let id = client.begin(arg.trim() == "serializable")?;
                Ok(Reply::Text(format!("transaction {id} open")))
            }
            "commit" => {
                let ts = client.commit()?;
                Ok(Reply::Text(format!("committed at ts {ts}")))
            }
            "abort" => {
                client.abort()?;
                Ok(Reply::Text("aborted".into()))
            }
            "ping" => {
                client.ping()?;
                Ok(Reply::Text("pong".into()))
            }
            "stats" => Ok(Reply::Text(mmdb::to_json_pretty(&client.admin_stats()?))),
            "slowlog" => {
                if arg.trim().eq_ignore_ascii_case("reset") {
                    Ok(Reply::Text(mmdb::to_json_pretty(&client.admin_slowlog_reset()?)))
                } else {
                    Ok(Reply::Text(mmdb::to_json_pretty(&client.admin_slowlog()?)))
                }
            }
            "health" => Ok(Reply::Text(mmdb::to_json_pretty(&client.admin_health()?))),
            "repl" => Ok(Reply::Text(mmdb::to_json_pretty(&client.admin_repl()?))),
            "checkpoint" => {
                Ok(Reply::Text(mmdb::to_json_pretty(&client.admin_checkpoint()?)))
            }
            "pipe" => {
                let (n, query) = arg
                    .split_once(' ')
                    .and_then(|(n, q)| Some((n.parse::<usize>().ok()?, q.trim())))
                    .filter(|(n, q)| *n >= 1 && !q.is_empty())
                    .ok_or_else(|| mmdb::Error::Parse(".pipe <n> <mmql>".into()))?;
                pipe_query(client, n, query)
            }
            "subscribe" => {
                let from = match arg.trim() {
                    // Default: only future commits — start at the current
                    // WAL tail the server reports.
                    "" => match client.admin_repl()?.get_field("wal_tail_lsn").as_int() {
                        Ok(lsn) if lsn >= 0 => lsn as u64,
                        _ => 0,
                    },
                    lsn => lsn
                        .parse()
                        .map_err(|_| mmdb::Error::Parse(".subscribe [from_lsn]".into()))?,
                };
                follow_feed(addr, from)
            }
            other => Ok(Reply::Text(format!("unknown command '.{other}' — try .help"))),
        };
    }
    render(client.query(line)?)
}

/// Run the same query `n` times pipelined on the shell's connection —
/// all submitted before any response is read — and compare the wall
/// time against `n` strict request/response round trips.
fn pipe_query(client: &mut Client, n: usize, query: &str) -> mmdb::Result<Reply> {
    use mmdb_protocol::{Request, Response};
    let req = Request::Query { text: query.into(), deadline_ms: None };

    let t0 = std::time::Instant::now();
    let ids: Vec<u64> = (0..n).map(|_| client.submit(&req)).collect::<mmdb::Result<_>>()?;
    let mut rows = 0usize;
    for id in ids {
        match client.receive(id)? {
            Response::Rows(r) => rows += r.len(),
            other => return Err(mmdb::Error::Protocol(format!("unexpected response: {other:?}"))),
        }
    }
    let pipelined = t0.elapsed();

    let t0 = std::time::Instant::now();
    for _ in 0..n {
        client.query(query)?;
    }
    let serial = t0.elapsed();

    let speedup = serial.as_secs_f64() / pipelined.as_secs_f64().max(1e-9);
    Ok(Reply::Text(format!(
        "{n} runs, {rows} rows total\npipelined: {pipelined:?}\nserial:    {serial:?} \
         ({speedup:.2}x speedup from pipelining)"
    )))
}

/// Follow the `SUBSCRIBE` change feed on a dedicated connection (the
/// shell's own connection must stay in request/response mode), printing
/// committed writes as JSON lines until the server goes away or the
/// shell is interrupted.
fn follow_feed(addr: &str, from_lsn: u64) -> mmdb::Result<Reply> {
    let mut feed = Client::connect(addr)?;
    feed.subscribe(from_lsn)?;
    println!("change feed from lsn {from_lsn} — ctrl-C to stop");
    loop {
        let event = feed.next_change()?;
        if matches!(event.get_field("type").as_str(), Ok("heartbeat")) {
            continue;
        }
        println!("{}", mmdb::to_json(&event));
    }
}

fn render(rows: Vec<Value>) -> mmdb::Result<Reply> {
    let mut text = String::new();
    for r in &rows {
        text.push_str(&mmdb::to_json(r));
        text.push('\n');
    }
    text.push_str(&format!("({} row{})", rows.len(), if rows.len() == 1 { "" } else { "s" }));
    Ok(Reply::Text(text))
}

const HELP: &str = r#"
MMQL statements run directly:  FOR c IN customers FILTER ... RETURN ...
Commands:
  .demo                load the EDBT'17 paper's example data set
  .sql <SELECT ...>    run a SQL query
  .explain <mmql>      show the optimized logical plan
  .analyze <mmql>      EXPLAIN ANALYZE: run it, show actual rows/timings/access paths
  .create <name>       create a document collection
  .insert <coll> <json>  insert one document
  .collections         list collections / tables / buckets
  .help  .quit
"#;

const REMOTE_HELP: &str = r#"
Remote-only commands (--connect mode):
  .begin [serializable]  open an explicit transaction
  .commit  .abort        finish the open transaction
  .stats                 server metrics (ADMIN STATS)
  .slowlog               recent slow queries (ADMIN SLOWLOG)
  .slowlog reset         clear the slow-query log (ADMIN SLOWLOG RESET)
  .health                server health: ok | degraded | replica (ADMIN HEALTH)
  .repl                  replication status: role, LSNs, lag (ADMIN REPL)
  .checkpoint            snapshot + truncate the WAL now (ADMIN CHECKPOINT)
  .subscribe [lsn]       follow the change feed (committed writes; default: from now)
  .pipe <n> <mmql>       run a query n times pipelined vs serial and compare
  .ping                  liveness check
"#;

/// The same demo data as [`load_demo`], loaded through the wire API.
fn load_demo_remote(client: &mut Client) -> mmdb::Result<()> {
    use mmdb::substrate::relational::{ColumnDef, DataType, Schema};
    client.create_table(
        "customers",
        &Schema::new(
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("name", DataType::Text),
                ColumnDef::new("credit_limit", DataType::Int),
            ],
            "id",
        )?,
    )?;
    for (id, name, limit) in [(1, "Mary", 5000), (2, "John", 3000), (3, "Anne", 2000)] {
        client.insert_row(
            "customers",
            mmdb::from_json(&format!(r#"{{"id":{id},"name":"{name}","credit_limit":{limit}}}"#))?,
        )?;
    }
    client.create_graph("social")?;
    client.create_vertex_collection("social", "persons")?;
    client.create_edge_collection("social", "knows")?;
    for id in 1..=3 {
        client.add_vertex("social", "persons", mmdb::from_json(&format!(r#"{{"_key":"{id}"}}"#))?)?;
    }
    client.add_edge("social", "knows", "persons/1", "persons/2", mmdb::from_json("{}")?)?;
    client.add_edge("social", "knows", "persons/3", "persons/1", mmdb::from_json("{}")?)?;
    client.create_bucket("cart")?;
    client.kv_put("cart", "1", Value::str("34e5e759"))?;
    client.kv_put("cart", "2", Value::str("0c6df508"))?;
    client.create_collection("orders")?;
    client.insert_document(
        "orders",
        mmdb::from_json(
            r#"{"_key":"0c6df508","orderlines":[
            {"product_no":"2724f","product_name":"Toy","price":66},
            {"product_no":"3424g","product_name":"Book","price":40}]}"#,
        )?,
    )?;
    client.insert_document(
        "orders",
        mmdb::from_json(r#"{"_key":"34e5e759","orderlines":[{"product_no":"1111a","price":2}]}"#)?,
    )?;
    Ok(())
}

fn load_demo(db: &Database) -> mmdb::Result<()> {
    use mmdb::substrate::relational::{ColumnDef, DataType, Schema};
    db.create_table(
        "customers",
        Schema::new(
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("name", DataType::Text),
                ColumnDef::new("credit_limit", DataType::Int),
            ],
            "id",
        )?,
    )?;
    for (id, name, limit) in [(1, "Mary", 5000), (2, "John", 3000), (3, "Anne", 2000)] {
        db.insert_row(
            "customers",
            &mmdb::from_json(&format!(r#"{{"id":{id},"name":"{name}","credit_limit":{limit}}}"#))?,
        )?;
    }
    let g = db.create_graph("social")?;
    g.create_vertex_collection("persons")?;
    g.create_edge_collection("knows")?;
    for id in 1..=3 {
        g.add_vertex("persons", mmdb::from_json(&format!(r#"{{"_key":"{id}"}}"#))?)?;
    }
    g.add_edge("knows", "persons/1", "persons/2", mmdb::from_json("{}")?)?;
    g.add_edge("knows", "persons/3", "persons/1", mmdb::from_json("{}")?)?;
    db.create_bucket("cart")?;
    db.kv_put("cart", "1", Value::str("34e5e759"))?;
    db.kv_put("cart", "2", Value::str("0c6df508"))?;
    db.create_collection("orders")?;
    db.insert_json(
        "orders",
        r#"{"_key":"0c6df508","orderlines":[
            {"product_no":"2724f","product_name":"Toy","price":66},
            {"product_no":"3424g","product_name":"Book","price":40}]}"#,
    )?;
    db.insert_json(
        "orders",
        r#"{"_key":"34e5e759","orderlines":[{"product_no":"1111a","price":2}]}"#,
    )?;
    Ok(())
}
