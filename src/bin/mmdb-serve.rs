//! `mmdb-serve` — run a mmdb server over TCP.
//!
//! ```text
//! cargo run --bin mmdb-serve -- --addr 127.0.0.1:7687 --demo
//! # elsewhere:
//! cargo run --bin mmdb-shell -- --connect 127.0.0.1:7687
//! ```
//!
//! Options:
//!   --addr HOST:PORT       listen address (default 127.0.0.1:7687; port 0 = ephemeral)
//!   --data-dir PATH        durable database directory (default: in-memory)
//!   --replica-of HOST:PORT serve as a read replica of the primary at that
//!                          address: the database is in-memory, latched
//!                          read-only, and fed from the primary's WAL
//!                          stream (mutually exclusive with --data-dir
//!                          and --demo)
//!   --workers N            executor-pool threads (default 4)
//!   --max-connections N    connection cap before busy-rejection (default 64)
//!   --pipeline-depth N     per-connection cap on in-flight pipelined
//!                          requests before the reader stops pulling
//!                          frames (default 32; 1 disables pipelining)
//!   --slow-query-ms N      slow-query log threshold in ms (default 250; 0 logs everything)
//!   --slow-query-log-size N  slow-query log ring capacity (default 128; 0 disables)
//!   --checkpoint-wal-bytes N checkpoint automatically once the WAL grows
//!                          past N bytes (default: manual via ADMIN CHECKPOINT)
//!   --demo                 preload the paper's demo data set
//!
//! The server runs until stdin closes or a `quit` line arrives, then
//! shuts down gracefully (draining in-flight requests).

use std::io::BufRead;
use std::sync::Arc;

use mmdb::Database;
use mmdb_repl::{ReplicaOptions, ReplicaRunner};
use mmdb_server::{Server, ServerConfig};

fn main() {
    let mut config = ServerConfig { addr: "127.0.0.1:7687".into(), ..ServerConfig::default() };
    let mut data_dir: Option<String> = None;
    let mut replica_of: Option<String> = None;
    let mut demo = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag_value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage(&format!("{} needs a value", args[*i - 1])))
        };
        match args[i].as_str() {
            "--addr" => config.addr = flag_value(&mut i),
            "--data-dir" => data_dir = Some(flag_value(&mut i)),
            "--replica-of" => replica_of = Some(flag_value(&mut i)),
            "--workers" => {
                config.workers = flag_value(&mut i).parse().unwrap_or_else(|_| usage("--workers needs a number"))
            }
            "--max-connections" => {
                config.max_connections =
                    flag_value(&mut i).parse().unwrap_or_else(|_| usage("--max-connections needs a number"))
            }
            "--pipeline-depth" => {
                config.pipeline_depth =
                    flag_value(&mut i).parse().unwrap_or_else(|_| usage("--pipeline-depth needs a number"))
            }
            "--slow-query-ms" => {
                config.slow_query_threshold = std::time::Duration::from_millis(
                    flag_value(&mut i).parse().unwrap_or_else(|_| usage("--slow-query-ms needs a number")),
                )
            }
            "--slow-query-log-size" => {
                config.slow_query_log_size = flag_value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage("--slow-query-log-size needs a number"))
            }
            "--checkpoint-wal-bytes" => {
                config.checkpoint_wal_bytes = Some(
                    flag_value(&mut i)
                        .parse()
                        .unwrap_or_else(|_| usage("--checkpoint-wal-bytes needs a number")),
                )
            }
            "--demo" => demo = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag '{other}'")),
        }
        i += 1;
    }

    if replica_of.is_some() && data_dir.is_some() {
        usage("--replica-of and --data-dir are mutually exclusive (replicas resync from the primary's WAL, not from disk)");
    }
    if replica_of.is_some() && demo {
        usage("--replica-of and --demo are mutually exclusive (a replica is read-only)");
    }

    let db = match &data_dir {
        Some(dir) => match Database::open(dir) {
            Ok(db) => db,
            Err(e) => {
                eprintln!("cannot open database at {dir}: {e}");
                std::process::exit(1);
            }
        },
        // A primary keeps a WAL even in memory so replicas and SUBSCRIBE
        // can stream it; a replica is plain in-memory (it re-logs into
        // nothing and resyncs from LSN 0 on restart).
        None if replica_of.is_none() => Database::in_memory_logged(),
        None => Database::in_memory(),
    };
    let db = Arc::new(db);
    if demo {
        if let Err(e) = load_demo(&db) {
            eprintln!("cannot load demo data: {e}");
            std::process::exit(1);
        }
    }

    let replica = match replica_of.as_ref() {
        Some(primary) => {
            match ReplicaRunner::start(Arc::clone(&db), primary.clone(), ReplicaOptions::default())
            {
                Ok(runner) => Some(runner),
                Err(e) => {
                    eprintln!("cannot start replica: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => None,
    };

    let server = match Server::start(Arc::clone(&db), config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot start server: {e}");
            std::process::exit(1);
        }
    };
    if let Some(runner) = &replica {
        let status = runner.status();
        server.attach_replica_status(Arc::new(move || status.to_value()));
        println!(
            "mmdb-serve replicating from {} (read-only)",
            replica_of.as_deref().unwrap_or("?")
        );
    }
    println!("mmdb-serve listening on {}", server.local_addr());
    println!("(close stdin or type 'quit' to shut down)");

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if l.trim() == "quit" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    println!("shutting down...");
    if let Some(runner) = replica {
        runner.stop();
    }
    if let Err(e) = server.shutdown() {
        eprintln!("shutdown error: {e}");
        std::process::exit(1);
    }
}

fn usage(problem: &str) -> ! {
    if !problem.is_empty() {
        eprintln!("error: {problem}");
    }
    eprintln!(
        "usage: mmdb-serve [--addr HOST:PORT] [--data-dir PATH] [--replica-of HOST:PORT] \
         [--workers N] [--max-connections N] [--pipeline-depth N] [--slow-query-ms N] \
         [--slow-query-log-size N] [--checkpoint-wal-bytes N] [--demo]"
    );
    std::process::exit(2);
}

/// The shell's `.demo` data set, server-side (see `mmdb-shell`).
fn load_demo(db: &Database) -> mmdb::Result<()> {
    use mmdb::substrate::relational::{ColumnDef, DataType, Schema};
    use mmdb::Value;
    db.create_table(
        "customers",
        Schema::new(
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("name", DataType::Text),
                ColumnDef::new("credit_limit", DataType::Int),
            ],
            "id",
        )?,
    )?;
    for (id, name, limit) in [(1, "Mary", 5000), (2, "John", 3000), (3, "Anne", 2000)] {
        db.insert_row(
            "customers",
            &mmdb::from_json(&format!(r#"{{"id":{id},"name":"{name}","credit_limit":{limit}}}"#))?,
        )?;
    }
    let g = db.create_graph("social")?;
    g.create_vertex_collection("persons")?;
    g.create_edge_collection("knows")?;
    for id in 1..=3 {
        g.add_vertex("persons", mmdb::from_json(&format!(r#"{{"_key":"{id}"}}"#))?)?;
    }
    g.add_edge("knows", "persons/1", "persons/2", mmdb::from_json("{}")?)?;
    g.add_edge("knows", "persons/3", "persons/1", mmdb::from_json("{}")?)?;
    db.create_bucket("cart")?;
    db.kv_put("cart", "1", Value::str("34e5e759"))?;
    db.kv_put("cart", "2", Value::str("0c6df508"))?;
    db.create_collection("orders")?;
    db.insert_json(
        "orders",
        r#"{"_key":"0c6df508","orderlines":[
            {"product_no":"2724f","product_name":"Toy","price":66},
            {"product_no":"3424g","product_name":"Book","price":40}]}"#,
    )?;
    db.insert_json(
        "orders",
        r#"{"_key":"34e5e759","orderlines":[{"product_no":"1111a","price":2}]}"#,
    )?;
    Ok(())
}
