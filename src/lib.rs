//! # mmdb — a multi-model database in one engine
//!
//! `mmdb` is a from-scratch Rust reproduction of the system landscape laid
//! out in *Lu & Holubová, "Multi-model Data Management: What's New and
//! What's Next?", EDBT 2017*: one integrated database backend supporting
//! the relational, document (JSON), property-graph, key/value, RDF, XML and
//! full-text data models, with a unified query language (MMQL), cross-model
//! indexes, and cross-model ACID transactions.
//!
//! This crate is the user-facing umbrella: it re-exports the facade from
//! [`mmdb_core`] plus the building-block crates for users who want to reach
//! below the facade.
//!
//! ```
//! use mmdb::Database;
//!
//! let db = Database::in_memory();
//! db.create_collection("customers").unwrap();
//! db.insert_json("customers", r#"{"_key":"1","name":"Mary","credit_limit":5000}"#)
//!     .unwrap();
//! let rows = db
//!     .query("FOR c IN customers FILTER c.credit_limit > 3000 RETURN c.name")
//!     .unwrap();
//! assert_eq!(rows[0], mmdb::Value::str("Mary"));
//! ```

pub use mmdb_core::{Database, Session};
pub use mmdb_types::{from_json, to_json, to_json_pretty, Error, Number, Path, Result, Value};

/// The facade crate itself (evolution, schema inference, sessions).
pub use mmdb_core as core;

/// Deterministic fault injection (no-op unless built with the
/// `failpoints` feature; see `tests/crash_recovery.rs`).
pub use mmdb_fault as fault;

/// Building-block crates, re-exported for power users.
pub mod substrate {
    pub use mmdb_document as document;
    pub use mmdb_graph as graph;
    pub use mmdb_index as index;
    pub use mmdb_kv as kv;
    pub use mmdb_query as query;
    pub use mmdb_rdf as rdf;
    pub use mmdb_relational as relational;
    pub use mmdb_repl as repl;
    pub use mmdb_storage as storage;
    pub use mmdb_text as text;
    pub use mmdb_txn as txn;
    pub use mmdb_types as types;
    pub use mmdb_xml as xml;
}
