#!/usr/bin/env sh
# Tier-1 gate for mmdb (see ROADMAP.md "Tier-1 verify").
#
# Run from the repository root:
#   scripts/ci.sh
#
# Everything must pass before a PR lands: a warning-free release build,
# the full test suite (unit + integration + property + doc tests), and
# clippy with warnings promoted to errors.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> mmdb-lint (workspace invariant rules; see DESIGN.md 'Static analysis')"
# JSON report archived for attribution; the per-rule summary table goes
# to stderr. The binary exits nonzero on any error-severity finding.
mkdir -p target
cargo run -q --release -p mmdb-lint -- --format json > target/lint-report.json

echo "==> crash-recovery torture suite (--features failpoints)"
cargo test -q --features failpoints --test crash_recovery

echo "==> request-lifecycle torture suite (--features failpoints)"
cargo test -q --features failpoints --test lifecycle_torture

echo "==> replication failover torture suite (--features failpoints)"
cargo test -q --features failpoints --test replication

echo "==> group-commit torture & property suite (--features failpoints)"
cargo test -q --features failpoints --test group_commit

echo "==> checkpoint torture suite (--features failpoints)"
cargo test -q --features failpoints --test checkpoint

echo "==> pipelining suite (out-of-order completion, backpressure, legacy frames)"
cargo test -q --test pipeline

echo "==> failpoints stay a no-op when the feature is off"
cargo test -q -p mmdb-fault
# Deadline checks ride the same feature: a default build must run the
# query cancellation scaffolding as free no-ops.
cargo test -q -p mmdb-query cancel
# The ckpt.* sites ride it too: a default build must checkpoint with the
# failpoint scaffolding compiled out.
cargo test -q -p mmdb-core checkpoint
cargo test -q -p mmdb-storage snapshot

echo "==> cargo clippy --features failpoints (lints the torture suite)"
cargo clippy -p mmdb --all-targets --features failpoints -- -D warnings

echo "==> unibench smoke run (tiny scale factor)"
# Not a performance gate — just proves the bench binary builds, generates
# data, and completes every workload end to end.
cargo run -q --release -p mmdb-bench --bin unibench -- --scale 0.05 --workload all --seed 21

echo "==> workload C multi-writer smoke (group commit, 1 vs 8 writers)"
# Also not a performance gate — proves the concurrent write path drives
# the group-commit sequencer end to end and emits its BENCH lines.
cargo run -q --release -p mmdb-bench --bin unibench -- --scale 0.05 --workload c --writers 1,8 --seed 21

echo "==> workload P pipelining smoke (reduced: 200 idle, 8 hot)"
# Also not a performance gate — proves the pipelined server end to end:
# idle connections parked by the re-exec'd holder child, hot connections
# at depth 1 vs 32, and the BENCH rows. The full run (10k idle, 100 hot)
# is `unibench --workload p`; EXPERIMENTS.md records its numbers.
cargo run -q --release -p mmdb-bench --bin unibench -- --scale 0.05 --workload p \
  --idle-conns 200 --hot-conns 8 --pipeline-ops 200 --seed 21

echo "==> tier-1 gate passed"
